"""Comparing the three evaluation algorithms on one workload.

A pocket edition of the paper's Section 4 experiments: generate a database
with long-lived tuples, run the partition join, sort-merge, and nested
loops at several memory sizes, and print the cost table -- who wins where,
and why.

    python examples/algorithm_comparison.py
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_algorithm
from repro.storage.iostats import CostModel
from repro.workloads.specs import fig7_spec


def main() -> None:
    # A 1/16-scale version of the paper's Figure 7 database with 16 000
    # long-lived tuples (scaled), about 6% of the database long-lived.
    config = ExperimentConfig(scale=16)
    r, s = config.database(fig7_spec(16_000))
    model = CostModel.with_ratio(5)
    print(f"database: {len(r)} + {len(s)} tuples, "
          f"{config.page_spec().pages_for_tuples(len(r))} pages per relation")
    print()

    rows = []
    notes = {
        "partition": lambda run: f"{run.detail.get('num_partitions', '?')} partitions",
        "sort_merge": lambda run: f"{run.detail.get('backup_page_reads', 0)} backup reads",
        "nested_loop": lambda run: "analytical",
    }
    for memory_mb in (1, 2, 4, 8, 16, 32):
        pages = config.memory_pages(memory_mb)
        for algorithm in ("partition", "sort_merge", "nested_loop"):
            run = run_algorithm(algorithm, r, s, pages, model, config)
            rows.append((memory_mb, algorithm, run.cost, notes[algorithm](run)))

    print("evaluation cost vs memory (weighted I/O, ratio 5:1)")
    print(format_table(("memory_MiB", "algorithm", "cost", "notes"), rows))

    # The paper's headline comparison: partition join vs sort-merge.  With
    # long-lived tuples in play, sort-merge's backing-up is devastating at
    # small memory while the partition join's tuple cache stays cheap.
    print()
    costs = {(mb, algo): cost for mb, algo, cost, _ in rows}
    for memory_mb in (1, 2, 4, 8, 16, 32):
        partition = costs[(memory_mb, "partition")]
        sort_merge = costs[(memory_mb, "sort_merge")]
        print(f"  at {memory_mb:>2} MiB: partition join is "
              f"{sort_merge / partition:,.1f}x cheaper than sort-merge")
    print()
    print("(Block nested loops reads purely sequentially, which flatters it at")
    print("this reduced scale; at paper scale its repeated inner scans dominate")
    print("everything below ~16 MiB -- see benchmarks/bench_fig6_memory_sweep.py.)")


if __name__ == "__main__":
    main()
