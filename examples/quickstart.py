"""Quickstart: define valid-time relations and join them.

Runs the partition-based valid-time natural join of the paper on a small
employment database and prints the result, the partitioning plan, and the
simulated I/O cost breakdown.

    python examples/quickstart.py
"""

from repro import (
    CostModel,
    PartitionJoinConfig,
    RelationSchema,
    ValidTimeRelation,
    partition_join,
)


def main() -> None:
    # Two valid-time relations sharing the join attribute "emp".  Rows are
    # (attributes..., Vs, Ve) with inclusive chronon timestamps.
    works_on = ValidTimeRelation.from_rows(
        RelationSchema("works_on", join_attributes=("emp",), payload_attributes=("project",)),
        [
            ("alice", "db_engine", 0, 14),
            ("alice", "optimizer", 15, 30),
            ("bob", "storage", 5, 25),
            ("carol", "parser", 0, 9),
        ],
    )
    earns = ValidTimeRelation.from_rows(
        RelationSchema("earns", join_attributes=("emp",), payload_attributes=("salary",)),
        [
            ("alice", 95_000, 0, 19),
            ("alice", 105_000, 20, 40),
            ("bob", 88_000, 0, 30),
            ("dave", 70_000, 0, 40),
        ],
    )

    # Evaluate works_on JOIN_V earns with 16 pages of simulated buffer
    # memory and the paper's default 5:1 random:sequential cost model.
    config = PartitionJoinConfig(memory_pages=16, cost_model=CostModel.with_ratio(5))
    run = partition_join(works_on, earns, config)

    print("Result of works_on JOIN_V earns:")
    for tup in sorted(run.result.tuples, key=lambda t: (t.key, t.vs)):
        emp = tup.key[0]
        project, salary = tup.payload
        print(f"  {emp:<6} {project:<10} {salary:>7}  valid [{tup.vs:>2}, {tup.ve:>2}]")

    print()
    print(f"partitioning plan: {run.plan.num_partitions} partition(s), "
          f"partSize {run.plan.part_size} pages")
    breakdown = run.layout.tracker.breakdown(config.cost_model)
    print(f"simulated I/O cost by phase: "
          + ", ".join(f"{name}={cost:.0f}" for name, cost in breakdown.items()))
    print(f"total evaluation cost: {run.total_cost(config.cost_model):.0f} "
          f"(result writes excluded, as in the paper)")


if __name__ == "__main__":
    main()
