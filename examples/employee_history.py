"""Reconstructing a normalized temporal database (the paper's motivation).

"Like its snapshot counterpart, the valid-time natural join supports the
reconstruction of normalized data" (Section 1).  This example stores an
employee history decomposed into per-attribute fragments -- the shape
temporal normal forms prescribe [JSS92a] -- and reassembles the full
history with the partition join, checking the round trip.

    python examples/employee_history.py
"""

import random

from repro import PartitionJoinConfig, RelationSchema, ValidTimeRelation, partition_join
from repro.algebra.coalesce import coalesce
from repro.algebra.normalize import decompose
from repro.algebra.timeslice import timeslice


def build_history(n_employees: int = 200, seed: int = 7) -> ValidTimeRelation:
    """A synthetic employment history: dept and salary change over time."""
    rng = random.Random(seed)
    schema = RelationSchema(
        "employment", join_attributes=("emp",), payload_attributes=("dept", "salary")
    )
    rows = []
    for e in range(n_employees):
        chronon = rng.randrange(50)
        dept = f"d{rng.randrange(8)}"
        salary = 60_000 + rng.randrange(40) * 1000
        for _ in range(rng.randrange(2, 6)):  # a few history segments each
            duration = rng.randrange(10, 120)
            rows.append((f"emp{e}", dept, salary, chronon, chronon + duration - 1))
            chronon += duration
            if rng.random() < 0.5:
                dept = f"d{rng.randrange(8)}"
            if rng.random() < 0.7:
                salary += rng.randrange(1, 8) * 1000
    return ValidTimeRelation.from_rows(schema, rows)


def main() -> None:
    history = build_history()
    print(f"full employment history: {len(history)} tuples")

    # Vertical decomposition: one fragment per dependent attribute.
    dept_history, salary_history = decompose(history, [("dept",), ("salary",)])
    print(f"fragments after coalescing: dept={len(dept_history)} tuples, "
          f"salary={len(salary_history)} tuples")

    # Reassemble with the measured partition join.
    run = partition_join(
        dept_history, salary_history, PartitionJoinConfig(memory_pages=24)
    )
    rebuilt = coalesce(run.result)
    print(f"reconstructed history: {len(rebuilt)} tuples after coalescing")

    matches = rebuilt.multiset_equal(coalesce(history))
    print(f"round trip exact: {matches}")
    assert matches

    # A point-in-time query against the reconstruction.
    chronon = 120
    snapshot = timeslice(rebuilt, chronon)
    print(f"employees on the books at chronon {chronon}: {len(snapshot)}")
    for row in snapshot[:5]:
        print(f"  {row[0]:<8} dept={row[1]:<4} salary={row[2]}")

    cost = run.total_cost(PartitionJoinConfig(memory_pages=24).cost_model)
    print(f"simulated reconstruction I/O cost: {cost:.0f}")


if __name__ == "__main__":
    main()
