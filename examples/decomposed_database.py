"""A fully decomposed temporal database, reassembled with multi-way joins.

Temporal normal forms store one time-varying attribute per fragment; every
query that wants the full picture is a chain of valid-time natural joins.
This example builds a three-fragment personnel database, reassembles it
with the engine's optimizer-driven ``join_many``, coalesces the result on
disk, and checks the round trip.

    python examples/decomposed_database.py
"""

import random

from repro import RelationSchema, TemporalDatabase, ValidTimeRelation
from repro.algebra.coalesce import coalesce
from repro.algebra.external_coalesce import external_coalesce
from repro.algebra.normalize import decompose


def build_wide_history(n_employees: int = 150, seed: int = 3) -> ValidTimeRelation:
    rng = random.Random(seed)
    schema = RelationSchema(
        "personnel",
        join_attributes=("emp",),
        payload_attributes=("dept", "grade", "office"),
    )
    rows = []
    for e in range(n_employees):
        chronon = rng.randrange(30)
        dept, grade, office = f"d{e % 6}", e % 5, f"o{e % 11}"
        for _ in range(rng.randrange(2, 5)):
            duration = rng.randrange(20, 150)
            rows.append((f"emp{e}", dept, grade, office, chronon, chronon + duration - 1))
            chronon += duration
            if rng.random() < 0.4:
                dept = f"d{rng.randrange(6)}"
            if rng.random() < 0.5:
                grade = min(4, grade + 1)
            if rng.random() < 0.3:
                office = f"o{rng.randrange(11)}"
    return ValidTimeRelation.from_rows(schema, rows)


def main() -> None:
    wide = build_wide_history()
    fragments = decompose(wide, [("dept",), ("grade",), ("office",)])
    print("decomposed personnel database:")
    for fragment in fragments:
        print(f"  {fragment.schema.name}: {len(fragment)} tuples "
              f"({fragment.schema.payload_attributes[0]} history)")

    db = TemporalDatabase(memory_pages=32)
    for fragment in fragments:
        db.create_relation(fragment.schema)
        db.relation(fragment.schema.name).extend(fragment.tuples)

    result = db.join_many([fragment.schema.name for fragment in fragments])
    print(f"\nreassembled with {result.algorithm} "
          f"(total simulated cost {result.cost:,.0f})")

    # The join re-fragments timestamps at every fragment boundary;
    # coalescing on disk restores maximal intervals.
    rebuilt, layout = external_coalesce(result.relation, memory_pages=32)
    print(f"coalesced {len(result.relation)} -> {len(rebuilt)} tuples "
          f"(coalescing cost {layout.tracker.stats.cost(db.cost_model):,.0f})")

    exact = rebuilt.multiset_equal(coalesce(wide))
    print(f"round trip exact: {exact}")
    assert exact


if __name__ == "__main__":
    main()
