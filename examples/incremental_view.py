"""Maintaining a materialized valid-time join under updates.

Section 3.1's closing remark -- partition locality makes the join "adapt
easily to an incremental mode of operation" -- as running code: a
materialized ``assignments JOIN_V salaries`` view absorbs inserts and
deletes, touching only the partitions each update's interval overlaps, and
stays exactly consistent with recomputation.

    python examples/incremental_view.py
"""

import random

from repro.baselines.reference import reference_join
from repro.core.intervals import PartitionMap, choose_intervals
from repro.incremental.view import MaterializedVTJoin
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval


def main() -> None:
    rng = random.Random(1994)
    schema_r = RelationSchema("assignments", ("emp",), ("project",))
    schema_s = RelationSchema("salaries", ("emp",), ("salary",))

    def fresh_tuple(schema, tag, number):
        start = rng.randrange(1000)
        duration = rng.choice([1, 1, 1, rng.randrange(1, 400)])
        return VTTuple(
            (f"emp{rng.randrange(50)}",),
            (f"{tag}{number}",),
            Interval(start, min(999, start + duration - 1)),
        )

    r_tuples = [fresh_tuple(schema_r, "proj", i) for i in range(400)]
    s_tuples = [fresh_tuple(schema_s, "sal", i) for i in range(400)]

    # Partition valid time with the paper's equi-depth boundaries, chosen
    # from a sample of the initial data.
    intervals = choose_intervals(rng.sample(r_tuples, 120), 8)
    pmap = PartitionMap(intervals)
    print(f"partitioning: {len(pmap)} intervals over "
          f"[{intervals[0].start}, {intervals[-1].end}]")

    view = MaterializedVTJoin(schema_r, schema_s, pmap, r_tuples, s_tuples)
    print(f"initial view: {len(view)} result tuples")

    # Apply a mixed batch of updates, tracking how local each one is.
    touched = probed = 0
    live_r = list(r_tuples)
    for number in range(200):
        if rng.random() < 0.7 or not live_r:
            tup = fresh_tuple(schema_r, "newproj", number)
            stats = view.insert_r(tup)
            live_r.append(tup)
        else:
            tup = live_r.pop(rng.randrange(len(live_r)))
            stats = view.delete_r(tup)
        touched += stats.partitions_touched
        probed += stats.pairs_probed

    print(f"after 200 updates: {len(view)} result tuples")
    print(f"average partitions touched per update: {touched / 200:.2f} of {len(pmap)}")
    print(f"average candidate pairs probed per update: {probed / 200:.1f}")

    # Consistency check against recomputation from scratch.
    recomputed = reference_join(
        ValidTimeRelation(schema_r, live_r),
        ValidTimeRelation(schema_s, s_tuples),
    )
    consistent = view.snapshot().multiset_equal(recomputed)
    print(f"view equals full recomputation: {consistent}")
    assert consistent


if __name__ == "__main__":
    main()
