"""Tour of the temporal query engine: joins, aggregation, bitemporal queries.

Uses the :class:`TemporalDatabase` facade to run the paper's join with
automatic algorithm selection, asks "how many projects were staffed at
each moment?" with the temporal aggregation operator, and finishes with a
bitemporal what-did-we-know-when query -- the paper's concluding vision of
a bitemporal DBMS built on valid-time machinery.

    python examples/temporal_database.py
"""

import random

from repro import BitemporalRelation, RelationSchema, TemporalDatabase


def main() -> None:
    db = TemporalDatabase(memory_pages=32)
    db.create_relation(
        RelationSchema("assignments", ("emp",), ("project",))
    )
    db.create_relation(RelationSchema("grades", ("emp",), ("grade",)))

    rng = random.Random(42)
    assignment_rows = []
    grade_rows = []
    for e in range(120):
        start = rng.randrange(500)
        assignment_rows.append(
            (f"emp{e}", f"proj{e % 9}", start, start + rng.randrange(40, 200))
        )
        grade_rows.append((f"emp{e}", rng.randrange(1, 6), 0, 999))
    db.insert("assignments", assignment_rows)
    db.insert("grades", grade_rows)

    # Join with automatic algorithm selection; inspect the optimizer too.
    print("optimizer estimates for assignments JOIN_V grades:")
    for name, estimate in sorted(db.explain("assignments", "grades").items()):
        print(f"  {name:<12} {estimate.cost:>10,.0f}  ({estimate.note})")
    result = db.join("assignments", "grades")
    print(f"chosen: {result.algorithm}; measured cost {result.cost:,.0f}; "
          f"{len(result.relation)} result tuples")

    # Temporal aggregation: staffing level over time.
    staffing = db.aggregate("assignments", "count")
    print(f"\nstaffing level changes {len(staffing)} times; peaks:")
    peak = max(staffing, key=lambda t: t.payload[0])
    print(f"  max {peak.payload[0]:.0f} concurrent assignments "
          f"during [{peak.vs}, {peak.ve}]")

    # Bitemporal: corrections without losing history.
    print("\nbitemporal audit trail:")
    contracts = BitemporalRelation(
        RelationSchema("contracts", ("vendor",), ("rate",))
    )
    first = contracts.insert(("acme",), (100,), valid_interval(0, 364), tt=10)
    # At tt=50 we learn the rate was renegotiated mid-year all along.
    contracts.update(first, (90,), valid_interval(180, 364), tt=50)
    for tt in (20, 60):
        rows = contracts.as_of(tt).timeslice(200)
        print(f"  believed at tt={tt}: rate during day 200 = "
              f"{[row[1] for row in rows]}")


def valid_interval(start: int, end: int):
    from repro import Interval

    return Interval(start, end)


if __name__ == "__main__":
    main()
