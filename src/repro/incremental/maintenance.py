"""Batch maintenance and consistency checking for materialized joins.

Thin orchestration over :class:`~repro.incremental.view.MaterializedVTJoin`:
apply a mixed batch of updates while accumulating the locality statistics,
and verify the maintained view against a from-scratch recomputation (the
invariant the property tests exercise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.baselines.reference import reference_join
from repro.incremental.view import MaterializedVTJoin, UpdateStats
from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import VTTuple

#: One update: ("insert" | "delete", "r" | "s", tuple).
Update = Tuple[str, str, VTTuple]


@dataclass
class BatchStats:
    """Aggregated locality statistics over a batch of updates."""

    updates: int = 0
    partitions_touched: int = 0
    pairs_probed: int = 0
    delta_tuples: int = 0

    def fold(self, stats: UpdateStats) -> None:
        self.updates += 1
        self.partitions_touched += stats.partitions_touched
        self.pairs_probed += stats.pairs_probed
        self.delta_tuples += stats.delta_tuples


def apply_batch(view: MaterializedVTJoin, updates: Iterable[Update]) -> BatchStats:
    """Apply *updates* in order, returning aggregated statistics.

    Raises:
        ValueError: on an unknown operation or relation name.
    """
    operations = {
        ("insert", "r"): view.insert_r,
        ("delete", "r"): view.delete_r,
        ("insert", "s"): view.insert_s,
        ("delete", "s"): view.delete_s,
    }
    totals = BatchStats()
    for operation, relation, tup in updates:
        try:
            apply_update = operations[(operation, relation)]
        except KeyError:
            raise ValueError(
                f"unknown update ({operation!r}, {relation!r})"
            ) from None
        totals.fold(apply_update(tup))
    return totals


def verify_against_recompute(
    view: MaterializedVTJoin,
    r: ValidTimeRelation,
    s: ValidTimeRelation,
) -> bool:
    """True when the maintained view equals ``reference_join(r, s)``."""
    return view.snapshot().multiset_equal(reference_join(r, s))
