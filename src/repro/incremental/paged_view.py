"""Disk-resident incremental maintenance: the [SSJ93] adaptation, costed.

Section 3.1's argument made measurable: "suppose that r JOIN s is
materialized as a view, and an update happens to r in partition r_i.  As
tuples in r_i can only join with tuples in s_i, the consistency of the
view is insured by recomputing only r_i JOIN s_i."

:class:`PagedMaterializedJoin` keeps the partitions of both base relations
*and* of the view on the simulated disk, partitioned by the same
valid-time intervals.  An update touches exactly the partitions its
interval overlaps: those base partitions are re-read, their joins
recomputed in memory, and the affected view partitions rewritten -- all
charged through the usual head model, so the cost of incremental
maintenance is directly comparable to the cost of re-running the partition
join from scratch (`bench_incremental_paged.py` makes the comparison).

The partition-locality bookkeeping mirrors the joiner's sweep semantics:
each base tuple is stored once, in its *last* overlapped partition, and a
partition's join is computed over every tuple overlapping it, with
exactly-once result ownership by the overlap's end chronon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.intervals import PartitionMap
from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import VTTuple, join_tuples
from repro.storage.heapfile import HeapFile
from repro.storage.layout import DiskLayout
from repro.storage.iostats import IOStatistics


@dataclass
class MaintenanceCost:
    """I/O performed by one update, next to the full-recompute yardstick."""

    partitions_recomputed: int
    io_ops: int


class PagedMaterializedJoin:
    """A materialized valid-time join living on the simulated disk.

    Args:
        r: initial left base relation.
        s: initial right base relation.
        partition_map: the valid-time partitioning aligning everything.
        layout: disk layout; base partitions and view partitions are
            created as charged temp files (initial population is charged --
            it is the view's build cost).
    """

    def __init__(
        self,
        r: ValidTimeRelation,
        s: ValidTimeRelation,
        partition_map: PartitionMap,
        layout: Optional[DiskLayout] = None,
    ) -> None:
        r.schema.joins_with(s.schema)
        self.result_schema = r.schema.join_result_schema(s.schema)
        self.partition_map = partition_map
        self.layout = layout if layout is not None else DiskLayout()
        self._r_schema = r.schema
        self._s_schema = s.schema

        n = len(partition_map)
        self._r_parts: List[List[VTTuple]] = [[] for _ in range(n)]
        self._s_parts: List[List[VTTuple]] = [[] for _ in range(n)]
        for tup in r:
            self._r_parts[partition_map.last_overlapping(tup.valid)].append(tup)
        for tup in s:
            self._s_parts[partition_map.last_overlapping(tup.valid)].append(tup)

        self._r_files = self._write_partitions("r_base", self._r_parts)
        self._s_files = self._write_partitions("s_base", self._s_parts)
        self._view_files: List[HeapFile] = []
        with self.layout.tracker.phase("build"):
            for index in range(n):
                self._view_files.append(self._recompute_partition(index, generation=0))
        self._generation = 1

    # -- plumbing -----------------------------------------------------------

    def _write_partitions(
        self, name: str, partitions: Sequence[List[VTTuple]]
    ) -> List[HeapFile]:
        files = []
        with self.layout.tracker.phase("build"):
            for index, tuples in enumerate(partitions):
                heap = self.layout.temp_file(
                    f"{name}_{index}", capacity_tuples=max(1, len(tuples) * 4)
                )
                heap.append_many(tuples)
                heap.flush()
                files.append(heap)
        return files

    def _tuples_overlapping(self, parts: Sequence[List[VTTuple]], index: int) -> List[VTTuple]:
        """Every tuple overlapping partition *index* (stored there or later)."""
        found: List[VTTuple] = []
        for store_index in range(index, len(parts)):
            for tup in parts[store_index]:
                if self.partition_map.overlaps_partition(tup.valid, index):
                    found.append(tup)
        return found

    def _recompute_partition(self, index: int, generation: int) -> HeapFile:
        """Join partition *index* from its (re-read) base partitions."""
        # Charged reads: the base partitions that can contribute, i.e. the
        # stored partition plus later ones holding overlapping long-lived
        # tuples.  Stored-later tuples are identified from the in-memory
        # mirror, but their pages are charged like a cache re-read.
        r_live = self._read_live(self._r_files, self._r_parts, index)
        s_live = self._read_live(self._s_files, self._s_parts, index)

        by_key: Dict[Tuple, List[VTTuple]] = {}
        for tup in r_live:
            by_key.setdefault(tup.key, []).append(tup)
        view = self.layout.temp_file(
            f"view_{index}_g{generation}",
            capacity_tuples=max(1, len(r_live) + len(s_live)),
        )
        for inner in s_live:
            for outer in by_key.get(inner.key, ()):
                joined = join_tuples(outer, inner)
                if joined is None:
                    continue
                if self.partition_map.index_of_chronon(joined.ve) != index:
                    continue
                view.append(joined)
        view.flush()
        return view

    def _read_live(
        self,
        files: Sequence[HeapFile],
        parts: Sequence[List[VTTuple]],
        index: int,
    ) -> List[VTTuple]:
        live = self._tuples_overlapping(parts, index)
        # Charge: the stored partition is read fully; contributions carried
        # in from later partitions pay a tuple-cache round trip (write and
        # read), exactly as they would in the sweep evaluation.
        for _ in files[index].scan_pages():
            pass
        carried_tuples = live[len(parts[index]) :]
        if carried_tuples:
            carried = self.layout.cache_file(
                f"carry_{index}_{getattr(self, '_generation', 0)}",
                capacity_tuples=len(carried_tuples),
            )
            carried.append_many(carried_tuples)
            carried.flush()
            for _ in carried.scan_pages():
                pass
        return live

    # -- updates ----------------------------------------------------------------

    def insert_r(self, tup: VTTuple) -> MaintenanceCost:
        """Insert into ``r``; recompute only the overlapped partitions."""
        return self._apply(tup, self._r_parts, self._r_files, insert=True)

    def insert_s(self, tup: VTTuple) -> MaintenanceCost:
        """Insert into ``s``; recompute only the overlapped partitions."""
        return self._apply(tup, self._s_parts, self._s_files, insert=True)

    def delete_r(self, tup: VTTuple) -> MaintenanceCost:
        """Delete from ``r``; recompute only the overlapped partitions."""
        return self._apply(tup, self._r_parts, self._r_files, insert=False)

    def delete_s(self, tup: VTTuple) -> MaintenanceCost:
        """Delete from ``s``; recompute only the overlapped partitions."""
        return self._apply(tup, self._s_parts, self._s_files, insert=False)

    def _apply(
        self,
        tup: VTTuple,
        parts: List[List[VTTuple]],
        files: List[HeapFile],
        *,
        insert: bool,
    ) -> MaintenanceCost:
        before = self.layout.tracker.stats.copy()
        store_index = self.partition_map.last_overlapping(tup.valid)
        if insert:
            parts[store_index].append(tup)
        else:
            try:
                parts[store_index].remove(tup)
            except ValueError:
                raise KeyError(f"{tup!r} not present in its partition") from None

        with self.layout.tracker.phase("maintain"):
            # Rewrite the stored base partition (read is folded into the
            # recompute below; the write is the durable update).
            rewritten = self.layout.temp_file(
                f"rewrite_{store_index}_g{self._generation}",
                capacity_tuples=max(1, len(parts[store_index])),
            )
            rewritten.append_many(parts[store_index])
            rewritten.flush()
            files[store_index] = rewritten

            first = self.partition_map.first_overlapping(tup.valid)
            last = self.partition_map.last_overlapping(tup.valid)
            for index in range(first, last + 1):
                self._view_files[index] = self._recompute_partition(
                    index, self._generation
                )
        self._generation += 1
        delta = self.layout.tracker.stats.diff(before)
        return MaintenanceCost(
            partitions_recomputed=last - first + 1, io_ops=delta.total_ops
        )

    # -- reading ------------------------------------------------------------------

    def snapshot(self) -> ValidTimeRelation:
        """The view's current contents (uncharged verification read)."""
        relation = ValidTimeRelation(self.result_schema)
        for view_file in self._view_files:
            for tup in view_file.all_tuples():
                relation.add(tup)
        return relation

    def full_recompute_cost(self) -> int:
        """I/O a from-scratch recomputation of every partition would pay.

        Measured by actually recomputing each partition on a scratch
        statistics stream, leaving the view untouched -- the yardstick
        incremental maintenance is compared against.
        """
        scratch = IOStatistics()
        before = self.layout.tracker.stats.copy()
        for index in range(len(self.partition_map)):
            self._recompute_partition(index, generation=-self._generation)
        delta = self.layout.tracker.stats.diff(before)
        # Fold the probe back out of the reported stream: the measurement
        # itself should not pollute later update costs.
        self.layout.tracker.stats.random_reads -= delta.random_reads
        self.layout.tracker.stats.sequential_reads -= delta.sequential_reads
        self.layout.tracker.stats.random_writes -= delta.random_writes
        self.layout.tracker.stats.sequential_writes -= delta.sequential_writes
        scratch.add(delta)
        return scratch.total_ops
