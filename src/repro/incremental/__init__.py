"""Incremental maintenance of a materialized valid-time natural join.

Section 3.1 sketches the idea the authors develop in [SSJ93]: "suppose that
r JOIN s is materialized as a view, and an update happens to r in partition
r_i.  As tuples in r_i can only join with tuples in s_i, the consistency of
the view is insured by recomputing only r_i JOIN s_i."  The partitioning
thus doubles as the change-locality structure for view maintenance -- the
reason the paper prefers migration over replication in the first place.

* :mod:`repro.incremental.view` -- :class:`MaterializedVTJoin`, a
  partition-aligned materialized join with per-tuple insert/delete.
* :mod:`repro.incremental.maintenance` -- batch application and the
  full-recompute consistency check.
"""

from repro.incremental.view import MaterializedVTJoin, UpdateStats
from repro.incremental.maintenance import apply_batch, verify_against_recompute
from repro.incremental.paged_view import MaintenanceCost, PagedMaterializedJoin

__all__ = [
    "MaterializedVTJoin",
    "UpdateStats",
    "apply_batch",
    "verify_against_recompute",
    "MaintenanceCost",
    "PagedMaterializedJoin",
]
