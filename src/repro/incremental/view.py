"""A partition-aligned materialized valid-time natural join.

:class:`MaterializedVTJoin` keeps the join result as a counted multiset and
maintains, per partitioning interval, a *presence index*: the tuples of each
base relation overlapping that interval, hashed by join key.  An update to a
tuple with validity ``[vs, ve]`` touches only the partitions that interval
overlaps -- the locality the paper's partitioning provides -- and the delta
join probes only those partitions' presence lists.

The presence index is an in-memory structure of the maintenance engine; base
relations on disk stay un-replicated, which is exactly the division the
paper advocates (Section 3.2: replication "requires additional secondary
storage space and complicates update operations").

Exactly-once delta computation reuses the sweep's emission rule: a pair is
attributed to the partition containing the end chronon of its overlap, so
probing every partition a tuple overlaps counts each partner exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.intervals import PartitionMap
from repro.model.errors import SchemaError
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval


@dataclass
class UpdateStats:
    """Work done by one update, for the locality accounting.

    Attributes:
        partitions_touched: partitions whose presence lists were probed.
        pairs_probed: candidate partners examined.
        delta_tuples: result tuples added or removed.
    """

    partitions_touched: int = 0
    pairs_probed: int = 0
    delta_tuples: int = 0


class _PresenceIndex:
    """Per-partition, key-hashed lists of the live tuples of one relation."""

    def __init__(self, partition_map: PartitionMap) -> None:
        self._partitions: List[Dict[Tuple, List[VTTuple]]] = [
            {} for _ in range(len(partition_map))
        ]
        self._map = partition_map

    def add(self, tup: VTTuple) -> range:
        span = self._span(tup.valid)
        for index in span:
            self._partitions[index].setdefault(tup.key, []).append(tup)
        return span

    def remove(self, tup: VTTuple) -> range:
        span = self._span(tup.valid)
        for index in span:
            bucket = self._partitions[index].get(tup.key)
            if not bucket or tup not in bucket:
                raise KeyError(f"tuple {tup!r} not present in partition {index}")
            bucket.remove(tup)
            if not bucket:
                del self._partitions[index][tup.key]
        return span

    def probe(self, index: int, key: Tuple) -> List[VTTuple]:
        return self._partitions[index].get(key, [])

    def _span(self, valid: Interval) -> range:
        return range(
            self._map.first_overlapping(valid), self._map.last_overlapping(valid) + 1
        )


class MaterializedVTJoin:
    """A materialized ``r JOIN_V s`` maintained under tuple updates.

    Args:
        r_schema: schema of the left base relation.
        s_schema: schema of the right base relation.
        partition_map: the partitioning aligning updates with join work
            (typically from a :class:`~repro.core.planner.PartitionPlan`).
        r_tuples: initial contents of ``r``.
        s_tuples: initial contents of ``s``.
    """

    def __init__(
        self,
        r_schema: RelationSchema,
        s_schema: RelationSchema,
        partition_map: PartitionMap,
        r_tuples: Iterable[VTTuple] = (),
        s_tuples: Iterable[VTTuple] = (),
    ) -> None:
        r_schema.joins_with(s_schema)
        self.r_schema = r_schema
        self.s_schema = s_schema
        self.result_schema = r_schema.join_result_schema(s_schema)
        self._map = partition_map
        self._r_index = _PresenceIndex(partition_map)
        self._s_index = _PresenceIndex(partition_map)
        self._view: Dict[VTTuple, int] = {}
        for tup in r_tuples:
            self.insert_r(tup)
        for tup in s_tuples:
            self.insert_s(tup)

    # -- updates ------------------------------------------------------------

    def insert_r(self, tup: VTTuple) -> UpdateStats:
        """Insert *tup* into ``r`` and fold its delta into the view."""
        span = self._r_index.add(tup)
        return self._apply_delta(tup, span, self._s_index, left=True, sign=+1)

    def delete_r(self, tup: VTTuple) -> UpdateStats:
        """Delete *tup* from ``r`` and retract its contribution."""
        span = self._r_index.remove(tup)
        return self._apply_delta(tup, span, self._s_index, left=True, sign=-1)

    def insert_s(self, tup: VTTuple) -> UpdateStats:
        """Insert *tup* into ``s`` and fold its delta into the view."""
        span = self._s_index.add(tup)
        return self._apply_delta(tup, span, self._r_index, left=False, sign=+1)

    def delete_s(self, tup: VTTuple) -> UpdateStats:
        """Delete *tup* from ``s`` and retract its contribution."""
        span = self._s_index.remove(tup)
        return self._apply_delta(tup, span, self._r_index, left=False, sign=-1)

    def _apply_delta(
        self,
        tup: VTTuple,
        span: Sequence[int],
        other_index: _PresenceIndex,
        *,
        left: bool,
        sign: int,
    ) -> UpdateStats:
        stats = UpdateStats(partitions_touched=len(span))
        for index in span:
            for partner in other_index.probe(index, tup.key):
                stats.pairs_probed += 1
                common = tup.valid.intersect(partner.valid)
                if common is None:
                    continue
                # Exactly-once: the pair belongs to the partition holding the
                # overlap's end chronon.
                if self._map.index_of_chronon(common.end) != index:
                    continue
                if left:
                    joined = VTTuple(tup.key, tup.payload + partner.payload, common)
                else:
                    joined = VTTuple(tup.key, partner.payload + tup.payload, common)
                self._adjust(joined, sign)
                stats.delta_tuples += 1
        return stats

    def _adjust(self, joined: VTTuple, sign: int) -> None:
        count = self._view.get(joined, 0) + sign
        if count < 0:
            raise SchemaError(f"view multiplicity of {joined!r} went negative")
        if count == 0:
            self._view.pop(joined, None)
        else:
            self._view[joined] = count

    # -- reading -------------------------------------------------------------

    def snapshot(self) -> ValidTimeRelation:
        """The current view contents as a relation (multiset expanded)."""
        relation = ValidTimeRelation(self.result_schema)
        for tup, count in self._view.items():
            for _ in range(count):
                relation.add(tup)
        return relation

    def __len__(self) -> int:
        return sum(self._view.values())
