"""The aggregation tree: additive temporal aggregates in O(log lifespan).

A dynamic (lazily materialized) segment tree over a chronon domain.  Each
inserted interval deposits its weight on O(log |domain|) nodes; reading the
result walks the tree once, accumulating weights down each root-to-leaf
path and emitting one (interval, total) pair per uncovered-boundary
segment.  This is the modern rendering of the structure Kline built for
the paper's simulations: intervals are never enumerated chronon by
chronon, so a tuple valid for half the relation lifespan costs the same as
an instantaneous one.

Only *additive* aggregates (COUNT via weight 1, SUM via the value as the
weight) distribute over the tree; MIN/MAX need the sweep evaluator.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.time.interval import Interval


class _Node:
    """One segment of the domain; ``weight`` covers the whole segment."""

    __slots__ = ("start", "end", "weight", "left", "right")

    def __init__(self, start: int, end: int) -> None:
        self.start = start
        self.end = end
        self.weight = 0.0
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None

    @property
    def mid(self) -> int:
        return (self.start + self.end) // 2


class AggregationTree:
    """Additive temporal aggregation over a fixed chronon domain.

    Args:
        domain: the interval of chronons the tree covers; inserted
            intervals must lie within it.

    Example::

        tree = AggregationTree(Interval(0, 99))
        tree.insert(Interval(0, 49))
        tree.insert(Interval(25, 74), weight=2)
        tree.segments()   # [(Interval(0, 24), 1.0), (Interval(25, 49), 3.0),
                          #  (Interval(50, 74), 2.0)]
    """

    def __init__(self, domain: Interval) -> None:
        self._root = _Node(domain.start, domain.end)
        self._n_inserted = 0

    @property
    def domain(self) -> Interval:
        return Interval(self._root.start, self._root.end)

    @property
    def n_inserted(self) -> int:
        """Number of intervals inserted so far."""
        return self._n_inserted

    def insert(self, interval: Interval, weight: float = 1.0) -> None:
        """Add *weight* over every chronon of *interval*.

        Raises:
            ValueError: if *interval* is not contained in the domain.
        """
        if not self.domain.contains(interval):
            raise ValueError(f"{interval!r} outside tree domain {self.domain!r}")
        self._n_inserted += 1
        self._insert(self._root, interval.start, interval.end, weight)

    def _insert(self, node: _Node, start: int, end: int, weight: float) -> None:
        if start <= node.start and node.end <= end:
            node.weight += weight
            return
        mid = node.mid
        if start <= mid:
            if node.left is None:
                node.left = _Node(node.start, mid)
            self._insert(node.left, start, min(end, mid), weight)
        if end > mid:
            if node.right is None:
                node.right = _Node(mid + 1, node.end)
            self._insert(node.right, max(start, mid + 1), end, weight)

    def value_at(self, chronon: int) -> float:
        """Total weight covering *chronon* (0 outside the domain)."""
        if not self.domain.contains_chronon(chronon):
            return 0.0
        total = 0.0
        node: Optional[_Node] = self._root
        while node is not None:
            total += node.weight
            node = node.left if chronon <= node.mid else node.right
        return total

    def segments(self, *, keep_zero: bool = False) -> List[Tuple[Interval, float]]:
        """Maximal constant-weight intervals, in chronological order.

        Adjacent segments with equal totals are merged, so the result is
        the canonical constant-interval decomposition.  Zero-weight
        segments are dropped unless *keep_zero* is set.
        """
        raw = list(self._walk(self._root, 0.0))
        merged: List[Tuple[Interval, float]] = []
        for interval, weight in raw:
            if merged and merged[-1][1] == weight and merged[-1][0].end + 1 == interval.start:
                merged[-1] = (Interval(merged[-1][0].start, interval.end), weight)
            else:
                merged.append((interval, weight))
        if keep_zero:
            return merged
        return [(interval, weight) for interval, weight in merged if weight != 0.0]

    def _walk(self, node: _Node, inherited: float) -> Iterator[Tuple[Interval, float]]:
        total = inherited + node.weight
        if node.left is None and node.right is None:
            yield Interval(node.start, node.end), total
            return
        mid = node.mid
        if node.left is not None:
            yield from self._walk(node.left, total)
        else:
            yield Interval(node.start, mid), total
        if node.right is not None:
            yield from self._walk(node.right, total)
        else:
            yield Interval(mid + 1, node.end), total
