"""Endpoint-sweep temporal aggregation: the general (and oracle) evaluator.

Sorting the 2n interval endpoints yields the maximal intervals over which
the set of valid tuples is constant; any aggregate of the active set is
then well-defined per segment.  O(n log n) regardless of interval length,
and unlike the aggregation tree it supports non-additive aggregates
(MIN/MAX) because the active *values* are tracked, not just their sum.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.time.interval import Interval

#: (interval, aggregate value) segments in chronological order.
Segments = List[Tuple[Interval, float]]

SUPPORTED_OPS = ("count", "sum", "avg", "min", "max")


def constant_intervals(
    intervals: Sequence[Interval],
) -> List[Tuple[Interval, int]]:
    """Maximal intervals with a constant number of covering input intervals.

    The COUNT special case, returned with integer counts and zero-count
    gaps dropped; adjacent equal-count segments are merged.
    """
    segments = sweep_aggregate(
        list(zip(intervals, [1.0] * len(intervals))), "count"
    )
    return [(interval, int(value)) for interval, value in segments]


def sweep_aggregate(
    weighted: Sequence[Tuple[Interval, float]],
    op: str,
) -> Segments:
    """Aggregate ``(interval, value)`` pairs over time.

    Args:
        weighted: contributions; each value is valid over its interval.
        op: one of ``count``, ``sum``, ``avg``, ``min``, ``max``.

    Returns:
        Chronologically ordered maximal segments where the input set is
        constant, merged when adjacent segments agree on the aggregate,
        with empty (no active tuple) segments omitted.
    """
    if op not in SUPPORTED_OPS:
        raise ValueError(f"unsupported aggregate {op!r}; choose from {SUPPORTED_OPS}")
    if not weighted:
        return []

    # Event list: value enters at start, leaves after end.
    events: Dict[int, List[Tuple[float, int]]] = {}
    for interval, value in weighted:
        events.setdefault(interval.start, []).append((value, +1))
        events.setdefault(interval.end + 1, []).append((value, -1))

    active = Counter()  # value -> multiplicity
    count = 0
    total = 0.0
    raw: Segments = []
    boundaries = sorted(events)
    for boundary, following in zip(boundaries, boundaries[1:] + [None]):
        for value, delta in events[boundary]:
            if delta > 0:
                active[value] += 1
                count += 1
                total += value
            else:
                active[value] -= 1
                if active[value] == 0:
                    del active[value]
                count -= 1
                total -= value
        if following is None or count == 0:
            continue
        segment = Interval(boundary, following - 1)
        raw.append((segment, _evaluate(op, active, count, total)))

    return _merge_equal_adjacent(raw)


def _evaluate(op: str, active: Counter, count: int, total: float) -> float:
    if op == "count":
        return float(count)
    if op == "sum":
        return total
    if op == "avg":
        return total / count
    if op == "min":
        return min(active)
    return max(active)


def _merge_equal_adjacent(segments: Segments) -> Segments:
    merged: Segments = []
    for interval, value in segments:
        if (
            merged
            and merged[-1][1] == value
            and merged[-1][0].end + 1 == interval.start
        ):
            merged[-1] = (Interval(merged[-1][0].start, interval.end), value)
        else:
            merged.append((interval, value))
    return merged
