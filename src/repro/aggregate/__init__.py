"""Temporal aggregation over valid-time relations.

The paper's simulations credit "the aggregation tree implementation used in
the simulations" (Kline's structure, later published as Kline & Snodgrass,
"Computing Temporal Aggregates", ICDE 1995).  This package provides that
operator family: for a valid-time relation, compute an aggregate (COUNT,
SUM, AVG, MIN, MAX) *as a function of time*, i.e. one result tuple per
maximal interval over which the aggregate's input set is constant.

* :mod:`repro.aggregate.tree` -- the aggregation tree: a dynamic segment
  tree over the chronon domain with O(log lifespan) interval insertion,
  supporting the additive aggregates (COUNT, SUM).
* :mod:`repro.aggregate.sweep` -- the endpoint-sweep evaluator supporting
  every aggregate, used as the oracle for the tree and for MIN/MAX.
* :mod:`repro.aggregate.operator` -- the user-facing
  :func:`temporal_aggregate` over relations, optionally grouped by key.
"""

from repro.aggregate.tree import AggregationTree
from repro.aggregate.sweep import constant_intervals, sweep_aggregate
from repro.aggregate.operator import temporal_aggregate

__all__ = [
    "AggregationTree",
    "constant_intervals",
    "sweep_aggregate",
    "temporal_aggregate",
]
