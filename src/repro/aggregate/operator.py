"""The user-facing temporal aggregation operator over relations.

``temporal_aggregate(r, "count")`` answers "how many facts were valid at
each moment?" as a valid-time relation: one tuple per maximal interval of
constant aggregate value.  With ``per_key=True`` the aggregate is computed
within each join-key group (e.g. salary history per employee).

Additive aggregates route through the :class:`AggregationTree`; MIN/MAX
and AVG use the endpoint sweep.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.aggregate.sweep import SUPPORTED_OPS, sweep_aggregate
from repro.aggregate.tree import AggregationTree
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval
from repro.time.lifespan import lifespan_of

#: Extracts the aggregated value from a tuple (defaults to 1 for COUNT).
ValueOf = Callable[[VTTuple], float]


def temporal_aggregate(
    relation: ValidTimeRelation,
    op: str,
    *,
    value_of: Optional[ValueOf] = None,
    per_key: bool = False,
    use_tree: Optional[bool] = None,
) -> ValidTimeRelation:
    """Aggregate *relation* over time.

    Args:
        relation: the input valid-time relation.
        op: ``count``, ``sum``, ``avg``, ``min``, or ``max``.
        value_of: extracts the numeric value per tuple (required for every
            op except ``count``; commonly ``lambda t: t.payload[i]``).
        per_key: aggregate within each join-key group instead of globally.
        use_tree: force the aggregation tree on (only valid for the
            additive ops) or off; by default the tree handles ``count`` and
            ``sum`` and the sweep handles the rest.

    Returns:
        A valid-time relation with schema ``(key?, <op>)``: one tuple per
        maximal interval of constant aggregate value; intervals where no
        input tuple is valid are absent.
    """
    if op not in SUPPORTED_OPS:
        raise ValueError(f"unsupported aggregate {op!r}; choose from {SUPPORTED_OPS}")
    if op != "count" and value_of is None:
        raise ValueError(f"aggregate {op!r} needs a value_of extractor")
    additive = op in ("count", "sum")
    if use_tree is None:
        use_tree = additive
    if use_tree and not additive:
        raise ValueError(f"the aggregation tree only supports count/sum, not {op!r}")

    if per_key:
        schema = RelationSchema(
            name=f"{relation.schema.name}_{op}",
            join_attributes=relation.schema.join_attributes,
            payload_attributes=(op,),
            tuple_bytes=relation.schema.tuple_bytes,
        )
        result = ValidTimeRelation(schema)
        for key, group in sorted(
            relation.group_by_key().items(), key=lambda kv: repr(kv[0])
        ):
            for interval, value in _aggregate_group(group, op, value_of, use_tree):
                result.add(VTTuple(key, (value,), interval))
        return result

    schema = RelationSchema(
        name=f"{relation.schema.name}_{op}",
        join_attributes=("scope",),
        payload_attributes=(op,),
        tuple_bytes=relation.schema.tuple_bytes,
    )
    result = ValidTimeRelation(schema)
    for interval, value in _aggregate_group(
        list(relation), op, value_of, use_tree
    ):
        result.add(VTTuple(("all",), (value,), interval))
    return result


def _aggregate_group(
    tuples: List[VTTuple],
    op: str,
    value_of: Optional[ValueOf],
    use_tree: bool,
) -> List[Tuple[Interval, float]]:
    if not tuples:
        return []
    extract: ValueOf = value_of if value_of is not None else (lambda tup: 1.0)
    if use_tree:
        domain = lifespan_of(tup.valid for tup in tuples)
        tree = AggregationTree(domain)
        for tup in tuples:
            tree.insert(tup.valid, 1.0 if op == "count" else float(extract(tup)))
        return tree.segments()
    weighted = [(tup.valid, float(extract(tup))) for tup in tuples]
    return sweep_aggregate(weighted, op)
