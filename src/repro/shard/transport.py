"""The shard wire protocol: length-prefixed, CRC-checked socket frames.

Every message between the coordinator and a shard worker is one frame::

    +-------+------+-------+----------+-------------+------------+
    | magic | type | flags | reserved | payload_len | crc32      |
    | 4B    | 1B   | 1B    | 2B       | u32         | u32        |
    +-------+------+-------+----------+-------------+------------+
    | payload (payload_len bytes)                                |
    +------------------------------------------------------------+

The CRC covers the payload; a mismatch (or a short read / EOF) raises
:class:`TransportError` and the coordinator treats the channel as dead --
the supervision ladder respawns the worker and re-dispatches.

Control payloads are JSON.  Anything JSON cannot carry falls back to
pickle -- the PR-6 pickled-dispatch degradation rung, flagged per frame
(:data:`FLAG_PICKLED`) and counted in :func:`transport_counters` so the
fallback's share of the traffic stays auditable.

Relation-bearing frames (``LOAD`` out, ``RESULT`` back) use the
arena-descriptor shape of :mod:`repro.exec.arena`: one contiguous blob of
column bytes plus a descriptor of ``(offset, length)`` spans -- one span
per column, CRC-checked as part of the frame.  Interval endpoints pack as
big-endian 64-bit integers; key/payload columns are JSON spans with the
same per-span pickle rung.

Open channels register in a process-local set; chaos tests assert
:func:`active_channel_count` returns to zero, the same leak discipline the
arena registry established.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
import threading
import zlib
from typing import Dict, List, Optional, Tuple

from repro.model.errors import ServiceError

MAGIC = b"RSH1"

#: Frame types.
HELLO = 1
LOAD = 2
EXECUTE = 3
RESULT = 4
OK = 5
PING = 6
PONG = 7
CHAOS = 8
SHUTDOWN = 9
ERROR = 10

FRAME_NAMES = {
    HELLO: "HELLO",
    LOAD: "LOAD",
    EXECUTE: "EXECUTE",
    RESULT: "RESULT",
    OK: "OK",
    PING: "PING",
    PONG: "PONG",
    CHAOS: "CHAOS",
    SHUTDOWN: "SHUTDOWN",
    ERROR: "ERROR",
}

#: Payload is pickled (the degradation rung), not JSON.
FLAG_PICKLED = 0x01

_HEADER = struct.Struct("!4sBBHII")

#: Hard sanity cap on one frame's payload (simulated relations are small;
#: a corrupt length field must not trigger a gigabyte allocation).
MAX_PAYLOAD_BYTES = 1 << 30


class TransportError(ServiceError):
    """A shard channel failed: EOF, timeout, bad magic, or CRC mismatch.

    Attributes:
        kind: ``"eof"``, ``"timeout"``, ``"crc"``, ``"protocol"``.
    """

    def __init__(self, message: str, *, kind: str = "protocol") -> None:
        super().__init__(message)
        self.kind = kind


# -- counters ----------------------------------------------------------------

_COUNTER_LOCK = threading.Lock()
_COUNTERS = {
    "frames_sent": 0,
    "frames_received": 0,
    "bytes_sent": 0,
    "bytes_received": 0,
    "bytes_pickled": 0,
    "pickle_fallbacks": 0,
    "crc_failures": 0,
}


def _count(name: str, amount: int = 1) -> None:
    with _COUNTER_LOCK:
        _COUNTERS[name] += amount


def transport_counters() -> Dict[str, int]:
    """Snapshot of the process-local transport counters."""
    with _COUNTER_LOCK:
        return dict(_COUNTERS)


def reset_transport_counters() -> None:
    """Zero the counters (test isolation)."""
    with _COUNTER_LOCK:
        for key in _COUNTERS:
            _COUNTERS[key] = 0


# -- open-channel registry ---------------------------------------------------

_CHANNEL_LOCK = threading.Lock()
_OPEN_CHANNELS: set = set()


def active_channel_count() -> int:
    """Channels currently open in this process (the leak check)."""
    with _CHANNEL_LOCK:
        return len(_OPEN_CHANNELS)


# -- payload codecs ----------------------------------------------------------

def encode_payload(obj) -> Tuple[bytes, int]:
    """Encode a control payload: JSON, or pickle as the degradation rung."""
    try:
        return json.dumps(obj, separators=(",", ":")).encode("utf-8"), 0
    except (TypeError, ValueError):
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        _count("pickle_fallbacks")
        _count("bytes_pickled", len(data))
        return data, FLAG_PICKLED


def decode_payload(data: bytes, flags: int):
    if flags & FLAG_PICKLED:
        return pickle.loads(data)
    return json.loads(data.decode("utf-8"))


# -- arena-descriptor-shaped column codec ------------------------------------

_COLUMN_ORDER = ("keys", "payloads", "starts", "ends")


def pack_columns(
    columns: Tuple[List[Tuple], List[Tuple], List[int], List[int]],
) -> Tuple[List[Dict], bytes]:
    """Pack ``(keys, payloads, starts, ends)`` into spans + one blob.

    Mirrors the arena slab layout: the descriptor is a list of
    ``{"column", "offset", "length", "codec"}`` spans into the returned
    blob.  Endpoint columns pack as ``!{n}q``; key/payload columns are
    JSON (lists of lists), falling back to pickle per span.
    """
    keys, payloads, starts, ends = columns
    spans: List[Dict] = []
    parts: List[bytes] = []
    offset = 0
    for name, column in zip(_COLUMN_ORDER, (keys, payloads, starts, ends)):
        if name in ("starts", "ends"):
            data = struct.pack(f"!{len(column)}q", *column)
            codec = "i64"
        else:
            try:
                data = json.dumps(
                    [list(item) for item in column], separators=(",", ":")
                ).encode("utf-8")
                codec = "json"
            except (TypeError, ValueError):
                data = pickle.dumps(list(column), protocol=pickle.HIGHEST_PROTOCOL)
                codec = "pickle"
                _count("pickle_fallbacks")
                _count("bytes_pickled", len(data))
        spans.append(
            {"column": name, "offset": offset, "length": len(data), "codec": codec}
        )
        parts.append(data)
        offset += len(data)
    return spans, b"".join(parts)


def unpack_columns(
    spans: List[Dict], blob: bytes
) -> Tuple[List[Tuple], List[Tuple], List[int], List[int]]:
    """Inverse of :func:`pack_columns` (tuples re-tupled for the model layer)."""
    decoded = {}
    for span in spans:
        data = blob[span["offset"] : span["offset"] + span["length"]]
        codec = span["codec"]
        if codec == "i64":
            decoded[span["column"]] = list(struct.unpack(f"!{len(data) // 8}q", data))
        elif codec == "json":
            decoded[span["column"]] = [tuple(item) for item in json.loads(data)]
        elif codec == "pickle":
            decoded[span["column"]] = [tuple(item) for item in pickle.loads(data)]
        else:
            raise TransportError(f"unknown column codec {codec!r}")
    try:
        return (
            decoded["keys"],
            decoded["payloads"],
            decoded["starts"],
            decoded["ends"],
        )
    except KeyError as missing:
        raise TransportError(f"result descriptor missing column {missing}") from None


def pack_result(meta: Dict, columns=None) -> bytes:
    """A relation-bearing payload: meta JSON + column descriptor + blob."""
    if columns is not None:
        spans, blob = pack_columns(columns)
    else:
        spans, blob = [], b""
    meta_bytes, meta_flags = encode_payload(meta)
    desc_bytes = json.dumps(
        {"spans": spans, "meta_pickled": bool(meta_flags)}, separators=(",", ":")
    ).encode("utf-8")
    return b"".join(
        (
            struct.pack("!II", len(desc_bytes), len(meta_bytes)),
            desc_bytes,
            meta_bytes,
            blob,
        )
    )


def unpack_result(payload: bytes) -> Tuple[Dict, Optional[Tuple]]:
    """Inverse of :func:`pack_result`: ``(meta, columns-or-None)``."""
    if len(payload) < 8:
        raise TransportError("truncated result payload")
    desc_len, meta_len = struct.unpack_from("!II", payload)
    desc_end = 8 + desc_len
    meta_end = desc_end + meta_len
    if meta_end > len(payload):
        raise TransportError("result payload shorter than its descriptor claims")
    descriptor = json.loads(payload[8:desc_end].decode("utf-8"))
    meta = decode_payload(
        payload[desc_end:meta_end],
        FLAG_PICKLED if descriptor.get("meta_pickled") else 0,
    )
    spans = descriptor.get("spans", [])
    if not spans:
        return meta, None
    return meta, unpack_columns(spans, payload[meta_end:])


# -- the channel -------------------------------------------------------------

class Channel:
    """One framed, CRC-checked socket connection to a peer.

    Thread-compatible, not thread-safe: the coordinator serializes access
    per worker with its own lock.  Closing is idempotent and deregisters
    the channel from the leak registry.
    """

    def __init__(self, sock: socket.socket, *, name: str = "shard") -> None:
        self._sock = sock
        self.name = name
        self._closed = False
        with _CHANNEL_LOCK:
            _OPEN_CHANNELS.add(id(self))

    @property
    def closed(self) -> bool:
        return self._closed

    def fileno(self) -> int:
        return self._sock.fileno()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with _CHANNEL_LOCK:
            _OPEN_CHANNELS.discard(id(self))
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Channel":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # -- raw frames ----------------------------------------------------------

    def send(self, ftype: int, payload: bytes, *, flags: int = 0) -> None:
        if self._closed:
            raise TransportError(f"channel {self.name} is closed", kind="eof")
        header = _HEADER.pack(
            MAGIC, ftype, flags, 0, len(payload), zlib.crc32(payload) & 0xFFFFFFFF
        )
        try:
            self._sock.sendall(header + payload)
        except (OSError, ValueError) as error:
            raise TransportError(
                f"send to {self.name} failed: {error}", kind="eof"
            ) from error
        _count("frames_sent")
        _count("bytes_sent", len(header) + len(payload))

    def recv(self, *, timeout: Optional[float] = None) -> Tuple[int, int, bytes]:
        """Receive one frame: ``(type, flags, payload)``.

        Raises:
            TransportError: EOF (``kind="eof"``), no frame within *timeout*
                (``kind="timeout"``), bad magic (``kind="protocol"``), or a
                CRC mismatch (``kind="crc"``).
        """
        header = self._recv_exact(_HEADER.size, timeout)
        magic, ftype, flags, _reserved, length, crc = _HEADER.unpack(header)
        if magic != MAGIC:
            raise TransportError(
                f"bad frame magic {magic!r} from {self.name}", kind="protocol"
            )
        if length > MAX_PAYLOAD_BYTES:
            raise TransportError(
                f"frame from {self.name} claims {length} payload bytes",
                kind="protocol",
            )
        payload = self._recv_exact(length, timeout) if length else b""
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            _count("crc_failures")
            raise TransportError(
                f"CRC mismatch on {FRAME_NAMES.get(ftype, ftype)} frame "
                f"from {self.name}",
                kind="crc",
            )
        _count("frames_received")
        _count("bytes_received", _HEADER.size + length)
        return ftype, flags, payload

    def _recv_exact(self, n: int, timeout: Optional[float]) -> bytes:
        if self._closed:
            raise TransportError(f"channel {self.name} is closed", kind="eof")
        chunks = []
        remaining = n
        try:
            self._sock.settimeout(timeout)
            while remaining:
                chunk = self._sock.recv(min(remaining, 1 << 20))
                if not chunk:
                    raise TransportError(
                        f"EOF from {self.name} ({n - remaining}/{n} bytes)",
                        kind="eof",
                    )
                chunks.append(chunk)
                remaining -= len(chunk)
        except socket.timeout:
            raise TransportError(
                f"no frame from {self.name} within {timeout}s", kind="timeout"
            ) from None
        except (OSError, ValueError) as error:
            raise TransportError(
                f"recv from {self.name} failed: {error}", kind="eof"
            ) from error
        return b"".join(chunks)

    # -- object frames -------------------------------------------------------

    def send_obj(self, ftype: int, obj) -> None:
        payload, flags = encode_payload(obj)
        self.send(ftype, payload, flags=flags)

    def recv_obj(self, *, timeout: Optional[float] = None) -> Tuple[int, object]:
        ftype, flags, payload = self.recv(timeout=timeout)
        return ftype, decode_payload(payload, flags)
