"""Sharded serving: coordinator + N shard worker processes over sockets.

The ROADMAP's "multi-node lane transport" seam, closed: the PR-5
:class:`~repro.service.service.QueryService` scaled past one process by
decomposing every join into per-shard *fragments* (the same shape as the
partition-parallel evaluation of spatial joins -- each fragment is an
independent join whose results union disjointly).  Four cooperating
pieces (see ``docs/SHARDING.md``):

* :mod:`repro.shard.partitioning` -- :class:`ShardMap`: hash sharding by
  join key or range sharding by temporal partition, with the map recorded
  in the :class:`~repro.engine.catalog.VersionedCatalog` so snapshots stay
  epoch-consistent across shards;
* :mod:`repro.shard.transport` -- the length-prefixed, CRC-checked socket
  frames carrying query fragments out and arena-descriptor-shaped column
  results back (JSON column spans with the PR-6 pickled fallback as the
  degradation rung);
* :mod:`repro.shard.worker` -- the shard worker process: its own
  :class:`~repro.storage.buffer.BufferPool`,
  :class:`~repro.service.admission.AdmissionController`, simulated disk
  and lane pool, executing fragments and reporting per-phase charged-I/O
  ledgers;
* :mod:`repro.shard.coordinator` -- :class:`ShardedQueryService`: routes
  fragments by shard map, merges results deterministically (shard rank,
  then fragment emission order), aggregates
  :class:`~repro.core.joiner.JoinOutcome` counters and I/O ledgers
  exactly, and degrades a SIGKILLed or hung shard to deterministic
  re-dispatch instead of query failure.
"""

from repro.shard.coordinator import (
    ShardedQueryResult,
    ShardedQueryService,
    ShardFragmentReport,
)
from repro.shard.partitioning import (
    SHARD_STRATEGIES,
    ShardMap,
    stable_key_hash,
    time_range_map,
)
from repro.shard.transport import (
    Channel,
    TransportError,
    active_channel_count,
    reset_transport_counters,
    transport_counters,
)

__all__ = [
    "Channel",
    "SHARD_STRATEGIES",
    "ShardFragmentReport",
    "ShardMap",
    "ShardedQueryResult",
    "ShardedQueryService",
    "TransportError",
    "active_channel_count",
    "reset_transport_counters",
    "stable_key_hash",
    "time_range_map",
    "transport_counters",
]
