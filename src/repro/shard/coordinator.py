""":class:`ShardedQueryService`: the coordinator over N shard workers.

The multi-process sibling of the PR-5
:class:`~repro.service.service.QueryService`.  One coordinator owns the
authoritative :class:`~repro.engine.catalog.VersionedCatalog` (mutations
bump epochs exactly as before; the shard map is recorded in the catalog so
every snapshot resolves to one routing), N forked shard worker processes
-- each with its own buffer pool, admission controller, simulated disks
and lane pool -- and the session/executor surface the single-process
service exposes, so :class:`~repro.service.session.Session` and the
workload driver run unchanged on top of it.

The query path:

1. take a catalog snapshot; resolve ``"auto"`` against the *global*
   relation statistics (the same pick the single-process service makes,
   sent verbatim to every shard);
2. ship any fragment versions a shard has not seen for the pinned epochs
   (fragments are immutable per ``(name, epoch)``, so shipping is lazy,
   idempotent, and rebuildable after a respawn);
3. fan the ``EXECUTE`` out to all shards, then collect ``RESULT`` frames
   in shard-rank order;
4. merge deterministically: result tuples concatenate by shard rank, then
   each fragment's own emission order;
   :class:`~repro.core.joiner.JoinOutcome` counters and per-phase
   charged-I/O ledgers aggregate exactly
   (:meth:`~repro.storage.iostats.IOStatistics.merge`, once per shard).

Supervision reuses the PR-7 shapes: a
:class:`~repro.resilience.supervisor.SupervisionPolicy` bounds the
per-fragment deadline and re-dispatch budget, failures are recorded as
:class:`~repro.resilience.report.DegradationEvent` entries
(``shard-death`` / ``shard-hang``), and the degradation ladder is

    re-dispatch on the live worker -> respawn + re-ship + re-dispatch ->
    quarantine (in-process fragment execution in the coordinator)

so a SIGKILLed or hung shard costs latency, never the query -- and
because fragments are pure functions of ``(fragment state, request)``,
every rung reproduces the lost result bit-identically.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import socket
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.algebra.predicates import NATURAL_PREDICATE, resolve_predicate
from repro.core.joiner import JoinOutcome
from repro.core.partition_join import ALL_EXECUTION_MODES, PartitionJoinConfig
from repro.engine.catalog import (
    CatalogSnapshot,
    RelationStatistics,
    VersionedCatalog,
    analyze,
)
from repro.engine.optimizer import choose_algorithm
from repro.model.errors import ServiceError
from repro.model.relation import ValidTimeRelation
from repro.obs import Observability, ObservabilityConfig
from repro.resilience.report import ResilienceReport
from repro.resilience.supervisor import SupervisionPolicy
from repro.service.executor import QueryExecutor, QueryHandle
from repro.service.service import _JOIN_METHODS
from repro.service.session import Rows, Session, SessionConfig, coerce_rows
from repro.shard import transport
from repro.shard.partitioning import ShardMap, time_range_map
from repro.shard.transport import Channel, TransportError, transport_counters
from repro.shard.worker import ShardWorker, schema_from_dict, schema_to_dict, worker_main
from repro.storage.iostats import CostModel, IOStatistics
from repro.storage.page import PageSpec


@dataclass(frozen=True)
class ShardFragmentReport:
    """One shard's contribution to one query (its RESULT meta, typed)."""

    rank: int
    algorithm: str
    n_result_tuples: int
    outcome_counters: Tuple[int, int, int, int]
    phases: Dict[str, Dict[str, int]]
    totals: Dict[str, int]
    charged_ops: int
    cost: float
    requested_pages: int
    granted_pages: int
    degraded: bool
    peak_granted_pages: int
    fragment_tuples: Tuple[int, int]
    redispatches: int = 0
    quarantined: bool = False


@dataclass(frozen=True)
class ShardedQueryResult:
    """One sharded query: the merged result plus its full fan-out pedigree.

    Field-compatible with
    :class:`~repro.service.service.ServiceQueryResult` where the workload
    driver and property suite look (``relation``, ``outcome``,
    ``algorithm``, ``cost``, ``charged_ops``, epochs, cache/grant flags),
    plus the shard-specific pedigree:

    Attributes:
        cost: the *total* charged bill, summed over shards (what the work
            cost; compare to the single-process bill).
        service_cost: the *parallel* bill -- the maximum per-shard cost,
            i.e. the simulated service latency with every shard's disk
            running concurrently.  The scaling benchmark's clock.
        phases: merged per-phase ledgers
            (:class:`~repro.storage.iostats.IOStatistics` per phase name,
            folded exactly once per shard).
        totals: the merged whole-query ledger.
        shards: per-shard fragment reports, in rank order.
        redispatches: supervision re-dispatches this query survived.
    """

    relation: Optional[ValidTimeRelation]
    outcome: JoinOutcome
    algorithm: str
    cost: float
    service_cost: float
    charged_ops: int
    phases: Dict[str, IOStatistics]
    totals: IOStatistics
    outer: str
    inner: str
    epochs: Tuple[int, int]
    snapshot_epoch: int
    shards: Tuple[ShardFragmentReport, ...]
    redispatches: int = 0
    result_cache_hit: bool = False
    plan_cache_hit: bool = False
    requested_pages: int = 0
    granted_pages: int = 0
    degraded: bool = False
    clamped: bool = False
    queue_wait_seconds: float = 0.0
    session_id: int = 0
    query_id: int = 0


@dataclass
class _ShardHandle:
    """Coordinator-side state of one worker process."""

    rank: int
    process: object = None
    channel: Optional[Channel] = None
    loaded: set = field(default_factory=set)
    respawns: int = 0
    failures: int = 0
    quarantined: bool = False
    inline: Optional[ShardWorker] = None  # the quarantine rung
    last_status: Dict = field(default_factory=dict)
    # Chaos-test options merged into every (re)spawn of this shard; the
    # quarantine rung never inherits them (it must actually answer).
    spawn_chaos: Dict = field(default_factory=dict)


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover -- non-POSIX fallback
        return multiprocessing.get_context()


class ShardedQueryService:
    """Coordinator + N shard worker processes behind the Session API.

    Args:
        catalog: the authoritative versioned catalog (shared with writers).
        shards: worker-process count (>= 1).
        shard_by: ``"key-hash"`` (default) or ``"time-range"``; time-range
            boundaries are computed from the relations registered at
            construction time (equal-width over the union lifespan).
        pool_pages: buffer budget of *each* shard's admission controller.
        memory_pages: default per-query memory ask per shard (defaults to
            ``pool_pages``).
        workers: coordinator executor threads (queries overlap in the
            executor; the shard fan-out itself is serialized per query).
        execution: default partition-join execution mode.
        supervision: the PR-7 policy bounding the fragment deadline
            (``lane_timeout_seconds``), the re-dispatch budget
            (``max_redispatches``), and quarantine
            (``quarantine_after`` respawns of the same shard retire it to
            in-process execution).
        spawn_timeout: seconds to wait for a worker's first heartbeat.
    """

    def __init__(
        self,
        catalog: VersionedCatalog,
        *,
        shards: int,
        shard_by: str = "key-hash",
        pool_pages: int = 64,
        memory_pages: Optional[int] = None,
        workers: int = 4,
        queue_limit: int = 256,
        admission_policy: str = "fifo",
        execution: str = "tuple",
        cost_model: Optional[CostModel] = None,
        page_spec: Optional[PageSpec] = None,
        observability: Optional[ObservabilityConfig] = None,
        max_sessions: int = 64,
        supervision: Optional[SupervisionPolicy] = None,
        spawn_timeout: float = 30.0,
    ) -> None:
        if shards < 1:
            raise ServiceError(f"shards must be >= 1, got {shards}")
        if execution not in ALL_EXECUTION_MODES:
            raise ServiceError(
                f"execution must be one of {ALL_EXECUTION_MODES}, got {execution!r}"
            )
        self.catalog = catalog
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.page_spec = page_spec if page_spec is not None else PageSpec()
        self.execution = execution
        self.pool_pages = pool_pages
        self.default_memory_pages = (
            memory_pages if memory_pages is not None else pool_pages
        )
        if self.default_memory_pages < 4:
            raise ServiceError(
                f"memory_pages must be >= 4 (the Figure 3 minimum), "
                f"got {self.default_memory_pages}"
            )
        self.admission_policy = admission_policy
        self.supervision = (
            supervision if supervision is not None else SupervisionPolicy()
        )
        self.spawn_timeout = spawn_timeout
        if shard_by == "time-range":
            relations = [
                catalog.current(name).relation for name in catalog.names()
            ]
            self.shard_map = time_range_map(shards, *relations)
        else:
            self.shard_map = ShardMap(shards, strategy=shard_by)
        # Record the routing in the catalog: any snapshot at or after this
        # epoch resolves to this map, so fragment routing is a pure
        # function of (snapshot, rank) -- epoch-consistent across shards.
        catalog.record_shard_map(self.shard_map.as_dict())
        self.resilience = ResilienceReport()
        self.executor = QueryExecutor(
            workers=workers, queue_limit=queue_limit, name="repro-shard"
        )
        self.max_sessions = max_sessions
        self.obs = Observability(
            observability
            if observability is not None
            else ObservabilityConfig(tracing=False)
        )
        self._metrics_lock = threading.Lock()
        self._sessions_lock = threading.Lock()
        self._sessions: Dict[int, Session] = {}
        self._session_ids = 0
        self._stats_lock = threading.Lock()
        self._stats_cache: Dict[Tuple[str, int], RelationStatistics] = {}
        self._fanout_lock = threading.Lock()
        self._mp = _fork_context()
        self._closed = False
        self._shards: List[_ShardHandle] = []
        try:
            for rank in range(shards):
                handle = _ShardHandle(rank=rank)
                self._spawn(handle)
                self._shards.append(handle)
        except Exception:
            self.close()
            raise
        self._gauge_workers()

    # -- worker lifecycle ----------------------------------------------------

    def _worker_options(self, rank: int) -> Dict:
        return {
            "rank": rank,
            "pool_pages": self.pool_pages,
            "admission_policy": self.admission_policy,
            "page_bytes": self.page_spec.page_bytes,
            "tuple_bytes": self.page_spec.tuple_bytes,
            "io_ran": self.cost_model.io_ran,
            "io_seq": self.cost_model.io_seq,
            "shard_map": self.shard_map.as_dict(),
        }

    def _spawn(self, handle: _ShardHandle) -> None:
        """Start (or restart) the worker process behind *handle*."""
        parent_sock, child_sock = socket.socketpair()
        process = self._mp.Process(
            target=worker_main,
            args=(
                child_sock,
                {**self._worker_options(handle.rank), **handle.spawn_chaos},
            ),
            name=f"repro-shard-{handle.rank}",
            daemon=True,
        )
        process.start()
        child_sock.close()
        channel = Channel(parent_sock, name=f"shard{handle.rank}")
        handle.process = process
        handle.channel = channel
        handle.loaded = set()
        # First heartbeat doubles as the HELLO handshake: a worker that
        # cannot answer PING within the spawn timeout is dead on arrival.
        channel.send_obj(transport.PING, {})
        ftype, status = channel.recv_obj(timeout=self.spawn_timeout)
        if ftype != transport.PONG:
            raise ServiceError(
                f"shard {handle.rank} answered spawn handshake with frame {ftype}"
            )
        handle.last_status = status

    def _respawn(self, handle: _ShardHandle) -> None:
        """Kill whatever is left of the worker and start a fresh one."""
        if handle.channel is not None:
            handle.channel.close()
        process = handle.process
        if process is not None and process.is_alive():
            process.kill()
        if process is not None:
            process.join(timeout=10)
        handle.respawns += 1
        self._spawn(handle)

    def _quarantine(self, handle: _ShardHandle, detail: str) -> None:
        """Retire the shard to in-process execution (the bottom rung)."""
        handle.quarantined = True
        handle.inline = ShardWorker(self._worker_options(handle.rank))
        handle.loaded = set()
        if handle.channel is not None:
            handle.channel.close()
        if handle.process is not None and handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=10)
        self.resilience.record_degradation("shard-quarantine", detail)
        self._count(
            "repro_shard_quarantines_total",
            "Shards retired to in-process execution.",
        )
        self._gauge_workers()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the executor down, stop every worker, close every session."""
        if self._closed:
            return
        self._closed = True
        self.executor.shutdown(wait=True, cancel_queued=True, cancel_running=True)
        for handle in self._shards:
            channel = handle.channel
            if channel is not None and not channel.closed:
                try:
                    channel.send_obj(transport.SHUTDOWN, {})
                    channel.recv(timeout=2.0)
                except TransportError:
                    pass
                channel.close()
            process = handle.process
            if process is not None:
                process.join(timeout=2)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=5)
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close()
        self._gauge_workers()

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # -- sessions (the QueryService surface Session expects) -----------------

    def open_session(self, config: Optional[SessionConfig] = None, **overrides) -> Session:
        """Open a session (same contract as the single-process service)."""
        if self._closed:
            raise ServiceError("service is closed")
        if config is None:
            config = SessionConfig(**overrides)
        elif overrides:
            config = dataclasses.replace(config, **overrides)
        if config.execution is not None and config.execution not in ALL_EXECUTION_MODES:
            raise ServiceError(
                f"execution must be one of {ALL_EXECUTION_MODES}, "
                f"got {config.execution!r}"
            )
        if config.method not in _JOIN_METHODS:
            raise ServiceError(
                f"method must be one of {_JOIN_METHODS}, got {config.method!r}"
            )
        if config.predicate is not None:
            try:
                resolve_predicate(config.predicate)
            except ValueError as error:
                raise ServiceError(str(error)) from None
        if config.memory_pages is not None and config.memory_pages < 4:
            raise ServiceError(
                f"memory_pages must be >= 4, got {config.memory_pages}"
            )
        with self._sessions_lock:
            if len(self._sessions) >= self.max_sessions:
                raise ServiceError(f"session limit of {self.max_sessions} reached")
            self._session_ids += 1
            session = Session(self, self._session_ids, config)
            self._sessions[session.session_id] = session
        return session

    def _session_closed(self, session: Session) -> None:
        with self._sessions_lock:
            self._sessions.pop(session.session_id, None)

    @property
    def active_sessions(self) -> int:
        with self._sessions_lock:
            return len(self._sessions)

    # -- writes (mutate the authoritative catalog; shipping is lazy) ---------

    def _append(self, session: Session, name: str, rows: Rows) -> int:
        version = self.catalog.current(name)
        tuples = coerce_rows(version.schema, rows)
        return self.catalog.append(name, tuples).epoch

    def _delete(self, session: Session, name: str, rows: Rows) -> int:
        version = self.catalog.current(name)
        tuples = coerce_rows(version.schema, rows)
        return self.catalog.delete(name, tuples).epoch

    # -- queries -------------------------------------------------------------

    def _submit_join(
        self,
        session: Session,
        outer: str,
        inner: str,
        *,
        method: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> QueryHandle:
        if self._closed:
            raise ServiceError("service is closed")
        effective_method = method if method is not None else session.config.method
        if effective_method not in _JOIN_METHODS:
            raise ServiceError(
                f"method must be one of {_JOIN_METHODS}, got {effective_method!r}"
            )
        predicate = self._session_predicate(session)
        if predicate != NATURAL_PREDICATE:
            if effective_method not in ("auto", "sweep"):
                raise ServiceError(
                    f"predicate {predicate!r} requires method 'sweep' (or 'auto')"
                )
            if self.shard_map.strategy != "key-hash":
                raise ServiceError(
                    "time-range sharding evaluates only the natural join's "
                    f"{NATURAL_PREDICATE!r} predicate; got {predicate!r}"
                )
        label = f"s{session.session_id}:{outer}x{inner}"
        return self.executor.submit(
            lambda h: self._run_join(session, outer, inner, effective_method, h),
            label=label,
            deadline_seconds=session.config.deadline_seconds,
        )

    def _run_join(
        self,
        session: Session,
        outer: str,
        inner: str,
        method: str,
        handle: QueryHandle,
    ) -> ShardedQueryResult:
        try:
            handle.check_cancelled()
            snapshot = self.catalog.snapshot()
            config = self._query_config(session)
            predicate = self._session_predicate(session)
            # Resolve "auto" ONCE, against the global statistics -- the
            # same pick the single-process service makes -- and send the
            # concrete method to every shard, so all fragments run the
            # same algorithm and the merge is well-defined.
            if method == "auto":
                method = self._choose_method(
                    snapshot, outer, inner, config, predicate=predicate
                )
            if config.execution == "forward-sweep" and method == "partition":
                method = "sweep"
            result = self._fan_out(
                snapshot, outer, inner, method, config, predicate, handle
            )
            self._count_query("ok", method)
            return dataclasses.replace(
                result,
                session_id=session.session_id,
                query_id=handle.query_id,
            )
        except Exception:
            self._count_query("error", method)
            raise

    def _fan_out(
        self,
        snapshot: CatalogSnapshot,
        outer: str,
        inner: str,
        method: str,
        config: PartitionJoinConfig,
        predicate: str,
        handle: QueryHandle,
    ) -> ShardedQueryResult:
        r_version = snapshot.version(outer)
        s_version = snapshot.version(inner)
        epochs = (r_version.epoch, s_version.epoch)
        request = {
            "query_id": handle.query_id,
            "outer": outer,
            "outer_epoch": epochs[0],
            "inner": inner,
            "inner_epoch": epochs[1],
            "method": method,
            "execution": config.execution,
            "memory_pages": config.memory_pages,
            "predicate": predicate if method == "sweep" else None,
        }
        needed = (
            (outer, epochs[0], r_version.relation),
            (inner, epochs[1], s_version.relation),
        )
        query_redispatches = 0
        metas: List[Dict] = []
        columns_by_rank: List[Optional[Tuple]] = []
        with self._fanout_lock:
            # Ship missing fragment versions, then pipeline the EXECUTEs so
            # every live shard computes concurrently.
            dispatched: List[_ShardHandle] = []
            for shard in self._shards:
                if shard.quarantined:
                    continue
                try:
                    self._ensure_loaded(shard, needed)
                    shard.channel.send_obj(transport.EXECUTE, request)
                    dispatched.append(shard)
                except TransportError as error:
                    query_redispatches += self._recover(shard, needed, error)
                    dispatched.append(None)  # collect phase re-dispatches
            # Collect in rank order; a dead or hung shard rides the ladder.
            for shard in self._shards:
                meta, columns, redispatches = self._collect(
                    shard, needed, request, shard in dispatched
                )
                query_redispatches += redispatches
                metas.append(meta)
                columns_by_rank.append(columns)
        return self._merge(
            outer, inner, epochs, snapshot.epoch, metas, columns_by_rank,
            query_redispatches,
        )

    def _collect(
        self,
        shard: _ShardHandle,
        needed,
        request: Dict,
        was_dispatched: bool,
    ) -> Tuple[Dict, Optional[Tuple], int]:
        """One shard's RESULT, riding the re-dispatch ladder on failure."""
        redispatches = 0
        attempt_pending = was_dispatched and not shard.quarantined
        while True:
            if shard.quarantined:
                self._ensure_loaded_inline(shard, needed)
                meta, columns = shard.inline.execute(request)
                self._count(
                    "repro_shard_fragments_total",
                    "Fragments executed.",
                    status="quarantined",
                )
                return (
                    {**meta, "quarantined": True, "redispatches": redispatches},
                    columns,
                    redispatches,
                )
            try:
                if not attempt_pending:
                    self._ensure_loaded(shard, needed)
                    shard.channel.send_obj(transport.EXECUTE, request)
                ftype, flags, payload = shard.channel.recv(
                    timeout=self.supervision.lane_timeout_seconds
                )
                if ftype == transport.ERROR:
                    body = transport.decode_payload(payload, flags)
                    raise ServiceError(
                        f"shard {shard.rank} failed deterministically: "
                        f"{body.get('error')}"
                    )
                if ftype != transport.RESULT:
                    raise TransportError(
                        f"expected RESULT from shard {shard.rank}, got {ftype}",
                        kind="protocol",
                    )
                meta, columns = transport.unpack_result(payload)
                shard.failures = 0
                meta["redispatches"] = redispatches
                self._count("repro_shard_fragments_total", "Fragments executed.", status="ok")
                return meta, columns, redispatches
            except TransportError as error:
                redispatches += self._recover(shard, needed, error)
                attempt_pending = False
                if redispatches > self.supervision.max_redispatches:
                    self._quarantine(
                        shard,
                        f"shard {shard.rank} exhausted "
                        f"{self.supervision.max_redispatches} re-dispatches: {error}",
                    )

    def _recover(self, shard: _ShardHandle, needed, error: TransportError) -> int:
        """Respawn after a death/hang; returns 1 (one re-dispatch consumed)."""
        kind = "shard-hang" if error.kind == "timeout" else "shard-death"
        shard.failures += 1
        self.resilience.record_degradation(
            kind, f"shard {shard.rank}: {error} (respawn #{shard.respawns + 1})"
        )
        self._count(
            "repro_shard_redispatches_total",
            "Fragment re-dispatches forced by worker death or hang.",
            kind=kind,
        )
        self._count("repro_shard_fragments_total", "Fragments executed.", status="redispatch")
        if (
            self.supervision.quarantine_after
            and shard.failures >= self.supervision.quarantine_after
            and shard.respawns + 1 >= self.supervision.quarantine_after
        ):
            # Let the caller's budget check quarantine; here we only respawn.
            pass
        self._respawn(shard)
        self._gauge_workers()
        return 1

    def _ensure_loaded(self, shard: _ShardHandle, needed) -> None:
        """Ship any fragment versions the worker has not installed yet."""
        for name, epoch, relation in needed:
            key = (name, epoch)
            if key in shard.loaded:
                continue
            fragment = self.shard_map.fragment(relation, shard.rank)
            meta = {
                "name": name,
                "epoch": epoch,
                "schema": schema_to_dict(relation.schema),
            }
            payload = transport.pack_result(meta, fragment.to_columns())
            shard.channel.send(transport.LOAD, payload)
            ftype, body = shard.channel.recv_obj(
                timeout=self.supervision.lane_timeout_seconds
            )
            if ftype != transport.OK:
                raise TransportError(
                    f"shard {shard.rank} failed to load fragment {key}: {body}",
                    kind="protocol",
                )
            shard.loaded.add(key)
            self._count(
                "repro_shard_fragment_loads_total",
                "Fragment versions shipped to workers.",
            )

    def _ensure_loaded_inline(self, shard: _ShardHandle, needed) -> None:
        """Quarantine-rung twin of :meth:`_ensure_loaded` (no socket)."""
        for name, epoch, relation in needed:
            key = (name, epoch)
            if key in shard.loaded:
                continue
            fragment = self.shard_map.fragment(relation, shard.rank)
            shard.inline.load(
                {
                    "name": name,
                    "epoch": epoch,
                    "schema": schema_to_dict(relation.schema),
                },
                fragment.to_columns(),
            )
            shard.loaded.add(key)
            self._count(
                "repro_shard_fragment_loads_total",
                "Fragment versions shipped to workers.",
            )

    # -- the deterministic merge ---------------------------------------------

    def _merge(
        self,
        outer: str,
        inner: str,
        epochs: Tuple[int, int],
        snapshot_epoch: int,
        metas: List[Dict],
        columns_by_rank: List[Optional[Tuple]],
        redispatches: int,
    ) -> ShardedQueryResult:
        relation: Optional[ValidTimeRelation] = None
        for meta, columns in zip(metas, columns_by_rank):
            if meta.get("result_schema") is None:
                continue
            schema = schema_from_dict(meta["result_schema"])
            if relation is None:
                relation = ValidTimeRelation(schema)
            if columns is not None:
                shard_relation = ValidTimeRelation.from_columns(schema, *columns)
                relation.extend(shard_relation.tuples)

        n_result = sum(m["outcome"]["n_result_tuples"] for m in metas)
        outcome = JoinOutcome(
            result=relation,
            n_result_tuples=n_result,
            overflow_blocks=sum(m["outcome"]["overflow_blocks"] for m in metas),
            cache_tuples_peak=max(
                (m["outcome"]["cache_tuples_peak"] for m in metas), default=0
            ),
            cache_tuples_spilled=sum(
                m["outcome"]["cache_tuples_spilled"] for m in metas
            ),
        )
        phases: Dict[str, IOStatistics] = {}
        totals = IOStatistics()
        for meta in metas:
            totals.merge(IOStatistics(**meta["totals"]))
            for name, counters in meta["phases"].items():
                phases.setdefault(name, IOStatistics()).merge(
                    IOStatistics(**counters)
                )
        shard_reports = tuple(
            ShardFragmentReport(
                rank=meta["rank"],
                algorithm=meta["algorithm"],
                n_result_tuples=meta["outcome"]["n_result_tuples"],
                outcome_counters=(
                    meta["outcome"]["n_result_tuples"],
                    meta["outcome"]["overflow_blocks"],
                    meta["outcome"]["cache_tuples_peak"],
                    meta["outcome"]["cache_tuples_spilled"],
                ),
                phases=meta["phases"],
                totals=meta["totals"],
                charged_ops=meta["charged_ops"],
                cost=meta["cost"],
                requested_pages=meta["requested_pages"],
                granted_pages=meta["granted_pages"],
                degraded=meta["degraded"],
                peak_granted_pages=meta["peak_granted_pages"],
                fragment_tuples=tuple(meta["fragment_tuples"]),
                redispatches=meta.get("redispatches", 0),
                quarantined=meta.get("quarantined", False),
            )
            for meta in metas
        )
        total_cost = sum(m["cost"] for m in metas)
        charged_ops = sum(m["charged_ops"] for m in metas)
        self._count(
            "repro_shard_charged_ops_total",
            "Charged I/O operations summed over shard fragments.",
            amount=charged_ops,
        )
        return ShardedQueryResult(
            relation=relation,
            outcome=outcome,
            algorithm=metas[0]["algorithm"] if metas else "partition",
            cost=total_cost,
            service_cost=max((m["cost"] for m in metas), default=0.0),
            charged_ops=charged_ops,
            phases=phases,
            totals=totals,
            outer=outer,
            inner=inner,
            epochs=epochs,
            snapshot_epoch=snapshot_epoch,
            shards=shard_reports,
            redispatches=redispatches,
            requested_pages=sum(m["requested_pages"] for m in metas),
            granted_pages=sum(m["granted_pages"] for m in metas),
            degraded=any(m["degraded"] for m in metas),
        )

    # -- planning helpers (mirrors of the single-process service) ------------

    def _query_config(self, session: Session) -> PartitionJoinConfig:
        memory = (
            session.config.memory_pages
            if session.config.memory_pages is not None
            else self.default_memory_pages
        )
        execution = (
            session.config.execution
            if session.config.execution is not None
            else self.execution
        )
        return PartitionJoinConfig(
            memory_pages=memory,
            cost_model=self.cost_model,
            page_spec=self.page_spec,
            execution=execution,
        )

    def _statistics(self, version) -> RelationStatistics:
        key = (version.name, version.epoch)
        with self._stats_lock:
            stats = self._stats_cache.get(key)
        if stats is None:
            stats = analyze(version.relation, self.page_spec)
            with self._stats_lock:
                if len(self._stats_cache) > 1024:
                    self._stats_cache.clear()
                self._stats_cache[key] = stats
        return stats

    def _session_predicate(self, session: Session) -> str:
        raw = session.config.predicate
        if raw is None:
            return NATURAL_PREDICATE
        return resolve_predicate(raw).name

    def _choose_method(
        self,
        snapshot: CatalogSnapshot,
        outer: str,
        inner: str,
        config: PartitionJoinConfig,
        *,
        predicate: str = NATURAL_PREDICATE,
    ) -> str:
        if predicate != NATURAL_PREDICATE:
            return "sweep"
        outer_stats = self._statistics(snapshot.version(outer))
        inner_stats = self._statistics(snapshot.version(inner))
        return choose_algorithm(
            outer_stats.n_pages,
            inner_stats.n_pages,
            config.memory_pages,
            self.cost_model,
            long_lived_fraction=inner_stats.long_lived_fraction,
            endpoint_sorted=(
                outer_stats.endpoint_sorted,
                inner_stats.endpoint_sorted,
            ),
        )

    # -- EXPLAIN support ------------------------------------------------------

    def shard_fanout(self, outer: str, inner: str) -> Dict:
        """The EXPLAIN fan-out description with per-shard predicted costs."""
        snapshot = self.catalog.snapshot()
        return predict_shard_fanout(
            self.shard_map,
            snapshot.version(outer).relation,
            snapshot.version(inner).relation,
            memory_pages=self.default_memory_pages,
            cost_model=self.cost_model,
            page_spec=self.page_spec,
        )

    # -- supervision / introspection -----------------------------------------

    def ping_all(self) -> List[Dict]:
        """Heartbeat every worker; returns the PONG bodies in rank order."""
        statuses = []
        with self._fanout_lock:
            for shard in self._shards:
                if shard.quarantined:
                    statuses.append(
                        {**shard.inline.status(), "quarantined": True}
                    )
                    continue
                try:
                    shard.channel.send_obj(transport.PING, {})
                    ftype, body = shard.channel.recv_obj(
                        timeout=self.supervision.heartbeat_seconds * 10
                    )
                    if ftype != transport.PONG:
                        raise TransportError(
                            f"expected PONG, got {ftype}", kind="protocol"
                        )
                    shard.last_status = body
                    statuses.append(body)
                except TransportError as error:
                    self._recover(shard, (), error)
                    statuses.append({"rank": shard.rank, "respawned": True})
        return statuses

    def worker_pids(self) -> List[Optional[int]]:
        """Live worker PIDs in rank order (None for quarantined shards)."""
        return [
            None
            if shard.quarantined or shard.process is None
            else shard.process.pid
            for shard in self._shards
        ]

    def alive_workers(self) -> int:
        return sum(
            1
            for shard in self._shards
            if not shard.quarantined
            and shard.process is not None
            and shard.process.is_alive()
        )

    def _arm_chaos_hang(self, rank: int, seconds: float) -> None:
        """Arm a deterministic hang in worker *rank* (chaos-test hook)."""
        shard = self._shards[rank]
        if shard.quarantined:
            raise ServiceError(f"shard {rank} is quarantined")
        with self._fanout_lock:
            shard.channel.send_obj(transport.CHAOS, {"hang_seconds": seconds})
            ftype, _body = shard.channel.recv_obj(timeout=self.spawn_timeout)
            if ftype != transport.OK:
                raise ServiceError(f"shard {rank} refused the chaos frame")

    def _arm_chaos_respawn_hang(self, rank: int, seconds: float) -> None:
        """Arm a hang that re-arms on every respawn of worker *rank*.

        Chaos-test hook for the quarantine rung: the shard fails every
        incarnation until the re-dispatch budget runs out.  The quarantine
        worker itself never inherits the hang.
        """
        self._shards[rank].spawn_chaos = {"chaos_hang_seconds": seconds}
        self._arm_chaos_hang(rank, seconds)

    # -- metrics / report ----------------------------------------------------

    def _count(self, name: str, help: str = "", amount: float = 1.0, **labels) -> None:
        with self._metrics_lock:
            self.obs.count(name, help, amount=amount, **labels)

    def _count_query(self, status: str, method: str) -> None:
        self._count(
            "repro_shard_queries_total",
            "Sharded queries served, by final status and method.",
            status=status,
            method=method,
        )

    def _gauge_workers(self) -> None:
        with self._metrics_lock:
            self.obs.gauge(
                "repro_shard_workers",
                float(
                    sum(
                        1
                        for shard in self._shards
                        if not shard.quarantined
                        and shard.process is not None
                        and shard.process.is_alive()
                    )
                ),
                "Live shard worker processes.",
            )

    def metrics_snapshot(self) -> Dict:
        """Stable snapshot of every ``repro_shard_*`` family."""
        self._gauge_workers()
        counters = transport_counters()
        with self._metrics_lock:
            for name, value in counters.items():
                self.obs.gauge(
                    f"repro_shard_transport_{name}",
                    float(value),
                    "Transport counter (process-local).",
                )
        return self.obs.metrics_snapshot()

    def report(self) -> Dict:
        """A human-sized serving summary (topology, supervision, transport)."""
        return {
            "shards": self.shard_map.n_shards,
            "strategy": self.shard_map.strategy,
            "active_sessions": self.active_sessions,
            "pool_pages_per_shard": self.pool_pages,
            "workers": [
                {
                    "rank": shard.rank,
                    "pid": None if shard.process is None else shard.process.pid,
                    "alive": (
                        shard.process is not None and shard.process.is_alive()
                        and not shard.quarantined
                    ),
                    "quarantined": shard.quarantined,
                    "respawns": shard.respawns,
                    "loaded_fragments": len(shard.loaded),
                    "peak_granted_pages": shard.last_status.get(
                        "peak_granted_pages", 0
                    ),
                }
                for shard in self._shards
            ],
            "redispatches": sum(
                1
                for event in self.resilience.degradations
                if event.kind in ("shard-death", "shard-hang")
            ),
            "degradations": [
                {"kind": event.kind, "detail": event.detail}
                for event in self.resilience.degradations
            ],
            "transport": transport_counters(),
        }


def predict_shard_fanout(
    shard_map: ShardMap,
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    *,
    memory_pages: int,
    cost_model: CostModel,
    page_spec: PageSpec,
) -> Dict:
    """Per-shard predicted costs for EXPLAIN's shard fan-out line.

    Plans each shard's fragment pair with the same planner the worker will
    use and sums the predicted per-phase costs -- so EXPLAIN's fan-out
    line shows the skew the router expects, before anything runs.
    """
    from repro.core.partition_join import plan_partition_join
    from repro.obs.explain import predicted_phases

    config = PartitionJoinConfig(
        memory_pages=memory_pages, cost_model=cost_model, page_spec=page_spec
    )
    per_shard = []
    for rank in range(shard_map.n_shards):
        r_frag = shard_map.fragment(r, rank)
        s_frag = shard_map.fragment(s, rank)
        plan, single, outer_pages, inner_pages = plan_partition_join(
            r_frag, s_frag, config
        )
        predicted = sum(
            phase.predicted
            for phase in predicted_phases(
                plan, single, outer_pages, inner_pages, config
            )
        )
        per_shard.append(
            {
                "rank": rank,
                "outer_tuples": len(r_frag),
                "inner_tuples": len(s_frag),
                "outer_pages": outer_pages,
                "inner_pages": inner_pages,
                "predicted_cost": round(predicted, 2),
            }
        )
    return {
        "shards": shard_map.n_shards,
        "strategy": shard_map.strategy,
        "per_shard": per_shard,
    }
