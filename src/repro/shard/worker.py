"""The shard worker: one process, one shard, its own memory and disk.

A worker owns the full serving stack for its shard: a private
:class:`~repro.service.admission.AdmissionController` over its own
:class:`~repro.storage.buffer.BufferPool`, a fresh simulated disk per
fragment (created inside :func:`~repro.core.partition_join.partition_join`,
exactly like the single-process service), and -- for the lane execution
modes -- its own worker-lane pool.  It speaks the
:mod:`repro.shard.transport` protocol:

* ``LOAD`` installs a relation fragment under ``(name, epoch)``; fragments
  are immutable once installed, so re-sending after a respawn rebuilds
  identical state.
* ``EXECUTE`` runs one join fragment pinned to explicit epochs and answers
  with a ``RESULT`` frame: the result columns in arena-descriptor shape
  plus the fragment's :class:`~repro.core.joiner.JoinOutcome` counters,
  per-phase charged-I/O ledger, and admission pedigree.
* ``PING``/``PONG`` is the heartbeat; ``CHAOS`` arms a deterministic hang
  (test hook for the supervision ladder); ``SHUTDOWN`` exits the loop.

Everything a worker computes is a pure function of its fragments and the
query parameters, which is what makes the coordinator's re-dispatch
deterministic: respawn, re-``LOAD``, re-``EXECUTE`` reproduces the lost
fragment bit-identically.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Optional, Tuple

from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.sort_merge import sort_merge_join
from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.core.planner import estimate_grant_pages
from repro.model.errors import ServiceError
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.service.admission import AdmissionController
from repro.shard import transport
from repro.shard.partitioning import ShardMap
from repro.shard.transport import Channel, TransportError
from repro.storage.buffer import BufferPool
from repro.storage.iostats import CostModel
from repro.storage.page import PageSpec


def schema_to_dict(schema: RelationSchema) -> Dict:
    """The wire shape of a relation schema (LOAD frames, RESULT meta)."""
    return {
        "name": schema.name,
        "join_attributes": list(schema.join_attributes),
        "payload_attributes": list(schema.payload_attributes),
        "tuple_bytes": schema.tuple_bytes,
    }


def schema_from_dict(data: Dict) -> RelationSchema:
    return RelationSchema(
        name=data["name"],
        join_attributes=tuple(data["join_attributes"]),
        payload_attributes=tuple(data["payload_attributes"]),
        tuple_bytes=int(data["tuple_bytes"]),
    )


class ShardWorker:
    """The in-process shard engine (testable without forking).

    Args:
        options: the spawn-time configuration dict: ``rank``, ``pool_pages``,
            ``admission_policy``, ``page_bytes`` / ``tuple_bytes``,
            ``io_ran`` / ``io_seq``, and the ``shard_map`` record.
    """

    def __init__(self, options: Dict) -> None:
        self.rank = int(options["rank"])
        self.shard_map = ShardMap.from_dict(options["shard_map"])
        self.page_spec = PageSpec(
            page_bytes=int(options.get("page_bytes", PageSpec().page_bytes)),
            tuple_bytes=int(options.get("tuple_bytes", PageSpec().tuple_bytes)),
        )
        self.cost_model = CostModel(
            io_ran=float(options.get("io_ran", 5.0)),
            io_seq=float(options.get("io_seq", 1.0)),
        )
        self.pool_pages = int(options.get("pool_pages", 64))
        self.admission = AdmissionController(
            self.pool_pages,
            policy=str(options.get("admission_policy", "fifo")),
        )
        self._fragments: Dict[Tuple[str, int], ValidTimeRelation] = {}
        self._queries = 0
        # Chaos hook: a hang armed at spawn time survives respawns (the
        # coordinator's supervision tests need a worker that fails on
        # every incarnation, not just the first).
        self._hang_seconds: Optional[float] = (
            float(options["chaos_hang_seconds"])
            if "chaos_hang_seconds" in options
            else None
        )

    # -- frame handlers ------------------------------------------------------

    def load(self, meta: Dict, columns) -> Dict:
        """Install a fragment version (idempotent: same key, same bytes)."""
        schema = schema_from_dict(meta["schema"])
        key = (str(meta["name"]), int(meta["epoch"]))
        if columns is None:
            relation = ValidTimeRelation(schema)
        else:
            relation = ValidTimeRelation.from_columns(schema, *columns)
        self._fragments[key] = relation
        return {"rank": self.rank, "loaded": list(key), "n_tuples": len(relation)}

    def execute(self, request: Dict) -> Tuple[Dict, Optional[Tuple]]:
        """Run one fragment join; returns ``(meta, result_columns)``."""
        if self._hang_seconds is not None:
            # The armed chaos hang: sleep where a real wedge would sit --
            # after dequeue, before any work -- so SIGKILL/timeout recovery
            # re-dispatches a fragment that never partially executed.
            seconds, self._hang_seconds = self._hang_seconds, None
            time.sleep(seconds)
        outer = (str(request["outer"]), int(request["outer_epoch"]))
        inner = (str(request["inner"]), int(request["inner_epoch"]))
        try:
            r = self._fragments[outer]
            s = self._fragments[inner]
        except KeyError as missing:
            raise ServiceError(
                f"shard {self.rank} has no fragment {missing} "
                f"(loaded: {sorted(self._fragments)})"
            ) from None
        method = str(request["method"])
        memory_pages = int(request["memory_pages"])
        execution = str(request.get("execution", "batch"))
        predicate = request.get("predicate") or "intersects"

        config = PartitionJoinConfig(
            memory_pages=memory_pages,
            cost_model=self.cost_model,
            page_spec=self.page_spec,
            execution="forward-sweep" if method == "sweep" else execution,
            predicate=predicate,
        )
        outer_pages = self.page_spec.pages_for_tuples(len(r))
        inner_pages = self.page_spec.pages_for_tuples(len(s))
        if method in ("partition", "sweep"):
            ask = estimate_grant_pages(
                outer_pages,
                inner_pages,
                config.memory_pages,
                execution=config.execution,
                spec=config.page_spec,
                lanes=config.sweep_workers,
                prefetch_depth=config.prefetch_depth,
            )
        else:
            ask = config.memory_pages
        grant = self.admission.acquire(
            max(1, ask), label=f"shard{self.rank}:q{request.get('query_id', 0)}"
        )
        try:
            pool = BufferPool(grant.pages)
            if method in ("partition", "sweep"):
                # A grant clamped to this worker's pool replans for what it
                # actually got -- the same ladder the single-process
                # service rides.
                effective = (
                    config
                    if grant.pages >= config.memory_pages
                    else dataclasses.replace(config, memory_pages=grant.pages)
                )
                run = partition_join(r, s, effective, pool=pool)
                outcome = run.outcome
                tracker = run.layout.tracker
                cost = run.total_cost(self.cost_model)
                algorithm = "forward-sweep" if method == "sweep" else "partition"
            elif method in ("sort_merge", "nested_loop"):
                runner = sort_merge_join if method == "sort_merge" else nested_loop_join
                run = runner(r, s, grant.pages, page_spec=self.page_spec)
                from repro.core.joiner import JoinOutcome

                outcome = JoinOutcome(
                    result=run.result, n_result_tuples=run.n_result_tuples
                )
                tracker = run.layout.tracker
                cost = tracker.stats.cost(self.cost_model)
                algorithm = method
            else:
                raise ServiceError(f"unknown join method {method!r}")
        finally:
            grant.release()
        self._queries += 1

        result = outcome.result
        n_result = outcome.n_result_tuples
        if result is not None and self.shard_map.strategy == "time-range":
            # Replicated inputs meet in every shard both tuples overlap;
            # only the owner of the intersection start reports the pair.
            owned = [
                tup
                for tup in result.tuples
                if self.shard_map.owns_result(self.rank, tup.vs)
            ]
            result = ValidTimeRelation(result.schema, owned)
            n_result = len(owned)

        meta = {
            "query_id": request.get("query_id", 0),
            "rank": self.rank,
            "algorithm": algorithm,
            "outcome": {
                "n_result_tuples": n_result,
                "overflow_blocks": outcome.overflow_blocks,
                "cache_tuples_peak": outcome.cache_tuples_peak,
                "cache_tuples_spilled": outcome.cache_tuples_spilled,
            },
            "phases": {
                name: stats.as_dict() for name, stats in tracker.phases.items()
            },
            "totals": tracker.stats.as_dict(),
            "charged_ops": tracker.stats.total_ops,
            "cost": cost,
            "requested_pages": ask,
            "granted_pages": grant.pages,
            "degraded": grant.degraded,
            "clamped": grant.clamped,
            "peak_granted_pages": self.admission.peak_granted_pages,
            "fragment_tuples": (len(r), len(s)),
            "result_schema": schema_to_dict(result.schema) if result is not None else None,
        }
        columns = result.to_columns() if result is not None else None
        return meta, columns

    def status(self) -> Dict:
        """The PONG body: liveness plus per-shard admission pressure."""
        return {
            "rank": self.rank,
            "fragments": len(self._fragments),
            "queries": self._queries,
            "peak_granted_pages": self.admission.peak_granted_pages,
            "grants": self.admission.grants,
            "pool_pages": self.pool_pages,
        }

    def arm_chaos(self, request: Dict) -> Dict:
        """Arm a deterministic hang before the next EXECUTE (test hook)."""
        self._hang_seconds = float(request["hang_seconds"])
        return {"rank": self.rank, "armed": self._hang_seconds}


def worker_main(sock, options: Dict) -> None:
    """Child-process entry point: serve frames until SHUTDOWN or EOF."""
    worker = ShardWorker(options)
    channel = Channel(sock, name=f"coordinator<-shard{worker.rank}")
    try:
        while True:
            try:
                ftype, flags, payload = channel.recv()
            except TransportError:
                break  # the coordinator went away; nothing left to serve
            try:
                if ftype == transport.SHUTDOWN:
                    channel.send_obj(transport.OK, worker.status())
                    break
                elif ftype == transport.PING:
                    channel.send_obj(transport.PONG, worker.status())
                elif ftype == transport.CHAOS:
                    body = transport.decode_payload(payload, flags)
                    channel.send_obj(transport.OK, worker.arm_chaos(body))
                elif ftype == transport.LOAD:
                    meta, columns = transport.unpack_result(payload)
                    channel.send_obj(transport.OK, worker.load(meta, columns))
                elif ftype == transport.EXECUTE:
                    request = transport.decode_payload(payload, flags)
                    meta, columns = worker.execute(request)
                    channel.send(transport.RESULT, transport.pack_result(meta, columns))
                else:
                    channel.send_obj(
                        transport.ERROR,
                        {"error": f"unexpected frame type {ftype}"},
                    )
            except TransportError:
                break
            except Exception as error:  # deterministic failures travel back
                try:
                    channel.send_obj(
                        transport.ERROR,
                        {"error": f"{type(error).__name__}: {error}"},
                    )
                except TransportError:
                    break
    finally:
        channel.close()
