"""Shard maps: hash/range sharding of valid-time relations.

A :class:`ShardMap` assigns every tuple of a relation to one shard (or,
for temporal range sharding, to every shard whose time range the tuple
overlaps).  Both strategies decompose the valid-time natural join into
per-shard fragments whose results union *disjointly*:

* ``"key-hash"`` -- tuples route by a stable CRC-32 hash of the join key.
  Matching tuples share a key, hence a shard, so the fragment joins
  partition the result multiset exactly.
* ``"time-range"`` -- tuples route to every shard whose chronon range
  their validity interval overlaps (long-lived tuples are *replicated*,
  the paper's Section 3.2 observation in shard form).  A matching pair
  then meets in every shard both tuples overlap; the shard that **owns**
  the intersection start (:meth:`ShardMap.owns_result`) reports it, the
  others drop it, so each result tuple is emitted exactly once.

Hashing never uses Python's builtin ``hash`` -- string hashing is salted
per process, and shard routing must agree between the coordinator and
every worker process.  :func:`stable_key_hash` feeds a stable byte
encoding of the key through ``zlib.crc32`` instead.

The coordinator records the active map in the
:class:`~repro.engine.catalog.VersionedCatalog`
(:meth:`~repro.engine.catalog.VersionedCatalog.record_shard_map`), stamped
with the epoch it took effect, so any snapshot resolves to exactly one map
and fragment routing stays epoch-consistent across shards.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.model.errors import ServiceError
from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import VTTuple
from repro.time.lifespan import lifespan_of

#: The supported routing strategies.
SHARD_STRATEGIES = ("key-hash", "time-range")

#: Field separator for the stable key encoding (never appears in reprs).
_SEP = b"\x1f"


def stable_key_hash(key: Tuple) -> int:
    """A process-stable 32-bit hash of a join key.

    ``repr`` of each component is type-prefixed so ``1`` and ``"1"`` hash
    differently, then the whole encoding runs through CRC-32.  Unlike the
    builtin ``hash``, the value is identical in every process (no string
    salting), which is what lets the coordinator and the shard workers
    agree on routing without a handshake.
    """
    parts = [f"{type(part).__name__}:{part!r}".encode("utf-8") for part in key]
    return zlib.crc32(_SEP.join(parts)) & 0xFFFFFFFF


@dataclass(frozen=True)
class ShardMap:
    """An immutable assignment of tuples to ``n_shards`` shards.

    Attributes:
        n_shards: shard count (>= 1).
        strategy: ``"key-hash"`` or ``"time-range"``.
        boundaries: for ``"time-range"``, the ``n_shards - 1`` ascending
            split chronons; shard *i* covers ``[boundaries[i-1],
            boundaries[i])`` with open outer edges.  Empty for
            ``"key-hash"``.
    """

    n_shards: int
    strategy: str = "key-hash"
    boundaries: Tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ServiceError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.strategy not in SHARD_STRATEGIES:
            raise ServiceError(
                f"shard strategy must be one of {SHARD_STRATEGIES}, "
                f"got {self.strategy!r}"
            )
        object.__setattr__(self, "boundaries", tuple(self.boundaries))
        if self.strategy == "key-hash":
            if self.boundaries:
                raise ServiceError("key-hash sharding takes no boundaries")
            return
        if len(self.boundaries) != self.n_shards - 1:
            raise ServiceError(
                f"time-range sharding over {self.n_shards} shards needs "
                f"{self.n_shards - 1} boundaries, got {len(self.boundaries)}"
            )
        if any(b >= a for b, a in zip(self.boundaries, self.boundaries[1:])):
            raise ServiceError(f"boundaries must be strictly ascending: {self.boundaries}")

    # -- routing -------------------------------------------------------------

    def shard_of_key(self, key: Tuple) -> int:
        """The shard a join key hashes to (``"key-hash"`` routing)."""
        return stable_key_hash(key) % self.n_shards

    def range_of(self, rank: int) -> Tuple[Optional[int], Optional[int]]:
        """Chronon range ``[lo, hi)`` of shard *rank* (None = open edge)."""
        if not 0 <= rank < self.n_shards:
            raise ServiceError(f"shard rank {rank} out of range 0..{self.n_shards - 1}")
        lo = self.boundaries[rank - 1] if rank > 0 else None
        hi = self.boundaries[rank] if rank < self.n_shards - 1 else None
        return lo, hi

    def shards_of_tuple(self, tup: VTTuple) -> Tuple[int, ...]:
        """Every shard *tup* routes to (one for key-hash; >= 1 for ranges)."""
        if self.strategy == "key-hash":
            return (self.shard_of_key(tup.key),)
        ranks = []
        for rank in range(self.n_shards):
            lo, hi = self.range_of(rank)
            if (lo is None or tup.ve >= lo) and (hi is None or tup.vs < hi):
                ranks.append(rank)
        return tuple(ranks)

    def owns_result(self, rank: int, vs: int) -> bool:
        """True when shard *rank* owns a result whose interval starts at *vs*.

        For time-range sharding a matching pair meets in every shard both
        tuples overlap; exactly one shard -- the one whose range contains
        the intersection start -- reports it.  Key-hash fragments are
        disjoint, so every shard owns everything it produces.
        """
        if self.strategy == "key-hash":
            return True
        lo, hi = self.range_of(rank)
        return (lo is None or vs >= lo) and (hi is None or vs < hi)

    def fragment(self, relation: ValidTimeRelation, rank: int) -> ValidTimeRelation:
        """Shard *rank*'s fragment of *relation* (a stable-order filter).

        The fragment preserves the relation's tuple order, so "the existing
        output order" of a fragment join is well-defined and a serial
        replay of the same fragment reproduces it bit-identically.
        """
        if not 0 <= rank < self.n_shards:
            raise ServiceError(f"shard rank {rank} out of range 0..{self.n_shards - 1}")
        if self.n_shards == 1:
            # The whole relation: the single "fragment" is the identity,
            # which anchors shards=1 to the single-process service exactly.
            return ValidTimeRelation(relation.schema, relation.tuples)
        return ValidTimeRelation(
            relation.schema,
            (tup for tup in relation.tuples if rank in self.shards_of_tuple(tup)),
        )

    def fragment_counts(self, relation: ValidTimeRelation) -> List[int]:
        """Tuples routed to each shard (replicas counted per shard)."""
        counts = [0] * self.n_shards
        for tup in relation.tuples:
            for rank in self.shards_of_tuple(tup):
                counts[rank] += 1
        return counts

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> Dict:
        """Plain-dict form (the catalog-record and HELLO-frame shape)."""
        return {
            "n_shards": self.n_shards,
            "strategy": self.strategy,
            "boundaries": list(self.boundaries),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ShardMap":
        return cls(
            n_shards=int(data["n_shards"]),
            strategy=str(data["strategy"]),
            boundaries=tuple(int(b) for b in data.get("boundaries", ())),
        )


def time_range_map(n_shards: int, *relations: ValidTimeRelation) -> ShardMap:
    """An equal-width time-range :class:`ShardMap` over *relations*.

    Boundaries split the union lifespan of the given relations into
    ``n_shards`` equal chronon ranges (the outer shards stay open-ended,
    so routing never loses tuples outside the sampled lifespan).
    """
    if n_shards == 1:
        return ShardMap(1, strategy="time-range")
    starts: List[int] = []
    ends: List[int] = []
    for relation in relations:
        span = lifespan_of(tup.valid for tup in relation.tuples)
        if span is not None:
            starts.append(span.start)
            ends.append(span.end)
    if not starts:
        raise ServiceError("time_range_map needs at least one non-empty relation")
    lo, hi = min(starts), max(ends)
    width = max(1, (hi - lo + 1) // n_shards)
    boundaries = tuple(lo + width * i for i in range(1, n_shards))
    # Degenerate lifespans can collide boundaries; force strict ascent.
    fixed = []
    previous = None
    for boundary in boundaries:
        if previous is not None and boundary <= previous:
            boundary = previous + 1
        fixed.append(boundary)
        previous = boundary
    return ShardMap(n_shards, strategy="time-range", boundaries=tuple(fixed))
