"""Drawing tuple samples from a heap file.

Appendix A.2 samples the outer relation "without replacement; each tuple in
the relation is equally likely to be drawn, and at most one time", charging
a random I/O per sample.  Section 4.2 then observes that, past a threshold,
random sampling is more expensive than simply scanning the whole relation
("only 819 random samples (3% of the relation) must be drawn before the
entire outer relation can be scanned for the same cost") and switches to a
sequential scan that draws the samples from pages as they stream through
memory.

:func:`plan_sampling` chooses between the two strategies under the active
cost model; :func:`draw_samples` executes the plan, charging I/O through the
heap file.  The scan optimization can be disabled for the ablation bench.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List

from repro.model.vtuple import VTTuple
from repro.storage.heapfile import HeapFile
from repro.storage.iostats import CostModel


class SampleStrategy(enum.Enum):
    """How a sample set is collected."""

    RANDOM = "random"  # one random page access per sampled tuple
    SCAN = "scan"  # one sequential pass, sampling in-memory (Section 4.2)


@dataclass(frozen=True)
class SamplePlan:
    """A costed decision on how to draw a sample set.

    Attributes:
        n_samples: number of tuples to draw.
        strategy: chosen collection strategy.
        estimated_cost: predicted weighted I/O cost of executing the plan.
    """

    n_samples: int
    strategy: SampleStrategy
    estimated_cost: float


def plan_sampling(
    n_samples: int,
    relation_pages: int,
    cost_model: CostModel,
    *,
    allow_scan: bool = True,
) -> SamplePlan:
    """Choose the cheaper of random sampling and a full sequential scan.

    Args:
        n_samples: samples the Kolmogorov bound requires.
        relation_pages: size of the relation being sampled, in pages.
        cost_model: active random/sequential cost weights.
        allow_scan: set False to force per-sample random access (the paper's
            initial assumption, kept for the ablation bench).
    """
    if n_samples < 0:
        raise ValueError(f"negative sample count {n_samples}")
    random_cost = n_samples * cost_model.io_ran
    scan_cost = cost_model.cost_of_run(relation_pages)
    if allow_scan and scan_cost < random_cost:
        return SamplePlan(n_samples, SampleStrategy.SCAN, scan_cost)
    return SamplePlan(n_samples, SampleStrategy.RANDOM, random_cost)


def draw_samples(
    heap: HeapFile,
    plan: SamplePlan,
    rng: random.Random,
) -> List[VTTuple]:
    """Execute *plan* against *heap*, charging I/O, and return the tuples.

    Sampling is without replacement; when the plan asks for at least as many
    samples as the file holds, every tuple is returned (via a scan, which is
    then certainly cheapest).
    """
    n_available = heap.n_tuples
    if plan.n_samples >= n_available:
        return list(heap.scan())
    if plan.strategy is SampleStrategy.SCAN:
        return _scan_samples(heap, plan.n_samples, rng)
    return _random_samples(heap, plan.n_samples, rng)


def _scan_samples(heap: HeapFile, n_samples: int, rng: random.Random) -> List[VTTuple]:
    """One sequential pass; sample positions chosen up front."""
    positions = set(rng.sample(range(heap.n_tuples), n_samples))
    samples: List[VTTuple] = []
    position = 0
    for page in heap.scan_pages():
        for tup in page:
            if position in positions:
                samples.append(tup)
            position += 1
    return samples


def _random_samples(heap: HeapFile, n_samples: int, rng: random.Random) -> List[VTTuple]:
    """One charged page access per sample, in random position order.

    Two samples landing on the same page still cost two accesses: the paper
    charges per sample, and in a real system the intervening accesses of
    other samples would have moved the head away anyway.
    """
    positions = rng.sample(range(heap.n_tuples), n_samples)
    samples: List[VTTuple] = []
    for position in positions:
        tup = heap.read_tuple(position)
        if tup is not None:
            samples.append(tup)
    return samples
