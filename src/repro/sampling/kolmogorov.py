"""The Kolmogorov test statistic for sizing partition-interval samples.

Section 3.4: "The number of samples to draw is determined using the
Kolmogorov test statistic [Con71, DNS91].  The Kolmogorov test is a
non-parametric test which makes no assumptions about the underlying
distribution of tuples.  With 99% certainty, the percentile of each chosen
partitioning chronon will differ from an exactly chosen partitioning chronon
by at most 1.63/sqrt(m), where m is the number of samples drawn from r."

Since ``1.63/sqrt(m)`` is a percentage of the relation, ``(1.63 x |r|) /
sqrt(m)`` pages may overflow a partition, which must fit in ``errorSize``
spare pages; hence ``m >= ((1.63 x |r|) / errorSize)^2`` samples are needed
(|r| and errorSize both in pages).

The paper's footnote observation is preserved by construction: expressing
``errorSize`` as a fixed fraction of ``|r|`` makes the required ``m``
independent of ``|r|`` -- the formula only sees their ratio.
"""

from __future__ import annotations

import math
from typing import Dict

#: Asymptotic two-sided quantiles of the Kolmogorov distribution,
#: ``d_alpha`` such that ``P(D_m > d_alpha / sqrt(m)) = alpha`` [Con71].
#: The paper uses the 99% row (1.63).
KOLMOGOROV_D: Dict[float, float] = {
    0.80: 1.07,
    0.85: 1.14,
    0.90: 1.22,
    0.95: 1.36,
    0.98: 1.52,
    0.99: 1.63,
}

#: The paper's confidence level.
PAPER_CONFIDENCE = 0.99


def kolmogorov_d(confidence: float = PAPER_CONFIDENCE) -> float:
    """The quantile ``d_alpha`` for the given two-sided *confidence*.

    Only the tabulated confidence levels are supported; the paper's
    experiments all use 0.99.
    """
    try:
        return KOLMOGOROV_D[confidence]
    except KeyError:
        supported = ", ".join(str(c) for c in sorted(KOLMOGOROV_D))
        raise ValueError(
            f"unsupported confidence {confidence}; tabulated levels: {supported}"
        ) from None


def max_percentile_error(n_samples: int, confidence: float = PAPER_CONFIDENCE) -> float:
    """Bound on percentile error after *n_samples* draws: ``d / sqrt(m)``."""
    if n_samples < 1:
        raise ValueError(f"need at least one sample, got {n_samples}")
    return kolmogorov_d(confidence) / math.sqrt(n_samples)


def required_samples(
    relation_pages: int,
    error_pages: int,
    confidence: float = PAPER_CONFIDENCE,
) -> int:
    """Samples needed so overflow fits in *error_pages* with *confidence*.

    Implements ``m >= ((d_alpha x |r|) / errorSize)^2`` from Section 3.4,
    with |r| and errorSize in pages.

    Raises:
        ValueError: if *error_pages* is not positive (the planner never asks
            for a partitioning with zero slack).
    """
    if relation_pages < 0:
        raise ValueError(f"negative relation size {relation_pages}")
    if error_pages <= 0:
        raise ValueError(f"errorSize must be positive, got {error_pages}")
    if relation_pages == 0:
        return 0
    d = kolmogorov_d(confidence)
    return math.ceil((d * relation_pages / error_pages) ** 2)
