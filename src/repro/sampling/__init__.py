"""Sampling machinery for partition-interval estimation (Section 3.4).

* :mod:`repro.sampling.kolmogorov` -- the Kolmogorov test statistic used to
  size the sample: with confidence ``1 - alpha`` every sampled percentile is
  within ``d_alpha / sqrt(m)`` of the true percentile [Con71, DNS91].
* :mod:`repro.sampling.sampler` -- drawing the samples from a heap file,
  including the sequential-scan optimization of Section 4.2 that caps the
  sampling cost at one linear scan of the outer relation.
"""

from repro.sampling.kolmogorov import (
    KOLMOGOROV_D,
    kolmogorov_d,
    max_percentile_error,
    required_samples,
)
from repro.sampling.sampler import SamplePlan, SampleStrategy, draw_samples, plan_sampling

__all__ = [
    "KOLMOGOROV_D",
    "kolmogorov_d",
    "max_percentile_error",
    "required_samples",
    "SamplePlan",
    "SampleStrategy",
    "draw_samples",
    "plan_sampling",
]
