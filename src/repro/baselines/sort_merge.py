"""Sort-merge evaluation of the valid-time natural join, with backing-up.

The second baseline of Section 4.1.  Both relations are sorted on
valid-time start; the matching phase then streams them in order.  Because a
tuple's valid-time *end* is unconstrained by the sort order, a long-lived
inner tuple must stay matchable long after its page has streamed past: when
memory cannot hold every page back to the oldest still-live inner tuple,
the algorithm must "back up to previously processed pages of the input
relations to match overlapping tuples" (Section 4.3) and re-read them.

Backing-up cost model.  The matching phase merges the two sorted streams
by valid-time start, keeping each side's still-live (non-retired) tuples
matchable.  The inner-side window of ``memory - 2`` pages pins pages that
still hold a live inner tuple in preference to pages that merely streamed
past.  While the live pages fit, no backing up occurs; once more inner
pages hold live tuples than the window can pin -- which is precisely what
rising long-lived density causes -- the oldest excess live pages must be
re-read for each outer page processed.  This reproduces the paper's
observations: no long-lived tuples, no backing up; backing-up cost grows
with long-lived density and levels off as the live span saturates at the
long-lived lifespan (the Figure 7 curve's shape).

The model is deliberately *charitable* to this baseline: the outer side's
long-lived tuples are carried in memory for forward matching rather than
triggering inner-stream rescans, so the measured sort-merge cost is a lower
bound on a 1994 implementation -- any advantage the partition join shows
against it is understated, not manufactured.

Memory cases, reflecting the paper's note that the baseline "was optimized
to make best use of the available main memory size":

1. Both relations fit in memory together: read each once, match in memory.
   No sorting I/O at all -- this is why the baselines converge at 32 MiB in
   Figure 6.
2. One relation fits in memory: it is read once and held resident; the
   other is external-sorted and streamed.  A resident side never needs
   backing up.
3. Neither fits: both are external-sorted; the matching phase streams them
   with the live-span window above.

All matching within memory uses a hash index on the explicit join
attributes; in-memory work is outside the cost model.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.external_sort import external_sort
from repro.core.joiner import PairFn, natural_pair
from repro.model.errors import PlanError
from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import VTTuple
from repro.storage.heapfile import HeapFile
from repro.storage.layout import Device, DiskLayout
from repro.storage.page import PageSpec


@dataclass
class SortMergeResult:
    """Result and bookkeeping of a sort-merge join run."""

    result: Optional[ValidTimeRelation]
    n_result_tuples: int
    backup_page_reads: int
    memory_case: str  # "in_memory" | "one_resident" | "streamed"
    layout: DiskLayout


def sort_merge_join(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    memory_pages: int,
    *,
    page_spec: Optional[PageSpec] = None,
    layout: Optional[DiskLayout] = None,
    collect_result: bool = True,
    pair_fn: PairFn = natural_pair,
) -> SortMergeResult:
    """Evaluate ``r JOIN_V s`` by sort-merge over the simulated disk.

    ``pair_fn`` generalizes the result construction exactly as in the
    partition join: it receives each key-matching, interval-intersecting
    pair plus the overlap and may build a different result tuple or reject
    the pair -- the hook the Leung-Muntz predicate extensions [LM90] use.
    """
    if memory_pages < 4:
        raise PlanError(f"sort-merge needs >= 4 buffer pages, got {memory_pages}")
    result_schema = r.schema.join_result_schema(s.schema)
    if layout is None:
        layout = DiskLayout(spec=page_spec if page_spec is not None else PageSpec())

    r_file = layout.place_relation(r)
    s_file = layout.place_relation(s)
    emitter = _Emitter(layout, result_schema, collect_result, pair_fn)

    pages_r = r_file.n_pages
    pages_s = s_file.n_pages

    if pages_r + pages_s <= memory_pages - 1:
        _join_in_memory(r_file, s_file, layout, emitter)
        memory_case = "in_memory"
        backup_reads = 0
    elif pages_r <= memory_pages - 2 or pages_s <= memory_pages - 2:
        resident, streamed, resident_name = (
            (r_file, s_file, "r") if pages_r <= pages_s else (s_file, r_file, "s")
        )
        _join_one_resident(resident, streamed, resident_name, layout, memory_pages, emitter)
        memory_case = "one_resident"
        backup_reads = 0
    else:
        backup_reads = _join_streamed(r_file, s_file, layout, memory_pages, emitter)
        memory_case = "streamed"

    emitter.finish()
    return SortMergeResult(
        result=emitter.collected,
        n_result_tuples=emitter.count,
        backup_page_reads=backup_reads,
        memory_case=memory_case,
        layout=layout,
    )


class _Emitter:
    """Shared result emission: excluded-cost file plus optional collection."""

    def __init__(
        self,
        layout: DiskLayout,
        result_schema,
        collect: bool,
        pair_fn: PairFn = natural_pair,
    ) -> None:
        self.layout = layout
        self.file = layout.result_file("sm_result")
        self.collected = ValidTimeRelation(result_schema) if collect else None
        self.count = 0
        self.pair_fn = pair_fn

    def emit(self, x: VTTuple, y: VTTuple) -> None:
        if x.key != y.key:
            return
        common = x.valid.intersect(y.valid)
        if common is None:
            return
        joined = self.pair_fn(x, y, common)
        if joined is None:
            return
        self.count += 1
        self.layout.write_result(self.file, joined)
        if self.collected is not None:
            self.collected.add(joined)

    def finish(self) -> None:
        self.file.flush()


def _join_in_memory(
    r_file: HeapFile, s_file: HeapFile, layout: DiskLayout, emitter: _Emitter
) -> None:
    """Case 1: read both once, match entirely in memory."""
    with layout.tracker.phase("sort"):
        r_tuples = [tup for page in r_file.scan_pages() for tup in page]
        s_tuples = [tup for page in s_file.scan_pages() for tup in page]
    with layout.tracker.phase("match"):
        probe_index: Dict[Tuple, List[VTTuple]] = {}
        for tup in r_tuples:
            probe_index.setdefault(tup.key, []).append(tup)
        for y in s_tuples:
            for x in probe_index.get(y.key, ()):
                emitter.emit(x, y)


def _join_one_resident(
    resident: HeapFile,
    streamed: HeapFile,
    resident_name: str,
    layout: DiskLayout,
    memory_pages: int,
    emitter: _Emitter,
) -> None:
    """Case 2: the resident side is read once; the other is sorted and streamed."""
    with layout.tracker.phase("sort"):
        sorted_streamed = external_sort(
            streamed,
            layout,
            memory_pages,
            name="sm_stream",
            devices=(Device.SCRATCH_A, Device.SCRATCH_B),
        )
    layout.disk.park_heads()
    with layout.tracker.phase("match"):
        probe_index: Dict[Tuple, List[VTTuple]] = {}
        for page in resident.scan_pages():
            for tup in page:
                probe_index.setdefault(tup.key, []).append(tup)
        resident_is_r = resident_name == "r"
        for page in sorted_streamed.scan_pages():
            for y in page:
                for x in probe_index.get(y.key, ()):
                    if resident_is_r:
                        emitter.emit(x, y)
                    else:
                        emitter.emit(y, x)


class _Active:
    """A live tuple of one stream awaiting retirement during the match."""

    __slots__ = ("tup", "page", "retired")

    def __init__(self, tup: VTTuple, page: int) -> None:
        self.tup = tup
        self.page = page
        self.retired = False


class _ActiveSet:
    """One stream's live tuples: key-hashed for probing, heaped for retirement."""

    def __init__(self) -> None:
        self.by_key: Dict[Tuple, List[_Active]] = {}
        self._retire_heap: List[Tuple[int, int, _Active]] = []
        self.live_per_page: Dict[int, int] = {}
        self._counter = 0

    def activate(self, tup: VTTuple, page: int) -> None:
        entry = _Active(tup, page)
        self.by_key.setdefault(tup.key, []).append(entry)
        self._counter += 1
        heapq.heappush(self._retire_heap, (tup.ve, self._counter, entry))
        self.live_per_page[page] = self.live_per_page.get(page, 0) + 1

    def retire_until(self, min_vs: int) -> None:
        """Drop tuples that cannot overlap anything starting at or after *min_vs*."""
        while self._retire_heap and self._retire_heap[0][0] < min_vs:
            _, _, entry = heapq.heappop(self._retire_heap)
            entry.retired = True
            self.live_per_page[entry.page] -= 1
            if self.live_per_page[entry.page] == 0:
                del self.live_per_page[entry.page]

    def live_partners(self, key: Tuple) -> List[_Active]:
        """Live entries for *key*, compacting lazily-retired ones."""
        entries = self.by_key.get(key)
        if not entries:
            return []
        live = [entry for entry in entries if not entry.retired]
        if not live:
            del self.by_key[key]
        elif len(live) != len(entries):
            self.by_key[key] = live
        return live


class _SortedStream:
    """Paged cursor over a sorted heap file, charging reads as pages turn."""

    def __init__(self, source: HeapFile) -> None:
        self.source = source
        self.next_page = 0
        self.buffer: List[VTTuple] = []
        self.offset = 0

    def peek(self) -> Optional[VTTuple]:
        while self.offset >= len(self.buffer):
            if self.next_page >= self.source.n_pages:
                return None
            self.buffer = self.source.read_page(self.next_page)
            self.next_page += 1
            self.offset = 0
        return self.buffer[self.offset]

    def take(self) -> Tuple[VTTuple, int]:
        """The next tuple and the page it came from."""
        tup = self.peek()
        assert tup is not None
        self.offset += 1
        return tup, self.next_page - 1


def _join_streamed(
    r_file: HeapFile,
    s_file: HeapFile,
    layout: DiskLayout,
    memory_pages: int,
    emitter: _Emitter,
) -> int:
    """Case 3: both sides external-sorted, then merged by valid-time start.

    Arrivals match against the opposite stream's live set; a pair is found
    exactly once via the start-chronon tie-break (an ``r`` arrival matches
    partners with ``Vs <=`` its own, an ``s`` arrival those with strictly
    smaller ``Vs``).  Backing up charges re-reads of the inner live pages
    the window cannot pin (see the module docstring).  Returns the number
    of backup page re-reads charged.
    """
    with layout.tracker.phase("sort"):
        r_sorted = external_sort(
            r_file,
            layout,
            memory_pages,
            name="sm_r",
            devices=(Device.SCRATCH_A, Device.SCRATCH_B),
        )
        layout.disk.park_heads()
        s_sorted = external_sort(
            s_file,
            layout,
            memory_pages,
            name="sm_s",
            devices=(Device.SCRATCH_C, Device.SCRATCH_D),
        )
    layout.disk.park_heads()

    # One page for the outer stream, one for the result; the rest pins the
    # inner window.
    pinnable = max(1, memory_pages - 2)
    backup_reads = 0

    with layout.tracker.phase("match"):
        r_active = _ActiveSet()
        s_active = _ActiveSet()
        r_stream = _SortedStream(r_sorted)
        s_stream = _SortedStream(s_sorted)
        last_outer_page = -1

        while True:
            r_next = r_stream.peek()
            s_next = s_stream.peek()
            if r_next is None and s_next is None:
                break
            take_r = s_next is None or (r_next is not None and r_next.vs <= s_next.vs)
            if take_r:
                assert r_next is not None
                tup, page = r_stream.take()
                r_active.retire_until(tup.vs)
                s_active.retire_until(tup.vs)
                r_active.activate(tup, page)
                # r arrival: match live s partners (all have Vs <= ours).
                for entry in s_active.live_partners(tup.key):
                    emitter.emit(tup, entry.tup)
                if page != last_outer_page:
                    last_outer_page = page
                    backup_reads += _charge_backup(s_active, s_sorted, pinnable)
            else:
                assert s_next is not None
                tup, page = s_stream.take()
                r_active.retire_until(tup.vs)
                s_active.retire_until(tup.vs)
                s_active.activate(tup, page)
                # s arrival: match live r partners with Vs <= ours.  Equal
                # starts are matched here, not on the r side: the merge takes
                # r first on ties, so an equal-Vs r tuple arrived before this
                # s tuple existed and could not have seen it.
                for entry in r_active.live_partners(tup.key):
                    if entry.tup.vs <= tup.vs:
                        emitter.emit(entry.tup, tup)
    return backup_reads


def _charge_backup(s_active: _ActiveSet, s_sorted: HeapFile, pinnable: int) -> int:
    """Re-read the oldest inner live pages the window cannot pin."""
    excess = len(s_active.live_per_page) - pinnable
    if excess <= 0:
        return 0
    for page in sorted(s_active.live_per_page)[:excess]:
        s_sorted.read_page(page)
    return excess
