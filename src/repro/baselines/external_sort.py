"""External merge sort over the simulated disk.

The sort-merge baseline (Section 4.1) "was optimized to make best use of
the available main memory size": run formation fills all of memory, and
merge passes use the largest fan-in the buffer supports.  The I/O behaviour
the paper describes falls out of the simulation:

* run formation reads the input once and writes memory-sized sorted runs;
* each merge pass reads every run in buffer-share-sized chunks -- "at small
  memory sizes, the sort-merge algorithm must use more runs with fewer
  pages in each run, with a random access required by each run" -- and
  writes its output in buffered bursts;
* passes alternate between two scratch devices so a pass's reads and writes
  do not destroy each other's sequentiality, as a real system alternates
  sort areas.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, List, Tuple

from repro.model.errors import PlanError
from repro.model.vtuple import VTTuple
from repro.storage.heapfile import HeapFile
from repro.storage.layout import DiskLayout

SortKey = Callable[[VTTuple], Tuple]


def by_valid_start(tup: VTTuple) -> Tuple:
    """The sort order of the valid-time sort-merge join: (Vs, Ve, key)."""
    return (tup.vs, tup.ve, tup.key)


def external_sort(
    source: HeapFile,
    layout: DiskLayout,
    memory_pages: int,
    *,
    key: SortKey = by_valid_start,
    name: str = "sorted",
    devices: Tuple[int, int] = (4, 5),
) -> HeapFile:
    """Sort *source* into a new heap file, charging all I/O.

    Args:
        source: the file to sort (read once during run formation).
        layout: disk layout; runs and output land on *devices*.
        memory_pages: buffer pages available to the sort.
        key: sort key (defaults to valid-time start order).
        name: extent-name prefix for runs and output.
        devices: the two scratch devices merge passes alternate between.

    Returns:
        A heap file containing every tuple of *source* in *key* order.
    """
    if memory_pages < 3:
        raise PlanError(f"external sort needs >= 3 buffer pages, got {memory_pages}")
    runs = _form_runs(source, layout, memory_pages, key, name, devices[0])
    pass_number = 0
    while len(runs) > 1:
        pass_number += 1
        out_device = devices[pass_number % 2]
        runs = _merge_pass(runs, layout, memory_pages, key, name, pass_number, out_device)
    if not runs:
        # Empty input still yields a (single, empty) sorted file.
        return layout.file_on(devices[0], f"{name}_empty", capacity_tuples=1)
    return runs[0]


def _form_runs(
    source: HeapFile,
    layout: DiskLayout,
    memory_pages: int,
    key: SortKey,
    name: str,
    device: int,
) -> List[HeapFile]:
    """Phase 1: memory-sized sorted runs."""
    runs: List[HeapFile] = []
    buffer: List[VTTuple] = []
    buffer_capacity = memory_pages * source.spec.capacity

    def spill() -> None:
        if not buffer:
            return
        buffer.sort(key=key)
        run = layout.file_on(
            device, f"{name}_run{len(runs)}", capacity_tuples=len(buffer)
        )
        run.append_many(buffer)
        run.flush()
        runs.append(run)
        buffer.clear()

    for page in source.scan_pages():
        buffer.extend(page)
        if len(buffer) >= buffer_capacity:
            spill()
    spill()
    return runs


def _merge_pass(
    runs: List[HeapFile],
    layout: DiskLayout,
    memory_pages: int,
    key: SortKey,
    name: str,
    pass_number: int,
    out_device: int,
) -> List[HeapFile]:
    """One multiway merge pass: groups of ``fan_in`` runs become one run each."""
    fan_in = min(len(runs), max(2, memory_pages - 1))
    merged: List[HeapFile] = []
    for group_start in range(0, len(runs), fan_in):
        group = runs[group_start : group_start + fan_in]
        # Every input stream and the output buffer get an equal share of
        # memory; chunked fetching makes each fetch one random access plus
        # sequential transfers.
        chunk_pages = max(1, memory_pages // (len(group) + 1))
        streams = [_chunked_scan(run, chunk_pages) for run in group]
        total_tuples = sum(run.n_tuples for run in group)
        out = layout.file_on(
            out_device,
            f"{name}_p{pass_number}_m{len(merged)}",
            capacity_tuples=max(1, total_tuples),
        )
        _write_buffered(heapq.merge(*streams, key=key), out, chunk_pages)
        merged.append(out)
    return merged


def _chunked_scan(run: HeapFile, chunk_pages: int) -> Iterator[VTTuple]:
    """Scan *run*, fetching *chunk_pages* pages per charged burst."""
    for start in range(0, run.n_pages, chunk_pages):
        stop = min(start + chunk_pages, run.n_pages)
        chunk: List[VTTuple] = []
        for index in range(start, stop):
            chunk.extend(run.read_page(index))
        yield from chunk


def _write_buffered(tuples: Iterator[VTTuple], out: HeapFile, chunk_pages: int) -> None:
    """Write *tuples* to *out* in bursts of *chunk_pages* pages."""
    burst_capacity = chunk_pages * out.spec.capacity
    burst: List[VTTuple] = []
    for tup in tuples:
        burst.append(tup)
        if len(burst) >= burst_capacity:
            out.append_many(burst)
            out.flush()
            burst.clear()
    if burst:
        out.append_many(burst)
        out.flush()
