"""Baseline evaluation algorithms the paper compares against.

* :mod:`repro.baselines.reference` -- the Section 2 definition transcribed
  as a naive in-memory join; the correctness oracle for everything else.
* :mod:`repro.baselines.nested_loop` -- block nested-loop evaluation over
  the simulated disk.
* :mod:`repro.baselines.nested_loop_cost` -- the closed-form nested-loop
  cost the paper plots ("we calculated analytical results for
  nested-loops", Section 4.1).
* :mod:`repro.baselines.external_sort` -- run formation and multiway merge
  over the simulated disk.
* :mod:`repro.baselines.sort_merge` -- sort-merge valid-time join with
  backing-up over long-lived tuples (Section 4.3's comparison).
"""

from repro.baselines.reference import reference_join
from repro.baselines.nested_loop import NestedLoopResult, nested_loop_join
from repro.baselines.nested_loop_cost import nested_loop_cost
from repro.baselines.external_sort import external_sort
from repro.baselines.sort_merge import SortMergeResult, sort_merge_join

__all__ = [
    "reference_join",
    "NestedLoopResult",
    "nested_loop_join",
    "nested_loop_cost",
    "external_sort",
    "SortMergeResult",
    "sort_merge_join",
]
