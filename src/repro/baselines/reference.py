"""The correctness oracle: the Section 2 definition, executed literally.

``r JOIN_V s`` contains, for every pair ``x in r``, ``y in s`` with equal
explicit join attributes and a non-bottom interval overlap, the tuple with
both payloads and the maximal common interval.  This module evaluates that
definition with two plain loops and no storage simulation; every other join
implementation in the library is tested for multiset equality against it.
"""

from __future__ import annotations

from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import join_tuples


def reference_join(r: ValidTimeRelation, s: ValidTimeRelation) -> ValidTimeRelation:
    """Evaluate the valid-time natural join by exhaustive pairing.

    Quadratic and in-memory; intended for oracle use at test scale, not for
    measurement.
    """
    result_schema = r.schema.join_result_schema(s.schema)
    result = ValidTimeRelation(result_schema)
    for x in r:
        for y in s:
            joined = join_tuples(x, y)
            if joined is not None:
                result.add(joined)
    return result
