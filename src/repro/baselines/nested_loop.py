"""Block nested-loop evaluation of the valid-time natural join.

The classic fallback the paper's introduction warns about: without better
structure, joining is "tantamount to computing the Cartesian product of the
input relations".  Block nested loops softens the quadratic page cost by
holding as large a block of the outer relation in memory as fits
(``memory - 2`` pages: one page for the inner relation, one for the
result) and scanning the inner relation once per block.

Long-lived tuples do not affect this algorithm's I/O at all (Section 4.3
includes it "for completeness" as a flat line), which the experiments
confirm.  In-memory matching uses a hash index on the explicit join
attributes -- in-memory operations are outside the paper's cost model.

The in-memory matching also routes through the batch kernels when
``execution="batch"``: the same key-equality probe and interval
intersection that accelerate the partition sweep apply unchanged here
(there is no partition map, so the owner filter is simply skipped), which
is the point of a shared kernel layer -- every block-probe algorithm in
the library targets one API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.model.errors import PlanError
from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import VTTuple, join_tuples
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec


@dataclass
class NestedLoopResult:
    """Result and bookkeeping of a nested-loop join run."""

    result: Optional[ValidTimeRelation]
    n_result_tuples: int
    n_outer_blocks: int
    layout: DiskLayout


def nested_loop_join(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    memory_pages: int,
    *,
    page_spec: Optional[PageSpec] = None,
    layout: Optional[DiskLayout] = None,
    collect_result: bool = True,
    execution: str = "tuple",
) -> NestedLoopResult:
    """Evaluate ``r JOIN_V s`` by block nested loops over the simulated disk.

    Args:
        r: outer relation (blocked in memory).
        s: inner relation (scanned once per outer block).
        memory_pages: total buffer pages; the outer block gets
            ``memory_pages - 2``.
        page_spec: page geometry (defaults to the library default).
        layout: pass to accumulate statistics across operations.
        collect_result: materialize the result relation in memory.
        execution: ``"tuple"`` for the classic loop, ``"batch"`` (or
            ``"batch-parallel"``, identical here) for the batch kernels.
            I/O is unaffected either way: only in-memory matching changes.
    """
    if memory_pages < 3:
        raise PlanError(f"nested loops needs >= 3 buffer pages, got {memory_pages}")
    if execution not in ("tuple", "batch", "batch-parallel"):
        raise PlanError(
            f"execution must be 'tuple', 'batch', or 'batch-parallel', "
            f"got {execution!r}"
        )
    result_schema = r.schema.join_result_schema(s.schema)
    if layout is None:
        layout = DiskLayout(spec=page_spec if page_spec is not None else PageSpec())

    r_file = layout.place_relation(r)
    s_file = layout.place_relation(s)
    result_file = layout.result_file("nl_result")
    collected = ValidTimeRelation(result_schema) if collect_result else None

    batched = execution != "tuple"
    if batched:
        from repro.exec.kernels import get_kernels

        kernels = get_kernels()
        interner = kernels.make_interner()

    block_pages = memory_pages - 2
    n_result = 0
    n_blocks = 0
    with layout.tracker.phase("join"):
        for block_start in range(0, r_file.n_pages, block_pages):
            n_blocks += 1
            block: List[VTTuple] = []
            block_end = min(block_start + block_pages, r_file.n_pages)
            for page_index in range(block_start, block_end):
                block.extend(r_file.read_page(page_index))
            if batched:
                batch_index = kernels.build_probe_index(block, interner)
            else:
                probe_index: Dict[Tuple, List[VTTuple]] = {}
                for tup in block:
                    probe_index.setdefault(tup.key, []).append(tup)
            for page in s_file.scan_pages():
                if batched:
                    # No partition map: key probe + intersection only.
                    matches = kernels.probe(
                        batch_index, kernels.page_batch(page, interner)
                    )
                    joined_tuples = [
                        VTTuple(outer.key, outer.payload + inner.payload, common)
                        for outer, inner, common in matches
                    ]
                else:
                    joined_tuples = [
                        joined
                        for inner_tup in page
                        for outer_tup in probe_index.get(inner_tup.key, ())
                        if (joined := join_tuples(outer_tup, inner_tup)) is not None
                    ]
                for joined in joined_tuples:
                    n_result += 1
                    layout.write_result(result_file, joined)
                    if collected is not None:
                        collected.add(joined)
    result_file.flush()
    return NestedLoopResult(
        result=collected,
        n_result_tuples=n_result,
        n_outer_blocks=n_blocks,
        layout=layout,
    )
