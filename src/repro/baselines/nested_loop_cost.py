"""Closed-form nested-loop cost, as the paper plotted it.

Section 4.1: "we ... calculated analytical results for nested-loops join."
Block nested loops with an outer block of ``memory - 2`` pages reads the
outer relation once and the inner relation once per outer block; every
extent read costs one random access plus sequential transfers ("if a pages
of the outer relation are read, this requires a single random read followed
by a-1 sequential reads", Section 4.2).

The simulated implementation in :mod:`repro.baselines.nested_loop` must
agree with this formula exactly; a test enforces that.
"""

from __future__ import annotations

import math

from repro.model.errors import PlanError
from repro.storage.iostats import CostModel


def nested_loop_cost(
    outer_pages: int,
    inner_pages: int,
    memory_pages: int,
    cost_model: CostModel,
) -> float:
    """Analytical block nested-loop join cost, result writes excluded.

    Args:
        outer_pages: pages of the outer relation.
        inner_pages: pages of the inner relation.
        memory_pages: total buffer pages (outer block gets ``memory - 2``).
        cost_model: random/sequential weights.
    """
    if memory_pages < 3:
        raise PlanError(f"nested loops needs >= 3 buffer pages, got {memory_pages}")
    if outer_pages < 0 or inner_pages < 0:
        raise ValueError("relation sizes must be non-negative")
    if outer_pages == 0:
        return 0.0
    block_pages = memory_pages - 2
    n_blocks = math.ceil(outer_pages / block_pages)
    outer_cost = 0.0
    remaining = outer_pages
    for _ in range(n_blocks):
        block = min(block_pages, remaining)
        outer_cost += cost_model.cost_of_run(block)
        remaining -= block
    inner_cost = n_blocks * cost_model.cost_of_run(inner_pages)
    return outer_cost + inner_cost
