"""A small temporal query engine over the library's operators.

The paper situates itself in "implementation-related issues, most notably
indexing and query processing strategies"; this package supplies the query
-processing shell a user actually interacts with:

* :mod:`repro.engine.optimizer` -- analytical cost estimates for the three
  evaluation algorithms and a cost-based chooser.
* :mod:`repro.engine.database` -- :class:`TemporalDatabase`: named
  relations, inserts, joins (with automatic algorithm selection),
  timeslices, and temporal aggregation behind one facade.
"""

from repro.engine.optimizer import JoinEstimate, choose_algorithm, estimate_costs
from repro.engine.database import QueryResult, TemporalDatabase

__all__ = [
    "JoinEstimate",
    "choose_algorithm",
    "estimate_costs",
    "QueryResult",
    "TemporalDatabase",
]
