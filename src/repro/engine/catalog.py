"""Catalog statistics: what the optimizer is allowed to know.

A 1994 optimizer plans from maintained statistics, not from scanning the
data at plan time.  :class:`RelationStatistics` captures the facts the
join-method chooser consumes -- page count, lifespan, long-lived fraction,
key cardinality -- and :func:`analyze` computes them with one pass, the
moral equivalent of an ``ANALYZE`` command.

The long-lived classification follows the experiments' usage: a tuple is
long-lived when its duration is a noticeable fraction of the relation
lifespan (instantaneous tuples and short intervals behave identically for
caching and backing-up purposes).

The second half of the module is the :class:`VersionedCatalog`: immutable
copy-on-write relation versions under a single monotonic epoch counter,
giving the concurrent query service (:mod:`repro.service`) snapshot
isolation -- readers join against a :class:`CatalogSnapshot` while writers
install new versions, and any historical version stays replayable through
:meth:`VersionedCatalog.version_at`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.model.errors import CatalogError, SchemaError
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.storage.page import PageSpec
from repro.time.lifespan import Lifespan

#: A tuple is long-lived when it covers at least this fraction of the
#: relation lifespan (the experiments' long-lived tuples cover one half).
LONG_LIVED_THRESHOLD = 0.10


@dataclass(frozen=True)
class RelationStatistics:
    """Planning-time facts about one relation.

    Attributes:
        n_tuples: cardinality.
        n_pages: pages under the catalog's page geometry.
        lifespan: hull of the timestamps (None when empty).
        long_lived_fraction: share of tuples covering at least
            :data:`LONG_LIVED_THRESHOLD` of the lifespan.
        n_keys: distinct join-attribute values.
        mean_duration: average timestamp duration in chronons.
        endpoint_sorted: the relation's tuples iterate in ``(start, end)``
            order -- the forward-scan sweep can skip its external-sort
            charge (an empty relation is trivially sorted).
    """

    n_tuples: int
    n_pages: int
    lifespan: Optional[Lifespan]
    long_lived_fraction: float
    n_keys: int
    mean_duration: float
    endpoint_sorted: bool = False

    @property
    def tuples_per_key(self) -> float:
        """Average version-chain length (the paper's ~10 tuples per object)."""
        if self.n_keys == 0:
            return 0.0
        return self.n_tuples / self.n_keys


def analyze(relation: ValidTimeRelation, spec: PageSpec) -> RelationStatistics:
    """Compute :class:`RelationStatistics` with a single pass."""
    n_tuples = len(relation)
    n_pages = spec.pages_for_tuples(n_tuples)
    span = relation.lifespan()
    if n_tuples == 0 or span is None:
        return RelationStatistics(0, 0, None, 0.0, 0, 0.0, endpoint_sorted=True)

    threshold = max(2, int(span.duration * LONG_LIVED_THRESHOLD))
    long_lived = 0
    total_duration = 0
    keys = set()
    endpoint_sorted = True
    last_span: Optional[Tuple[int, int]] = None
    for tup in relation:
        duration = tup.valid.duration
        total_duration += duration
        if duration >= threshold:
            long_lived += 1
        keys.add(tup.key)
        tup_span = (tup.vs, tup.ve)
        if last_span is not None and tup_span < last_span:
            endpoint_sorted = False
        last_span = tup_span
    return RelationStatistics(
        n_tuples=n_tuples,
        n_pages=n_pages,
        lifespan=span,
        long_lived_fraction=long_lived / n_tuples,
        n_keys=len(keys),
        mean_duration=total_duration / n_tuples,
        endpoint_sorted=endpoint_sorted,
    )


# ---------------------------------------------------------------------------
# Versioned catalog: snapshot isolation for the concurrent query service.
#
# Relations are stored as immutable *versions* under a single monotonic
# epoch counter.  A writer never touches an existing version: append/delete
# build a new relation object (copy-on-write) and install it as the current
# version at the next epoch.  A reader takes a CatalogSnapshot -- a frozen
# name -> version mapping -- and joins against it for as long as it likes;
# concurrent writers advance the catalog underneath without affecting it.
# Every version ever installed stays reachable through version_at(), which
# is what lets the property suite replay any query serially at the exact
# epochs it saw (docs/SERVICE.md).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RelationVersion:
    """One immutable version of a named relation.

    The wrapped :class:`~repro.model.relation.ValidTimeRelation` must never
    be mutated -- the catalog builds a fresh one per mutation and hands out
    the old object to snapshot holders.

    Attributes:
        name: catalog name of the relation.
        epoch: global catalog epoch at which this version was installed.
        relation: the version's (immutable-by-contract) contents.
    """

    name: str
    epoch: int
    relation: ValidTimeRelation

    @property
    def schema(self) -> RelationSchema:
        return self.relation.schema

    def __len__(self) -> int:
        return len(self.relation)


@dataclass(frozen=True)
class CatalogSnapshot:
    """A stable view of the whole catalog at one epoch.

    Attributes:
        epoch: the global epoch the snapshot was taken at.
        versions: name -> :class:`RelationVersion` current at that epoch.
    """

    epoch: int
    versions: Mapping[str, RelationVersion] = field(default_factory=dict)

    def __contains__(self, name: str) -> bool:
        return name in self.versions

    def version(self, name: str) -> RelationVersion:
        try:
            return self.versions[name]
        except KeyError:
            raise CatalogError(f"no relation named {name!r} in snapshot") from None

    def relation(self, name: str) -> ValidTimeRelation:
        return self.version(name).relation


@dataclass
class _ViewBinding:
    """A live incremental view and the base relations feeding it."""

    name: str
    view: object  # MaterializedVTJoin-shaped: insert_r/delete_r/insert_s/delete_s
    r_name: str
    s_name: str


class VersionedCatalog:
    """Copy-on-write relation versions under one monotonic epoch counter.

    Every mutation -- :meth:`register`, :meth:`append`, :meth:`delete`,
    :meth:`drop` -- takes the catalog lock, bumps the epoch by exactly one,
    and (for the relation mutations) installs a brand-new relation version.
    Readers call :meth:`snapshot` and never block writers; writers never
    invalidate readers.  The epoch a query's inputs carried is the cache key
    the service layer builds plan- and result-cache entries from.

    Incremental views (:class:`~repro.incremental.view.MaterializedVTJoin`)
    can be attached to a pair of base relations; the catalog folds every
    append/delete delta into them while holding the lock, and refuses to
    drop a base relation that still feeds a live view.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._epoch = 0
        self._current: Dict[str, RelationVersion] = {}
        self._history: Dict[str, List[RelationVersion]] = {}
        self._views: Dict[str, _ViewBinding] = {}
        self._shard_maps: List[Tuple[int, Dict]] = []

    # -- reading --------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The global epoch (bumped by exactly one on every mutation)."""
        with self._lock:
            return self._epoch

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._current)

    def snapshot(self) -> CatalogSnapshot:
        """A stable view of every current relation version."""
        with self._lock:
            return CatalogSnapshot(epoch=self._epoch, versions=dict(self._current))

    def current(self, name: str) -> RelationVersion:
        """The current version of *name*."""
        with self._lock:
            try:
                return self._current[name]
            except KeyError:
                raise CatalogError(f"no relation named {name!r}") from None

    def version_at(self, name: str, epoch: int) -> RelationVersion:
        """The version of *name* that was current at global *epoch*.

        The serial-replay hook: a query that recorded its snapshot epochs
        can be re-run later against exactly the inputs it saw.
        """
        with self._lock:
            history = self._history.get(name)
            if not history:
                raise CatalogError(f"no relation named {name!r}")
            candidate = None
            for version in history:
                if version.epoch <= epoch:
                    candidate = version
                else:
                    break
            if candidate is None:
                raise CatalogError(
                    f"relation {name!r} did not exist at epoch {epoch} "
                    f"(registered at epoch {history[0].epoch})"
                )
            return candidate

    # -- shard maps -----------------------------------------------------------

    def record_shard_map(self, map_dict: Dict) -> int:
        """Record the active shard routing, stamped with the current epoch.

        Recording does *not* bump the epoch -- the map describes how
        existing versions route, it does not create new ones.  Any snapshot
        taken at or after the stamped epoch resolves to this map
        (:meth:`shard_map_at`), which keeps fragment routing a pure
        function of ``(snapshot epoch, shard rank)`` across coordinator
        restarts.
        """
        with self._lock:
            self._shard_maps.append((self._epoch, dict(map_dict)))
            return self._epoch

    def shard_map_at(self, epoch: int) -> Optional[Dict]:
        """The shard map in force at global *epoch* (None if never sharded)."""
        with self._lock:
            candidate = None
            for stamped, map_dict in self._shard_maps:
                if stamped <= epoch:
                    candidate = map_dict
                else:
                    break
            return dict(candidate) if candidate is not None else None

    @property
    def shard_maps(self) -> List[Tuple[int, Dict]]:
        """Every recorded ``(epoch, map)`` pair, oldest first."""
        with self._lock:
            return [(epoch, dict(map_dict)) for epoch, map_dict in self._shard_maps]

    # -- mutating -------------------------------------------------------------

    def register(
        self, schema: RelationSchema, tuples: Iterable[VTTuple] = ()
    ) -> RelationVersion:
        """Create a relation under its schema name (epoch + 1).

        Raises:
            SchemaError: the name is already registered (re-registration
                would silently orphan existing snapshots and cache keys).
        """
        with self._lock:
            if schema.name in self._current:
                raise SchemaError(f"relation {schema.name!r} already exists")
            relation = ValidTimeRelation(schema, tuples)
            self._epoch += 1
            version = RelationVersion(schema.name, self._epoch, relation)
            self._current[schema.name] = version
            self._history.setdefault(schema.name, []).append(version)
            return version

    def append(self, name: str, tuples: Iterable[VTTuple]) -> RelationVersion:
        """Install a new version of *name* with *tuples* appended (epoch + 1)."""
        with self._lock:
            old = self.current(name)
            added = ValidTimeRelation(old.schema, tuples)  # validates arity
            new_relation = ValidTimeRelation(old.schema)
            new_relation._tuples = list(old.relation._tuples) + list(added._tuples)
            version = self._install(name, new_relation)
            self._maintain_views(name, added._tuples, sign=+1)
            return version

    def delete(self, name: str, tuples: Iterable[VTTuple]) -> RelationVersion:
        """Install a new version of *name* with *tuples* removed (epoch + 1).

        Multiset semantics: each given tuple removes one occurrence.

        Raises:
            CatalogError: a tuple is not present in the current version.
        """
        with self._lock:
            old = self.current(name)
            remaining = list(old.relation._tuples)
            removed: List[VTTuple] = []
            for tup in tuples:
                try:
                    remaining.remove(tup)
                except ValueError:
                    raise CatalogError(
                        f"cannot delete {tup!r}: not present in {name!r}"
                    ) from None
                removed.append(tup)
            new_relation = ValidTimeRelation(old.schema)
            new_relation._tuples = remaining
            version = self._install(name, new_relation)
            self._maintain_views(name, removed, sign=-1)
            return version

    def drop(self, name: str) -> None:
        """Remove *name* from the catalog (epoch + 1).

        Existing snapshots keep their versions; :meth:`version_at` keeps
        answering for the dropped name's history.

        Raises:
            CatalogError: the relation feeds a live incremental view (detach
                the view first; a maintained view over a vanished base would
                silently go stale).
        """
        with self._lock:
            if name not in self._current:
                raise CatalogError(f"no relation named {name!r}")
            holders = [
                binding.name
                for binding in self._views.values()
                if name in (binding.r_name, binding.s_name)
            ]
            if holders:
                raise CatalogError(
                    f"cannot drop {name!r}: live incremental view(s) "
                    f"{sorted(holders)} depend on it"
                )
            del self._current[name]
            self._epoch += 1

    def _install(self, name: str, relation: ValidTimeRelation) -> RelationVersion:
        self._epoch += 1
        version = RelationVersion(name, self._epoch, relation)
        self._current[name] = version
        self._history[name].append(version)
        return version

    # -- incremental views ----------------------------------------------------

    def attach_view(self, view_name: str, view: object, r_name: str, s_name: str) -> None:
        """Register a live incremental view over two base relations.

        *view* is :class:`~repro.incremental.view.MaterializedVTJoin`-shaped;
        from now on every append/delete on the bases is folded into it under
        the catalog lock, so a view snapshot is always consistent with the
        current epoch.
        """
        with self._lock:
            if view_name in self._views:
                raise CatalogError(f"view {view_name!r} already attached")
            for base in (r_name, s_name):
                if base not in self._current:
                    raise CatalogError(f"no relation named {base!r}")
            self._views[view_name] = _ViewBinding(view_name, view, r_name, s_name)

    def detach_view(self, view_name: str) -> None:
        with self._lock:
            if view_name not in self._views:
                raise CatalogError(f"no view named {view_name!r}")
            del self._views[view_name]

    def view(self, view_name: str):
        with self._lock:
            try:
                return self._views[view_name].view
            except KeyError:
                raise CatalogError(f"no view named {view_name!r}") from None

    def view_for(self, r_name: str, s_name: str):
        """The live view maintained over ``(r_name, s_name)``, or None."""
        with self._lock:
            for binding in self._views.values():
                if (binding.r_name, binding.s_name) == (r_name, s_name):
                    return binding.view
            return None

    def _maintain_views(self, name: str, tuples: Iterable[VTTuple], *, sign: int) -> None:
        for binding in self._views.values():
            if binding.r_name == name:
                insert, remove = binding.view.insert_r, binding.view.delete_r
            elif binding.s_name == name:
                insert, remove = binding.view.insert_s, binding.view.delete_s
            else:
                continue
            for tup in tuples:
                (insert if sign > 0 else remove)(tup)
