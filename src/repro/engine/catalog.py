"""Catalog statistics: what the optimizer is allowed to know.

A 1994 optimizer plans from maintained statistics, not from scanning the
data at plan time.  :class:`RelationStatistics` captures the facts the
join-method chooser consumes -- page count, lifespan, long-lived fraction,
key cardinality -- and :func:`analyze` computes them with one pass, the
moral equivalent of an ``ANALYZE`` command.

The long-lived classification follows the experiments' usage: a tuple is
long-lived when its duration is a noticeable fraction of the relation
lifespan (instantaneous tuples and short intervals behave identically for
caching and backing-up purposes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.model.relation import ValidTimeRelation
from repro.storage.page import PageSpec
from repro.time.lifespan import Lifespan

#: A tuple is long-lived when it covers at least this fraction of the
#: relation lifespan (the experiments' long-lived tuples cover one half).
LONG_LIVED_THRESHOLD = 0.10


@dataclass(frozen=True)
class RelationStatistics:
    """Planning-time facts about one relation.

    Attributes:
        n_tuples: cardinality.
        n_pages: pages under the catalog's page geometry.
        lifespan: hull of the timestamps (None when empty).
        long_lived_fraction: share of tuples covering at least
            :data:`LONG_LIVED_THRESHOLD` of the lifespan.
        n_keys: distinct join-attribute values.
        mean_duration: average timestamp duration in chronons.
    """

    n_tuples: int
    n_pages: int
    lifespan: Optional[Lifespan]
    long_lived_fraction: float
    n_keys: int
    mean_duration: float

    @property
    def tuples_per_key(self) -> float:
        """Average version-chain length (the paper's ~10 tuples per object)."""
        if self.n_keys == 0:
            return 0.0
        return self.n_tuples / self.n_keys


def analyze(relation: ValidTimeRelation, spec: PageSpec) -> RelationStatistics:
    """Compute :class:`RelationStatistics` with a single pass."""
    n_tuples = len(relation)
    n_pages = spec.pages_for_tuples(n_tuples)
    span = relation.lifespan()
    if n_tuples == 0 or span is None:
        return RelationStatistics(0, 0, None, 0.0, 0, 0.0)

    threshold = max(2, int(span.duration * LONG_LIVED_THRESHOLD))
    long_lived = 0
    total_duration = 0
    keys = set()
    for tup in relation:
        duration = tup.valid.duration
        total_duration += duration
        if duration >= threshold:
            long_lived += 1
        keys.add(tup.key)
    return RelationStatistics(
        n_tuples=n_tuples,
        n_pages=n_pages,
        lifespan=span,
        long_lived_fraction=long_lived / n_tuples,
        n_keys=len(keys),
        mean_duration=total_duration / n_tuples,
    )
