"""Analytical join-cost estimates and the cost-based algorithm chooser.

The estimates mirror each algorithm's pass structure under the simulator's
accounting; they are *planning* estimates (catalog statistics only: page
counts and an optional long-lived fraction), deliberately coarse the way a
1994 optimizer's would be:

* **nested loops** -- the paper's own closed form
  (:func:`repro.baselines.nested_loop_cost.nested_loop_cost`).
* **sort-merge** -- run formation + merge passes + the match scan, with a
  backing-up surcharge when long-lived pages are expected to exceed the
  match window.
* **partition join** -- a sampling pass (scan-capped), a partitioning
  read+write per relation, and the join-phase read, with a tuple-cache
  surcharge proportional to the long-lived fraction.

The chooser picks the minimum; ties favour the partition join (no sort
order or access-path maintenance, the paper's qualitative tie-breakers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.baselines.nested_loop_cost import nested_loop_cost
from repro.storage.buffer import JoinBufferAllocation
from repro.storage.iostats import CostModel


@dataclass(frozen=True)
class JoinEstimate:
    """Catalog-level estimate for one algorithm."""

    algorithm: str
    cost: float
    note: str = ""


def estimate_costs(
    outer_pages: int,
    inner_pages: int,
    memory_pages: int,
    cost_model: CostModel,
    *,
    long_lived_fraction: float = 0.0,
    endpoint_sorted: Optional[Tuple[bool, bool]] = None,
) -> Dict[str, JoinEstimate]:
    """Estimated evaluation cost of every algorithm, by name.

    *endpoint_sorted* opts the forward-scan sweep into the comparison: pass
    the catalog's ``(outer_sorted, inner_sorted)`` flags and a ``"sweep"``
    entry is added (one sorted scan per input, plus the external-sort
    charge for each unsorted side).  The entry only appears when at least
    one flag is True: the simulator's single-run sort charge is optimistic
    next to a real multi-pass external sort at scarce memory, so
    fully-unsorted inputs never compete (matching
    :func:`repro.core.planner.choose_physical_operator`).  None -- the
    default, and what every pre-sweep caller passes -- leaves the estimate
    set unchanged.
    """
    if outer_pages < 0 or inner_pages < 0:
        raise ValueError("relation sizes must be non-negative")
    if not 0.0 <= long_lived_fraction <= 1.0:
        raise ValueError("long_lived_fraction must lie in [0, 1]")
    estimates = {
        "nested_loop": _nested_loop(outer_pages, inner_pages, memory_pages, cost_model),
        "sort_merge": _sort_merge(
            outer_pages, inner_pages, memory_pages, cost_model, long_lived_fraction
        ),
        "partition": _partition(
            outer_pages, inner_pages, memory_pages, cost_model, long_lived_fraction
        ),
    }
    if endpoint_sorted is not None and any(endpoint_sorted):
        from repro.core.planner import estimate_forward_sweep_cost

        outer_sorted, inner_sorted = endpoint_sorted
        sweep = estimate_forward_sweep_cost(
            outer_pages,
            inner_pages,
            cost_model,
            outer_sorted=outer_sorted,
            inner_sorted=inner_sorted,
        )
        note = (
            "sorted scan of each input"
            if sweep.c_sort == 0.0
            else f"sort charge {sweep.c_sort:.0f}"
        )
        estimates["sweep"] = JoinEstimate("sweep", sweep.total, note)
    return estimates


def choose_algorithm(
    outer_pages: int,
    inner_pages: int,
    memory_pages: int,
    cost_model: CostModel,
    *,
    long_lived_fraction: float = 0.0,
    endpoint_sorted: Optional[Tuple[bool, bool]] = None,
) -> str:
    """The estimated-cheapest algorithm (partition join wins ties).

    With *endpoint_sorted* flags the forward-scan sweep competes too, but
    must be strictly cheaper than every alternative -- ties keep the
    pre-sweep choice, so existing plans never shift on equal estimates.
    """
    estimates = estimate_costs(
        outer_pages,
        inner_pages,
        memory_pages,
        cost_model,
        long_lived_fraction=long_lived_fraction,
        endpoint_sorted=endpoint_sorted,
    )
    order = {"partition": 0, "sweep": 1, "sort_merge": 2, "nested_loop": 3}
    best = min(estimates.values(), key=lambda e: (e.cost, order[e.algorithm]))
    return best.algorithm


def _nested_loop(
    outer_pages: int, inner_pages: int, memory_pages: int, model: CostModel
) -> JoinEstimate:
    cost = nested_loop_cost(outer_pages, inner_pages, memory_pages, model)
    blocks = math.ceil(outer_pages / max(1, memory_pages - 2))
    return JoinEstimate("nested_loop", cost, f"{blocks} inner scan(s)")


def _sort_passes(pages: int, memory_pages: int) -> int:
    """Data passes (each read + write) to fully sort *pages*."""
    if pages <= memory_pages:
        return 1  # single sorted run
    runs = math.ceil(pages / memory_pages)
    fan_in = max(2, memory_pages - 1)
    passes = 1
    while runs > 1:
        runs = math.ceil(runs / fan_in)
        passes += 1
    return passes


def _sort_merge(
    outer_pages: int,
    inner_pages: int,
    memory_pages: int,
    model: CostModel,
    long_lived_fraction: float,
) -> JoinEstimate:
    total_pages = outer_pages + inner_pages
    # Everything-fits shortcut: two linear scans.
    if total_pages <= memory_pages - 1:
        return JoinEstimate(
            "sort_merge",
            model.cost_of_run(outer_pages) + model.cost_of_run(inner_pages),
            "in-memory",
        )
    cost = 0.0
    for pages in (outer_pages, inner_pages):
        passes = _sort_passes(pages, memory_pages)
        cost += passes * 2 * model.cost_of_run(pages)  # read + write per pass
        cost += model.cost_of_run(pages)  # the match-phase read
    # Backing-up surcharge: if pages holding live long-lived tuples exceed
    # the window, each excess page is re-read once per outer page.
    live_pages = long_lived_fraction * inner_pages
    window = max(1, memory_pages - 2)
    excess = max(0.0, live_pages - window)
    cost += excess * outer_pages * model.io_seq
    return JoinEstimate("sort_merge", cost, f"backup excess ~{excess:.0f} pages")


def _partition(
    outer_pages: int,
    inner_pages: int,
    memory_pages: int,
    model: CostModel,
    long_lived_fraction: float,
) -> JoinEstimate:
    buff_size = JoinBufferAllocation(max(4, memory_pages)).buff_size
    if min(outer_pages, inner_pages) <= buff_size:
        return JoinEstimate(
            "partition",
            model.cost_of_run(outer_pages) + model.cost_of_run(inner_pages),
            "single partition",
        )
    num_partitions = max(1, math.ceil(outer_pages / buff_size))
    # Sampling (scan-capped), partition read+write for both relations, and
    # the join-phase read of every partition.
    cost = model.cost_of_run(outer_pages)
    for pages in (outer_pages, inner_pages):
        cost += 2 * model.cost_of_run(pages)  # partition write + join read
        cost += num_partitions * model.io_ran  # per-partition seeks
    # Tuple-cache surcharge: long-lived inner tuples cross on average half
    # the partitions, written and re-read once per crossing.
    cache_pages = long_lived_fraction * inner_pages * max(0, num_partitions - 1) / 2
    cost += 2 * cache_pages * model.io_seq
    return JoinEstimate(
        "partition", cost, f"{num_partitions} partition(s)"
    )
