"""The :class:`TemporalDatabase` facade.

One object that holds named valid-time relations and exposes the library's
operators the way a user expects from a database: create, insert, join
(algorithm chosen by the optimizer unless forced), timeslice, aggregate.
Every join reports which algorithm ran and what it cost under the active
cost model, so the facade doubles as a workbench for exploring the paper's
trade-offs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.aggregate.operator import temporal_aggregate
from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.sort_merge import sort_merge_join
from repro.algebra.predicates import NATURAL_PREDICATE, resolve_predicate
from repro.core.partition_join import (
    PartitionJoinConfig,
    partition_join,
    plan_partition_join,
)
from repro.core.planner import choose_physical_operator
from repro.engine.catalog import RelationStatistics, analyze
from repro.engine.optimizer import JoinEstimate, choose_algorithm, estimate_costs
from repro.model.errors import SchemaError
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.obs import Observability, ObservabilityConfig
from repro.obs.explain import (
    ExplainReport,
    PhaseCost,
    predicted_phases,
    predicted_sweep_phases,
)
from repro.resilience.report import ResilienceReport
from repro.resilience.retry import ResiliencePolicy
from repro.storage.iostats import CostModel
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec


@dataclass
class QueryResult:
    """A join's result plus its execution pedigree.

    ``resilience`` is populated for partition joins run under a
    :class:`~repro.resilience.retry.ResiliencePolicy`; for other algorithms
    (and with resilience off) it is None.  ``observability`` carries the
    run's :class:`~repro.obs.Observability` runtime for partition joins when
    the database was built with an observability config.
    """

    relation: ValidTimeRelation
    algorithm: str
    cost: float
    estimates: Dict[str, JoinEstimate] = field(default_factory=dict)
    resilience: Optional[ResilienceReport] = None
    observability: Optional[Observability] = None
    #: The run's per-phase I/O tracker (what EXPLAIN ANALYZE reconciles
    #: predictions against); None only for composite join_many results.
    tracker: Optional[object] = None


class TemporalDatabase:
    """Named valid-time relations plus a configured execution environment.

    Args:
        memory_pages: buffer budget every operator runs under.
        cost_model: random/sequential weights for reported costs.
        page_spec: page geometry of the simulated storage.
        resilience: when given, partition joins run on checksummed storage
            with the policy's retry bounds, checkpoint interval, and
            degraded-fallback setting, and their :class:`QueryResult`
            carries the resilience report.
        execution: execution mode of partition joins (``"tuple"``,
            ``"batch"``, ``"batch-parallel"``, ``"batch-parallel-sweep"``,
            or ``"zero-copy-sweep"`` -- every mode returns identical
            results; see ``docs/EXECUTION.md``).
        prefetch_depth: read-ahead pages per partition barrier of the
            pipelined sweeps.
        sweep_workers: probe lanes of the pipelined sweep (None = one per
            core, capped at 8).
        observability: when given, partition joins record structured traces
            and metrics (see ``docs/OBSERVABILITY.md``); the runtime is
            returned on each :class:`QueryResult` and on
            :meth:`explain_analyze` reports.
    """

    def __init__(
        self,
        memory_pages: int = 64,
        cost_model: Optional[CostModel] = None,
        page_spec: Optional[PageSpec] = None,
        resilience: Optional[ResiliencePolicy] = None,
        execution: str = "tuple",
        prefetch_depth: int = 8,
        sweep_workers: Optional[int] = None,
        observability: Optional[ObservabilityConfig] = None,
    ) -> None:
        self.memory_pages = memory_pages
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.page_spec = page_spec if page_spec is not None else PageSpec()
        self.resilience = resilience
        self.execution = execution
        self.prefetch_depth = prefetch_depth
        self.sweep_workers = sweep_workers
        self.observability = observability
        # Fail on a bad mode at construction, not at the first join.
        self._join_config(memory_pages)
        self._relations: Dict[str, ValidTimeRelation] = {}
        self._statistics: Dict[str, Tuple[int, RelationStatistics]] = {}

    # -- catalog ------------------------------------------------------------

    def create_relation(self, schema: RelationSchema) -> ValidTimeRelation:
        """Register an empty relation under its schema name."""
        if schema.name in self._relations:
            raise SchemaError(f"relation {schema.name!r} already exists")
        relation = ValidTimeRelation(schema)
        self._relations[schema.name] = relation
        return relation

    def relation(self, name: str) -> ValidTimeRelation:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r}") from None

    def insert(self, name: str, rows: Iterable[Tuple]) -> int:
        """Append ``(attributes..., vs, ve)`` rows; returns the count added."""
        relation = self.relation(name)
        added = ValidTimeRelation.from_rows(relation.schema, rows)
        relation.extend(added.tuples)
        return len(added)

    def names(self) -> List[str]:
        return sorted(self._relations)

    def _join_config(self, memory_pages: int) -> PartitionJoinConfig:
        """The partition-join configuration this database's knobs describe."""
        kwargs = dict(
            memory_pages=memory_pages,
            cost_model=self.cost_model,
            page_spec=self.page_spec,
            execution=self.execution,
            prefetch_depth=self.prefetch_depth,
            sweep_workers=self.sweep_workers,
            observability=self.observability,
        )
        if self.resilience is not None:
            kwargs.update(
                checkpoint_interval=self.resilience.checkpoint_interval,
                retry_limit=self.resilience.retry_limit,
                degraded_fallback=self.resilience.degraded_fallback,
            )
        return PartitionJoinConfig(**kwargs)

    # -- statistics -----------------------------------------------------------

    def statistics(self, name: str) -> RelationStatistics:
        """Catalog statistics for *name* (recomputed lazily after changes)."""
        relation = self.relation(name)
        cached = self._statistics.get(name)
        if cached is None or cached[0] != len(relation):
            stats = analyze(relation, self.page_spec)
            self._statistics[name] = (len(relation), stats)
            return stats
        return cached[1]

    def _sortedness(self, outer: str, inner: str) -> Tuple[bool, bool]:
        """The catalog's endpoint-sortedness flags for a join's inputs."""
        return (
            self.statistics(outer).endpoint_sorted,
            self.statistics(inner).endpoint_sorted,
        )

    def _estimates(self, outer: str, inner: str) -> Dict[str, JoinEstimate]:
        """The optimizer's per-algorithm estimates for a join."""
        return estimate_costs(
            self.statistics(outer).n_pages,
            self.statistics(inner).n_pages,
            self.memory_pages,
            self.cost_model,
            long_lived_fraction=self.statistics(inner).long_lived_fraction,
            endpoint_sorted=self._sortedness(outer, inner),
        )

    def _choose(self, outer: str, inner: str) -> str:
        return choose_algorithm(
            self.statistics(outer).n_pages,
            self.statistics(inner).n_pages,
            self.memory_pages,
            self.cost_model,
            long_lived_fraction=self.statistics(inner).long_lived_fraction,
            endpoint_sorted=self._sortedness(outer, inner),
        )

    def explain(
        self,
        outer: str,
        inner: str,
        *,
        analyze: bool = False,
        method: str = "auto",
        predicate: Optional[str] = None,
        shards: Optional[int] = None,
        shard_by: str = "key-hash",
    ) -> ExplainReport:
        """EXPLAIN (and optionally ANALYZE) a join of two named relations.

        Without *analyze*, renders the plan the evaluation would choose --
        the optimizer's per-algorithm estimates and, for the partition join,
        the chosen partitioning (partition count, ``partSize``, sample size
        ``m``) with its predicted per-phase costs.  Nothing is executed
        (planning samples a scratch layout whose I/O is discarded).

        With *analyze*, the join runs for real and each phase's predicted
        cost is reconciled against the measured actuals on the run's
        :class:`~repro.storage.iostats.PhaseTracker`, with deviations.

        The report is a Mapping over the per-algorithm estimates, so code
        written against the old ``Dict[str, JoinEstimate]`` return shape
        keeps working.

        With ``shards=N`` the report also carries the shard fan-out line:
        each shard's fragment sizes under *shard_by* routing and the
        planner's predicted cost for that fragment -- the skew a
        :class:`~repro.shard.coordinator.ShardedQueryService` would see.
        """
        predicate_name = resolve_predicate(
            predicate if predicate is not None else NATURAL_PREDICATE
        ).name
        estimates = self._estimates(outer, inner)
        if method != "auto":
            algorithm = method
        elif predicate_name != NATURAL_PREDICATE:
            algorithm = "sweep"
        else:
            algorithm = self._choose(outer, inner)
        r = self.relation(outer)
        s = self.relation(inner)

        outer_sorted, inner_sorted = self._sortedness(outer, inner)
        plan = None
        single = False
        phases: list = []
        config = self._join_config(self.memory_pages)
        if algorithm == "partition":
            plan, single, _, _ = plan_partition_join(r, s, config)
            phases = predicted_phases(
                plan,
                single,
                self.statistics(outer).n_pages,
                self.statistics(inner).n_pages,
                config,
            )
        elif algorithm == "sweep":
            phases = predicted_sweep_phases(
                self.statistics(outer).n_pages,
                self.statistics(inner).n_pages,
                config,
                outer_sorted=outer_sorted,
                inner_sorted=inner_sorted,
            )
        operator = None
        rationale = None
        if algorithm in ("partition", "sweep"):
            choice = choose_physical_operator(
                self.statistics(outer).n_pages,
                self.statistics(inner).n_pages,
                self.memory_pages,
                self.cost_model,
                outer_sorted=outer_sorted,
                inner_sorted=inner_sorted,
                long_lived_fraction=self.statistics(inner).long_lived_fraction,
                predicate=predicate_name,
            )
            operator = "forward-sweep" if algorithm == "sweep" else "partition"
            if method != "auto" and operator != choice.operator:
                rationale = (
                    f"forced by method={method!r} (cost model prefers "
                    f"{choice.operator}: {choice.rationale})"
                )
            else:
                rationale = choice.rationale
        shard_fanout = None
        if shards is not None:
            from repro.shard.coordinator import predict_shard_fanout
            from repro.shard.partitioning import ShardMap, time_range_map

            if shard_by == "time-range":
                shard_map = time_range_map(shards, r, s)
            else:
                shard_map = ShardMap(shards, strategy=shard_by)
            shard_fanout = predict_shard_fanout(
                shard_map,
                r,
                s,
                memory_pages=self.memory_pages,
                cost_model=self.cost_model,
                page_spec=self.page_spec,
            )
        report = ExplainReport(
            outer=outer,
            inner=inner,
            outer_pages=self.statistics(outer).n_pages,
            inner_pages=self.statistics(inner).n_pages,
            algorithm=algorithm,
            method=method,
            estimates=estimates,
            memory_pages=self.memory_pages,
            execution=self.execution,
            plan=plan,
            single_partition=single,
            phases=phases,
            operator=operator,
            operator_rationale=rationale,
            shard_fanout=shard_fanout,
        )
        if not analyze:
            return report

        result = self.join(
            outer, inner, method=algorithm, predicate=predicate
        )
        report.analyzed = True
        report.actual_total = result.cost
        report.result_tuples = len(result.relation)
        report.observability = result.observability
        if result.tracker is not None:
            by_phase = {p.phase: p for p in report.phases}
            for name in result.tracker.phases:
                actual = result.tracker.phase_cost(name, self.cost_model)
                row = by_phase.get(name)
                if row is None:
                    row = PhaseCost(phase=name)
                    report.phases.append(row)
                    by_phase[name] = row
                row.actual = actual
            for row in report.phases:
                if row.actual is None:
                    row.actual = 0.0
        return report

    def explain_analyze(
        self, outer: str, inner: str, *, method: str = "auto"
    ) -> ExplainReport:
        """Run the join and render predicted-vs-actual per-phase costs."""
        return self.explain(outer, inner, analyze=True, method=method)

    # -- queries ------------------------------------------------------------------

    def join(
        self,
        outer: str,
        inner: str,
        *,
        method: str = "auto",
        predicate: Optional[str] = None,
    ) -> QueryResult:
        """Valid-time join of two named relations.

        Args:
            outer: outer relation name.
            inner: inner relation name.
            method: ``"auto"`` (cost-based choice), ``"partition"``,
                ``"sweep"`` (the forward-scan sweep of
                :mod:`repro.exec.forward_sweep`), ``"sort_merge"``, or
                ``"nested_loop"``.
            predicate: Allen-algebra predicate name (default the natural
                join's ``"intersects"``).  Every predicate other than
                ``"intersects"`` is evaluated by the forward sweep, so it
                requires ``method`` ``"auto"`` or ``"sweep"``.
        """
        r = self.relation(outer)
        s = self.relation(inner)
        predicate_name = resolve_predicate(
            predicate if predicate is not None else NATURAL_PREDICATE
        ).name
        estimates = self._estimates(outer, inner)
        if method == "auto":
            if predicate_name != NATURAL_PREDICATE:
                method = "sweep"
            else:
                method = self._choose(outer, inner)
        if predicate_name != NATURAL_PREDICATE and method != "sweep":
            raise ValueError(
                f"predicate {predicate_name!r} requires method 'sweep' "
                f"(or 'auto'); the {method!r} algorithm evaluates only the "
                f"natural join's {NATURAL_PREDICATE!r}"
            )

        report: Optional[ResilienceReport] = None
        observability: Optional[Observability] = None
        if method == "sweep":
            config = replace(
                self._join_config(self.memory_pages),
                execution="forward-sweep",
                predicate=predicate_name,
                checkpoint_interval=0,
                buffer_reductions=(),
            )
            layout = None
            if self.resilience is not None:
                layout = DiskLayout(
                    spec=self.page_spec,
                    retry_policy=self.resilience.retry_policy(),
                    checksums=self.resilience.checksums,
                )
            run = partition_join(r, s, config, layout=layout)
            relation, cost = run.result, run.total_cost(self.cost_model)
            tracker = run.layout.tracker
            observability = run.observability
            if self.resilience is not None:
                report = run.resilience
        elif method == "partition":
            config = self._join_config(self.memory_pages)
            layout = None
            if self.resilience is not None:
                layout = DiskLayout(
                    spec=self.page_spec,
                    retry_policy=self.resilience.retry_policy(),
                    checksums=self.resilience.checksums,
                )
            run = partition_join(r, s, config, layout=layout)
            relation, cost = run.result, run.total_cost(self.cost_model)
            tracker = run.layout.tracker
            observability = run.observability
            if self.resilience is not None:
                report = run.resilience
        elif method == "sort_merge":
            run = sort_merge_join(
                r, s, self.memory_pages, page_spec=self.page_spec
            )
            relation = run.result
            cost = run.layout.tracker.stats.cost(self.cost_model)
            tracker = run.layout.tracker
        elif method == "nested_loop":
            run = nested_loop_join(
                r, s, self.memory_pages, page_spec=self.page_spec
            )
            relation = run.result
            cost = run.layout.tracker.stats.cost(self.cost_model)
            tracker = run.layout.tracker
        else:
            raise ValueError(f"unknown join method {method!r}")
        assert relation is not None
        return QueryResult(
            relation=relation,
            algorithm=method,
            cost=cost,
            estimates=estimates,
            resilience=report,
            observability=observability,
            tracker=tracker,
        )

    def join_many(self, names: List[str], *, method: str = "auto") -> QueryResult:
        """Left-deep multi-way valid-time natural join of named relations.

        The reconstruction query of a fully decomposed temporal database
        [JSS92a]: join the fragments back together, choosing the algorithm
        per step.  Intermediate results are registered under synthetic
        catalog names so the optimizer sees their statistics.

        Args:
            names: two or more relation names, joined left to right.
            method: per-step method (``"auto"`` re-chooses at every step).
        """
        if len(names) < 2:
            raise SchemaError("join_many needs at least two relations")
        current = names[0]
        total_cost = 0.0
        algorithms = []
        step_result: Optional[QueryResult] = None
        temporaries: List[str] = []
        try:
            for step, name in enumerate(names[1:]):
                step_result = self.join(current, name, method=method)
                total_cost += step_result.cost
                algorithms.append(step_result.algorithm)
                temp_name = step_result.relation.schema.name
                if temp_name in self._relations:
                    temp_name = f"{temp_name}__step{step}"
                self._relations[temp_name] = step_result.relation
                temporaries.append(temp_name)
                current = temp_name
        finally:
            for temp_name in temporaries[:-1]:
                self._relations.pop(temp_name, None)
                self._statistics.pop(temp_name, None)
        final_name = temporaries[-1] if temporaries else current
        self._relations.pop(final_name, None)
        self._statistics.pop(final_name, None)
        assert step_result is not None
        return QueryResult(
            relation=step_result.relation,
            algorithm="+".join(algorithms),
            cost=total_cost,
            estimates=step_result.estimates,
        )

    def timeslice(self, name: str, chronon: int) -> List[Tuple]:
        """Snapshot rows of a named relation at *chronon*."""
        return sorted(self.relation(name).timeslice(chronon), key=repr)

    def aggregate(self, name: str, op: str, **kwargs) -> ValidTimeRelation:
        """Temporal aggregation over a named relation (see
        :func:`repro.aggregate.operator.temporal_aggregate`)."""
        return temporal_aggregate(self.relation(name), op, **kwargs)

    def serve(self, *, shards: Optional[int] = None, **service_kwargs):
        """Open a concurrent :class:`~repro.service.service.QueryService`.

        Every current relation is copied into a fresh
        :class:`~repro.engine.catalog.VersionedCatalog` (epoch 0 versions);
        further writes go through service sessions, not this database.
        The service inherits this database's memory budget, cost model,
        page geometry, and execution mode unless overridden via
        *service_kwargs* (see :class:`~repro.service.service.QueryService`).
        Close the returned service (it is a context manager) when done.

        With ``shards=N`` (N >= 1) the returned service is instead a
        :class:`~repro.shard.coordinator.ShardedQueryService` over N shard
        worker processes (``shard_by`` in *service_kwargs* picks the
        routing strategy; see ``docs/SHARDING.md``).  Results, counters,
        and charged I/O are bit-identical to the single-process service.
        """
        from repro.engine.catalog import VersionedCatalog
        from repro.service.service import QueryService

        catalog = VersionedCatalog()
        for name in self.names():
            relation = self._relations[name]
            catalog.register(relation.schema, relation.tuples)
        service_kwargs.setdefault("pool_pages", self.memory_pages)
        service_kwargs.setdefault("cost_model", self.cost_model)
        service_kwargs.setdefault("page_spec", self.page_spec)
        service_kwargs.setdefault("execution", self.execution)
        if shards is not None:
            from repro.shard.coordinator import ShardedQueryService

            return ShardedQueryService(catalog, shards=shards, **service_kwargs)
        return QueryService(catalog, **service_kwargs)
