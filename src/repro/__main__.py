"""Command-line interface: regenerate the paper's evaluation from a shell.

Usage::

    python -m repro params                 # the reconstructed Figure 5 table
    python -m repro fig4 [--scale 16]      # planner cost curve (Figure 4)
    python -m repro fig6 [--scale 16]      # memory sweep (Figure 6)
    python -m repro fig7 [--scale 16]      # long-lived sweep (Figure 7)
    python -m repro fig8 [--scale 16]      # memory x density grid (Figure 8)
    python -m repro all [--scale 16]       # everything above
    python -m repro explain [--analyze]    # EXPLAIN (ANALYZE) a workload join
    python -m repro serve [--script f.jsonl]  # concurrent workload driver

Each figure command prints the measured series and the machine-checked
shape verdict against the paper's claims.  ``explain`` renders the chosen
partition plan -- and with ``--analyze`` runs it, reporting predicted vs
actual per-phase costs (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.experiments import (
    ExperimentConfig,
    run_fig4,
    run_fig6,
    run_fig7,
    run_fig8,
)
from repro.experiments import fig4, fig6, fig7, fig8
from repro.experiments.report import format_table, parameter_table, verdict_lines


def _print_fig4(config: ExperimentConfig) -> int:
    result = run_fig4(config)
    print("Figure 4 -- I/O cost vs partition size")
    rows = [
        (c.part_size, c.n_samples, c.c_sample, c.c_join_cache, c.total)
        for c in result.curve
    ]
    print(format_table(("partSize", "m", "C_sample", "C_cache", "total"), rows))
    print(f"chosen partSize: {result.chosen_part_size}")
    problems = fig4.shape_checks(result)
    print(verdict_lines("fig4", problems))
    return len(problems)


def _print_fig6(config: ExperimentConfig) -> int:
    points = run_fig6(config)
    print("Figure 6 -- evaluation cost vs main memory")
    rows = [(p.memory_mb, f"{p.ratio:.0f}:1", p.algorithm, p.cost) for p in points]
    print(format_table(("MiB", "ratio", "algorithm", "cost"), rows))
    problems = fig6.shape_checks(points)
    print(verdict_lines("fig6", problems))
    return len(problems)


def _print_fig7(config: ExperimentConfig) -> int:
    points = run_fig7(config)
    print("Figure 7 -- evaluation cost vs long-lived tuples (8 MiB, 5:1)")
    rows = [(p.long_lived_total, p.algorithm, p.cost) for p in points]
    print(format_table(("long_lived", "algorithm", "cost"), rows))
    problems = fig7.shape_checks(points)
    print(verdict_lines("fig7", problems))
    return len(problems)


def _print_fig8(config: ExperimentConfig) -> int:
    points = run_fig8(config)
    print("Figure 8 -- partition-join cost: memory x long-lived density")
    memories = sorted({p.memory_mb for p in points})
    totals = sorted({p.long_lived_total for p in points})
    lookup = {(p.memory_mb, p.long_lived_total): p.cost for p in points}
    rows = [[t] + [lookup[(m, t)] for m in memories] for t in totals]
    print(format_table(["long_lived \\ MiB"] + [str(m) for m in memories], rows))
    problems = fig8.shape_checks(points)
    print(verdict_lines("fig8", problems))
    return len(problems)


def _print_summary(config: ExperimentConfig) -> int:
    """The Section 4.5 narrative as a measured table: who wins where."""
    points = run_fig6(config, ratios=(5,))
    memories = sorted({p.memory_mb for p in points})
    lookup = {(p.memory_mb, p.algorithm): p.cost for p in points}
    rows = []
    for mb in memories:
        costs = {
            algorithm: lookup[(mb, algorithm)]
            for algorithm in ("partition", "sort_merge", "nested_loop")
        }
        winner = min(costs, key=costs.get)
        advantage = sorted(costs.values())[1] / costs[winner]
        rows.append((mb, winner, f"{advantage:.2f}x over runner-up"))
    print("Section 4.5 summary -- cheapest algorithm per memory size (5:1)")
    print(format_table(("memory_MiB", "winner", "margin"), rows))
    problems = fig6.shape_checks(points)
    print(verdict_lines("summary", problems))
    return len(problems)


_COMMANDS = {
    "fig4": _print_fig4,
    "fig6": _print_fig6,
    "fig7": _print_fig7,
    "fig8": _print_fig8,
    "summary": _print_summary,
}


def _run_explain(argv: List[str]) -> int:
    """``python -m repro explain``: EXPLAIN (ANALYZE) a generated workload join."""
    from repro.engine.database import TemporalDatabase
    from repro.obs import ObservabilityConfig
    from repro.workloads.generator import generate_pair
    from repro.workloads.specs import DatabaseSpec

    parser = argparse.ArgumentParser(
        prog="python -m repro explain",
        description="Render the partition join's chosen plan for a generated "
        "workload; --analyze runs it and reconciles predicted vs actual "
        "per-phase cost.",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="run the join and report per-phase actuals with deviations",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=64,
        help="uniform workload scale divisor (default 64)",
    )
    parser.add_argument(
        "--memory-pages",
        type=int,
        default=32,
        help="buffer pages the evaluation runs under (default 32)",
    )
    parser.add_argument(
        "--execution",
        default="batch",
        choices=("tuple", "batch", "batch-parallel", "batch-parallel-sweep", "zero-copy-sweep"),
        help="execution mode of the partition join (default batch)",
    )
    parser.add_argument(
        "--method",
        default="auto",
        choices=("auto", "partition", "sort_merge", "nested_loop"),
        help="join algorithm ('auto' lets the optimizer choose)",
    )
    args = parser.parse_args(argv)

    spec = DatabaseSpec(name="explain").scaled(args.scale)
    r, s = generate_pair(spec)
    db = TemporalDatabase(
        memory_pages=args.memory_pages,
        execution=args.execution,
        observability=ObservabilityConfig(),
    )
    for rel in (r, s):
        db.create_relation(rel.schema).extend(rel.tuples)
    report = db.explain("r", "s", analyze=args.analyze, method=args.method)
    print(report.render())
    return 0


def _run_serve(argv: List[str]) -> int:
    """``python -m repro serve``: drive a concurrent workload through the
    query service and print the serving summary."""
    import json

    from repro.service.workload import demo_workload, load_workload, run_workload

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Replay a JSONL workload script concurrently through the "
        "query service (sessions, admission control, snapshot isolation, "
        "plan/result caching); without --script, a built-in demo workload "
        "runs.  See docs/SERVICE.md for the statement reference.",
    )
    parser.add_argument(
        "--script",
        help="path to a .jsonl workload script (default: built-in demo)",
    )
    parser.add_argument(
        "--pool-pages",
        type=int,
        default=64,
        help="shared buffer pages admission control arbitrates (default 64)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="executor worker threads (default 4)",
    )
    parser.add_argument(
        "--execution",
        default="batch",
        choices=("tuple", "batch", "batch-parallel", "batch-parallel-sweep", "zero-copy-sweep"),
        help="partition-join execution mode (default batch)",
    )
    parser.add_argument(
        "--admission-policy",
        default="fifo",
        choices=("fifo", "smallest"),
        help="memory-grant queueing policy (default fifo)",
    )
    parser.add_argument(
        "--sessions",
        type=int,
        default=4,
        help="demo-workload session count (ignored with --script; default 4)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="additionally dump the repro_service_* metric families",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="serve through a ShardedQueryService over N shard worker "
        "processes instead of the single-process service (see "
        "docs/SHARDING.md); results and counters are bit-identical",
    )
    parser.add_argument(
        "--shard-by",
        default="key-hash",
        choices=("key-hash", "time-range"),
        help="shard routing strategy with --shards (default key-hash; "
        "time-range needs pre-registered relations)",
    )
    args = parser.parse_args(argv)

    if args.script:
        statements = load_workload(args.script)
    else:
        statements = demo_workload(sessions=args.sessions)
    service = None
    if args.shards is not None:
        from repro.engine.catalog import VersionedCatalog
        from repro.service.workload import apply_setup, split_statements
        from repro.shard.coordinator import ShardedQueryService

        # Setup must land before the coordinator forks its workers (and,
        # for time-range routing, before the boundaries are computed).
        catalog = VersionedCatalog()
        setup, _per_session = split_statements(statements)
        apply_setup(catalog, setup)
        setup_ids = {id(statement) for statement in setup}
        statements = [s for s in statements if id(s) not in setup_ids]
        service = ShardedQueryService(
            catalog,
            shards=args.shards,
            shard_by=args.shard_by,
            pool_pages=args.pool_pages,
            workers=args.workers,
            execution=args.execution,
            admission_policy=args.admission_policy,
        )
    try:
        report = run_workload(
            statements,
            service=service,
            pool_pages=args.pool_pages,
            workers=args.workers,
            execution=args.execution,
            admission_policy=args.admission_policy,
        )
    finally:
        if service is not None:
            service.close()
    summary = report.summary()
    if args.metrics and service is not None:
        summary["metrics"] = service.metrics_snapshot()
    print(json.dumps(summary, indent=2, default=str))
    for line in report.errors:
        print(f"error: {line}", file=sys.stderr)
    return 1 if report.errors else 0


def main(argv: List[str] | None = None) -> int:
    """Entry point; returns the number of shape-check deviations."""
    if argv is None:
        argv = sys.argv[1:]
    # 'explain' and 'serve' own their flag sets; peel them off before the
    # figure parser.
    if argv and argv[0] == "explain":
        return _run_explain(list(argv[1:]))
    if argv and argv[0] == "serve":
        return _run_serve(list(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the evaluation of 'Efficient Evaluation of "
        "the Valid-Time Natural Join' (ICDE 1994).",
    )
    parser.add_argument(
        "command",
        choices=sorted(_COMMANDS) + ["params", "all"],
        help="which figure to regenerate (or 'params' / 'all')",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=16,
        help="uniform scale divisor (1 = paper scale; default 16)",
    )
    args = parser.parse_args(argv)

    if args.command == "params":
        print("Figure 5 -- reconstructed global parameters (see DESIGN.md)")
        print(parameter_table())
        return 0

    config = ExperimentConfig(scale=args.scale)
    if args.command == "all":
        deviations = 0
        for name in ("fig4", "fig6", "fig7", "fig8"):
            deviations += _COMMANDS[name](config)
            print()
        return deviations
    return _COMMANDS[args.command](config)


if __name__ == "__main__":
    sys.exit(main())
