"""Observability for the partition join: tracing, metrics, EXPLAIN.

The subsystem has three legs (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.trace` -- a structured tracer (nested spans, monotonic
  timings, JSON-lines and Chrome ``trace_event`` exporters);
* :mod:`repro.obs.metrics` -- a registry of counters, gauges, and
  fixed-bucket histograms with labeled families;
* :mod:`repro.obs.explain` -- EXPLAIN / EXPLAIN ANALYZE rendering of the
  planner's chosen plan and its predicted-vs-actual per-phase cost.

Everything is gated behind :class:`ObservabilityConfig`, threaded through
``PartitionJoinConfig.observability`` (and ``TemporalDatabase``).  With the
knob unset the hot paths pay a single ``is None`` check; with it set, an
:class:`Observability` runtime collects spans and metrics *without touching
the simulation*: results, ``JoinOutcome`` counters, and charged I/O are
bit-identical either way (property-tested in
``tests/property/test_prop_observability.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer

__all__ = [
    "ObservabilityConfig",
    "Observability",
    "MetricsRegistry",
    "Tracer",
    "span_or_null",
]

#: Probe-rows-per-partition histogram bounds (tuples, not pages).
_PROBE_ROW_BUCKETS = (
    16.0,
    64.0,
    256.0,
    1024.0,
    4096.0,
    16384.0,
    65536.0,
    262144.0,
)


@dataclass(frozen=True)
class ObservabilityConfig:
    """The knob: what to collect when observability is switched on.

    Attributes:
        tracing: collect spans (disable to keep only metrics).
        metrics: collect metrics (disable to keep only spans).
        io_events: additionally attach one trace event per charged I/O
            operation to the enclosing span.  Expensive at scale -- bounded
            by *max_io_events* -- but invaluable when auditing exactly which
            accesses a phase issued.
        max_io_events: retention cap on per-op trace events.
        max_spans: retention cap on finished spans (see :class:`Tracer`).
    """

    tracing: bool = True
    metrics: bool = True
    io_events: bool = False
    max_io_events: int = 10_000
    max_spans: int = 100_000

    def __post_init__(self) -> None:
        if self.max_io_events < 0:
            raise ValueError(f"max_io_events must be >= 0, got {self.max_io_events}")
        if self.max_spans < 0:
            raise ValueError(f"max_spans must be >= 0, got {self.max_spans}")


_OP_NAMES = {
    (False, False): "random_read",
    (False, True): "sequential_read",
    (True, False): "random_write",
    (True, True): "sequential_write",
}


class Observability:
    """The runtime a configured run records into.

    One instance per evaluation: :func:`repro.core.partition_join.partition_join`
    builds it from ``config.observability``, attaches it to the layout's
    disk, and returns it on the :class:`PartitionJoinResult` so callers can
    export traces and snapshot metrics.
    """

    def __init__(self, config: Optional[ObservabilityConfig] = None) -> None:
        self.config = config if config is not None else ObservabilityConfig()
        self.tracer: Optional[Tracer] = (
            Tracer(max_spans=self.config.max_spans) if self.config.tracing else None
        )
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if self.config.metrics else None
        )
        self._phase = "-"
        self._io_events_left = self.config.max_io_events if self.config.io_events else 0
        self.dropped_io_events = 0
        # Hot-path caches: one dict probe per charged I/O instead of a
        # family lookup + label resolution.
        self._io_children: Dict[Tuple[str, int, bool, bool], Any] = {}
        self._retry_children: Dict[Tuple[str, int, bool], Any] = {}
        self._pipeline_children: Dict[Tuple[str, int, bool], Any] = {}
        self._device_names: Dict[int, str] = {}
        if self.metrics is not None:
            self._io_family = self.metrics.counter(
                "repro_io_ops_total",
                "Charged I/O operations by phase, device, and access kind.",
                ("phase", "device", "op"),
            )
            self._retry_family = self.metrics.counter(
                "repro_io_retry_ops_total",
                "Charged operations that were fault-forced retries or backoff.",
                ("phase", "device", "direction"),
            )
            self._pipeline_family = self.metrics.counter(
                "repro_io_pipeline_ops_total",
                "Charged operations issued by the prefetch/write-behind pipeline.",
                ("phase", "device", "direction"),
            )

    # -- pickling: a worker process must never drag the runtime along -----------

    def __getstate__(self) -> Dict[str, Any]:
        return {"config": self.config}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(state["config"])

    # -- phases -------------------------------------------------------------

    @property
    def phase_name(self) -> str:
        """The phase label current I/O metrics are attributed to."""
        return self._phase

    @contextmanager
    def phase(self, name: str) -> Iterator[Optional[Span]]:
        """Attribute enclosed I/O metrics to *name* and span the phase."""
        previous = self._phase
        self._phase = name
        try:
            if self.tracer is not None:
                with self.tracer.span(f"phase:{name}") as span:
                    yield span
            else:
                yield None
        finally:
            self._phase = previous

    # -- the disk hook ------------------------------------------------------

    def on_io(
        self,
        device: int,
        *,
        write: bool,
        sequential: bool,
        retry: bool = False,
        pipeline: bool = False,
        count: int = 1,
    ) -> None:
        """Record one (or *count*) charged I/O operations.

        Called by :meth:`repro.storage.disk.SimulatedDisk._charge` after the
        operation is on the books -- observation only, the charge itself is
        already done.
        """
        if self.metrics is not None:
            key = (self._phase, device, write, sequential)
            child = self._io_children.get(key)
            if child is None:
                child = self._io_family.labels(
                    phase=self._phase,
                    device=self._device_name(device),
                    op=_OP_NAMES[(write, sequential)],
                )
                self._io_children[key] = child
            child.inc(count)
            if retry:
                self._tag_child(
                    self._retry_children, self._retry_family, device, write
                ).inc(count)
            if pipeline:
                self._tag_child(
                    self._pipeline_children, self._pipeline_family, device, write
                ).inc(count)
        if self._io_events_left != 0 and self.tracer is not None:
            if self._io_events_left > 0:
                self._io_events_left -= 1
                self.tracer.event(
                    "io",
                    device=self._device_name(device),
                    op=_OP_NAMES[(write, sequential)],
                    retry=retry,
                    pipeline=pipeline,
                    count=count,
                )
        elif self.config.io_events and self.tracer is not None:
            self.dropped_io_events += 1

    def _tag_child(self, cache, family, device: int, write: bool):
        key = (self._phase, device, write)
        child = cache.get(key)
        if child is None:
            child = family.labels(
                phase=self._phase,
                device=self._device_name(device),
                direction="write" if write else "read",
            )
            cache[key] = child
        return child

    def _device_name(self, device: int) -> str:
        name = self._device_names.get(device)
        if name is None:
            from repro.storage.layout import Device

            try:
                name = Device(device).name
            except ValueError:
                name = f"DEV{device}"
            self._device_names[device] = name
        return name

    # -- tracing conveniences -----------------------------------------------

    def span(self, name: str, lane: Optional[str] = None, **attrs: Any):
        """A span context (a no-op yielding a null span when tracing is off)."""
        if self.tracer is not None:
            return self.tracer.span(name, lane, **attrs)
        return _NULL_SPAN_CONTEXT

    def event(self, name: str, **attrs: Any) -> None:
        """Attach an event to the current span (no-op when tracing is off)."""
        if self.tracer is not None:
            self.tracer.event(name, **attrs)

    # -- metrics conveniences -----------------------------------------------

    def count(self, name: str, help: str = "", amount: float = 1.0, **labels: Any) -> None:
        """Increment a labeled counter (no-op when metrics are off)."""
        if self.metrics is not None:
            self.metrics.counter(name, help, tuple(sorted(labels))).labels(
                **labels
            ).inc(amount)

    def gauge(self, name: str, value: float, help: str = "", **labels: Any) -> None:
        """Set a labeled gauge (no-op when metrics are off)."""
        if self.metrics is not None:
            self.metrics.gauge(name, help, tuple(sorted(labels))).labels(**labels).set(
                value
            )

    def observe(
        self,
        name: str,
        value: float,
        help: str = "",
        buckets: Tuple[float, ...] = _PROBE_ROW_BUCKETS,
        **labels: Any,
    ) -> None:
        """Observe a histogram value (no-op when metrics are off)."""
        if self.metrics is not None:
            self.metrics.histogram(name, help, tuple(sorted(labels)), buckets).labels(
                **labels
            ).observe(value)

    # -- exports ------------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Stable dict of every metric family (empty when metrics are off)."""
        return self.metrics.snapshot() if self.metrics is not None else {}

    def chrome_trace(self) -> Dict[str, Any]:
        """Chrome ``trace_event`` export (empty trace when tracing is off)."""
        if self.tracer is not None:
            return self.tracer.chrome_trace()
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def trace_jsonl(self) -> str:
        """JSON-lines span export (empty string when tracing is off)."""
        return self.tracer.export_jsonl() if self.tracer is not None else ""


class _NullSpan:
    """The span stand-in handed out when tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    @property
    def attributes(self) -> Dict[str, Any]:
        return {}

    @property
    def events(self):
        return []


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


def span_or_null(
    obs: Optional[Observability], name: str, lane: Optional[str] = None, **attrs: Any
):
    """``obs.span(...)`` when *obs* is set; a shared null context otherwise.

    The instrumentation sites' one-liner: ``with span_or_null(obs, "probe")
    as span: ...`` always yields an object with a ``set`` method, so the
    instrumented code reads identically whether observability is on, off,
    or absent -- and an absent runtime costs one ``is None`` check.
    """
    if obs is None:
        return _NULL_SPAN_CONTEXT
    return obs.span(name, lane, **attrs)
