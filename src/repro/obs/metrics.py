"""A zero-dependency metrics registry: counters, gauges, histograms.

Prometheus-shaped but in-process: a :class:`MetricsRegistry` holds labeled
*families* of counters, gauges, and fixed-bucket histograms, and snapshots
everything into a stable, JSON-friendly dict.  The registry exists so the
partition join's instrumentation (per-phase I/O, per-partition probe rows,
retry/degradation counts, buffer-pool occupancy) has one sink that tests
and the benchmark harness can read deterministically.

Snapshot stability: metric names sort lexicographically, label sets render
as ``k=v`` pairs in the family's declared label order, and histogram
buckets keep their declared upper bounds -- two runs recording the same
values produce byte-identical snapshots.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (a generic 1-to-1e6 ladder; the
#: instrumentation sites pick domain-specific buckets where it matters).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0,
    4.0,
    16.0,
    64.0,
    256.0,
    1024.0,
    4096.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """A fixed-bucket histogram (cumulative bucket counts, like Prometheus).

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches everything beyond the last bound.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase, got {bounds}")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # trailing slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[position] += 1
                return
        self.counts[-1] += 1

    def snapshot(self) -> Dict[str, Any]:
        cumulative: List[int] = []
        running = 0
        for count in self.counts:
            running += count
            cumulative.append(running)
        return {
            "buckets": [
                {"le": bound, "count": cumulative[position]}
                for position, bound in enumerate(self.buckets)
            ]
            + [{"le": "+Inf", "count": cumulative[-1]}],
            "sum": self.sum,
            "count": self.count,
        }


class MetricFamily:
    """A named metric plus its labeled children.

    ``labels(**kv)`` resolves (creating on first use) the child for one
    label combination; a family declared without label names has a single
    anonymous child, reachable via ``labels()`` with no arguments.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self.buckets = buckets
        self._children: Dict[Tuple[str, ...], Any] = {}

    def _make_child(self) -> Any:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets or DEFAULT_BUCKETS)

    def labels(self, **labelvalues: Any) -> Any:
        given = set(labelvalues)
        expected = set(self.labelnames)
        if given != expected:
            raise ValueError(
                f"metric {self.name!r} expects labels {sorted(expected)}, "
                f"got {sorted(given)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def snapshot(self) -> Dict[str, Any]:
        series: Dict[str, Any] = {}
        for key in sorted(self._children):
            label_string = ",".join(
                f"{name}={value}" for name, value in zip(self.labelnames, key)
            )
            series[label_string] = self._children[key].snapshot()
        return {
            "type": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": series,
        }


class MetricsRegistry:
    """The process-local registry all instrumentation records into.

    Re-registering an existing name with the same kind and label names
    returns the existing family (instrumentation sites can declare their
    metrics independently); a conflicting redeclaration raises.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        names = tuple(labelnames)
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.labelnames != names:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {list(existing.labelnames)}; cannot redeclare "
                    f"as {kind} with labels {list(names)}"
                )
            return existing
        family = MetricFamily(
            name, kind, help, names, tuple(buckets) if buckets is not None else None
        )
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._register(name, "histogram", help, labelnames, buckets)

    def snapshot(self) -> Dict[str, Any]:
        """Every family's current state, as a stable nested dict."""
        return {name: self._families[name].snapshot() for name in sorted(self._families)}
