"""A zero-dependency structured tracer: nested spans, monotonic timings.

The tracer answers "*where* did the sweep spend its time" without touching
the simulation's accounting: opening a span records a monotonic start
timestamp, closing it records the end, and the parent/child relationship is
kept per thread so worker-lane instrumentation nests correctly.  Nothing
here charges I/O or influences control flow -- the property suite asserts
the whole run is bit-identical with tracing on or off.

Design points:

* **Typed attributes.**  Span attributes and event payloads accept only
  JSON-representable scalars (``str``/``int``/``float``/``bool``/``None``);
  anything else is stored as its ``repr`` so an exporter can never fail on
  an exotic value.
* **Thread safety.**  The per-thread span stack lives in ``threading.local``
  (each thread nests independently); the finished-span list is guarded by a
  lock.  Tracers are never shipped to worker *processes* -- the pool lanes
  receive plain arrays -- but a defensive ``__getstate__`` drops the
  unpicklable machinery anyway.
* **Leak accounting.**  Every live tracer registers in a module-level weak
  set; :func:`open_span_leaks` reports tracers holding unclosed spans, and
  the test suite fails the build from a teardown fixture when any remain.
* **Exporters.**  :meth:`Tracer.export_jsonl` emits one JSON object per
  finished span; :meth:`Tracer.chrome_trace` emits the Chrome
  ``trace_event`` format (complete ``"X"`` events, microsecond timestamps,
  one ``tid`` lane per distinct span ``lane`` -- main sweep, prefetch
  stage, probe lanes), loadable in ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
import threading
import weakref
from typing import Any, Dict, List, Optional, Tuple

#: Attribute types stored as-is; anything else is kept as its ``repr``.
_SCALARS = (str, int, float, bool, type(None))

#: Every live tracer, for the suite-wide unclosed-span leak check.
_TRACERS: "weakref.WeakSet[Tracer]" = weakref.WeakSet()


def _clean_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce attribute values to JSON-representable scalars."""
    return {
        key: value if isinstance(value, _SCALARS) else repr(value)
        for key, value in attrs.items()
    }


class Span:
    """One timed, attributed operation in the trace tree."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "lane",
        "start_ns",
        "end_ns",
        "attributes",
        "events",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        lane: str,
        start_ns: int,
        attributes: Dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.lane = lane
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.attributes = attributes
        self.events: List[Tuple[str, int, Dict[str, Any]]] = []

    @property
    def duration_ns(self) -> Optional[int]:
        """Span duration, or None while the span is still open."""
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) typed attributes on the span."""
        self.attributes.update(_clean_attrs(attrs))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "lane": self.lane,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "attributes": dict(self.attributes),
            "events": [
                {"name": name, "at_ns": at_ns, "attributes": dict(attrs)}
                for name, at_ns, attrs in self.events
            ],
        }

    def __repr__(self) -> str:
        state = "open" if self.end_ns is None else f"{self.duration_ns}ns"
        return f"Span({self.name!r}, lane={self.lane!r}, {state})"


class Tracer:
    """Collects nested spans with monotonic timings.

    Args:
        clock: nanosecond monotonic clock (overridable for deterministic
            tests).
        max_spans: retention cap on finished spans; beyond it spans are
            timed and discarded (``dropped_spans`` counts them) so a long
            run cannot grow without bound.
    """

    def __init__(self, clock=None, max_spans: int = 100_000) -> None:
        if clock is None:
            import time

            clock = time.perf_counter_ns
        self._clock = clock
        self._max_spans = max_spans
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 1
        self.finished: List[Span] = []
        self.dropped_spans = 0
        self.orphan_events = 0
        self._open = 0
        _TRACERS.add(self)

    # -- pickling: never ship the tracer's machinery to a worker ----------------

    def __getstate__(self) -> Dict[str, Any]:
        return {"max_spans": self._max_spans}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(max_spans=state.get("max_spans", 100_000))

    # -- span lifecycle -----------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @property
    def open_spans(self) -> int:
        """Spans currently open across all threads (0 after a clean run)."""
        return self._open

    def current(self) -> Optional[Span]:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, lane: Optional[str] = None, **attrs: Any) -> "_SpanContext":
        """Context manager opening a child span of the thread's current span."""
        return _SpanContext(self, name, lane, attrs)

    def _begin(self, name: str, lane: Optional[str], attrs: Dict[str, Any]) -> Span:
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self._open += 1
        span = Span(
            name,
            span_id,
            parent.span_id if parent is not None else None,
            lane if lane is not None else (parent.lane if parent is not None else "main"),
            self._clock(),
            _clean_attrs(attrs),
        )
        stack.append(span)
        return span

    def _end(self, span: Span) -> None:
        span.end_ns = self._clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order close: drop it wherever it is, never crash
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self._open -= 1
            if len(self.finished) < self._max_spans:
                self.finished.append(span)
            else:
                self.dropped_spans += 1

    def event(self, name: str, **attrs: Any) -> None:
        """Attach a point-in-time event to the calling thread's current span.

        Outside any span the event has nowhere to live; it is counted in
        ``orphan_events`` and dropped (never an error -- instrumentation
        must not fail the instrumented code).
        """
        span = self.current()
        if span is None:
            with self._lock:
                self.orphan_events += 1
            return
        span.events.append((name, self._clock(), _clean_attrs(attrs)))

    # -- exporters ----------------------------------------------------------

    def export_jsonl(self) -> str:
        """Finished spans as JSON-lines (one object per line)."""
        with self._lock:
            spans = list(self.finished)
        return "\n".join(json.dumps(span.as_dict(), sort_keys=True) for span in spans)

    def chrome_trace(self) -> Dict[str, Any]:
        """Finished spans in Chrome ``trace_event`` format.

        Each distinct span ``lane`` becomes one ``tid`` with a
        ``thread_name`` metadata record, so the sweep's main thread, the
        prefetch stage, and any worker lanes render as separate tracks.
        """
        with self._lock:
            spans = sorted(self.finished, key=lambda s: (s.start_ns, s.span_id))
        lanes: Dict[str, int] = {}
        events: List[Dict[str, Any]] = []
        for span in spans:
            tid = lanes.setdefault(span.lane, len(lanes) + 1)
            args = dict(span.attributes)
            if span.events:
                args["events"] = [
                    {"name": name, "ts_us": at_ns / 1000.0, **attrs}
                    for name, at_ns, attrs in span.events
                ]
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.start_ns / 1000.0,
                    "dur": (span.duration_ns or 0) / 1000.0,
                    "pid": 1,
                    "tid": tid,
                    "cat": "repro",
                    "args": args,
                }
            )
        metadata = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": lane},
            }
            for lane, tid in lanes.items()
        ]
        return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_lane", "_attrs", "span")

    def __init__(
        self, tracer: Tracer, name: str, lane: Optional[str], attrs: Dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._lane = lane
        self._attrs = attrs
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._tracer._begin(self._name, self._lane, self._attrs)
        return self.span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        assert self.span is not None
        if exc_type is not None:
            self.span.set(error=repr(exc))
        self._tracer._end(self.span)


def open_span_leaks() -> List[Tuple[Tracer, int]]:
    """Every live tracer still holding open spans, with the open count.

    The CI teardown fixture asserts this is empty after each test: an
    instrumentation site that opens a span without closing it (a missing
    ``with``, an early return around ``_end``) fails the build instead of
    silently producing truncated traces.
    """
    return [(tracer, tracer.open_spans) for tracer in list(_TRACERS) if tracer.open_spans]
