"""EXPLAIN / EXPLAIN ANALYZE for the valid-time partition join.

``EXPLAIN`` renders the plan the evaluation would choose -- partition count,
``partSize``, the Kolmogorov sample size ``m``, the execution mode, and the
predicted phase costs ``C_sample`` / ``C_partition`` / ``C_join`` (the
Section 3.4 decomposition, with ``C_partition`` from
:func:`repro.core.planner.estimate_partition_cost` since the paper gives no
closed form for it).  ``EXPLAIN ANALYZE`` additionally runs the join and
reconciles each prediction against the per-phase actuals on the layout's
:class:`~repro.storage.iostats.PhaseTracker`, with deviation percentages.

:class:`ExplainReport` implements the :class:`~collections.abc.Mapping`
protocol over the optimizer's per-algorithm estimates, so callers of the
pre-observability ``TemporalDatabase.explain`` -- which returned a plain
``Dict[str, JoinEstimate]`` -- keep working unchanged.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.core.partition_join import PartitionJoinConfig
from repro.core.planner import PartitionPlan, estimate_partition_cost

#: Phases rendered in the Section 3.4 order; anything else the tracker
#: recorded (e.g. ``"degraded-join"``) is appended after these.  The
#: forward sweep's ``"sort"`` phase renders between partitioning and join.
_PHASE_ORDER = ("sample", "partition", "sort", "join")


@dataclass
class PhaseCost:
    """One row of the predicted-vs-actual table.

    Attributes:
        phase: phase name on the :class:`PhaseTracker` ("sample",
            "partition", "join", "degraded-join", ...).
        predicted: the planner's cost estimate (None when the plan has no
            prediction for this phase, e.g. a degraded re-evaluation).
        actual: the phase's measured weighted cost (None before ANALYZE).
    """

    phase: str
    predicted: Optional[float] = None
    actual: Optional[float] = None

    @property
    def deviation_pct(self) -> Optional[float]:
        """Signed deviation of actual from predicted, in percent."""
        if self.predicted is None or self.actual is None:
            return None
        if self.predicted == 0.0:
            return None if self.actual == 0.0 else float("inf")
        return 100.0 * (self.actual - self.predicted) / self.predicted


def predicted_phases(
    plan: PartitionPlan,
    single_partition: bool,
    outer_pages: int,
    inner_pages: int,
    config: PartitionJoinConfig,
) -> List[PhaseCost]:
    """The planner's per-phase cost predictions for an (un-run) plan.

    A single-partition shortcut skips sampling and partitioning outright, so
    those phases predict zero; otherwise ``C_sample`` and ``C_join`` come
    from the chosen candidate and ``C_partition`` from the idealized Grace
    pattern of :func:`estimate_partition_cost`.
    """
    chosen = plan.chosen
    if chosen is None:  # trivial plan: nothing was predicted
        return [PhaseCost(phase=name) for name in _PHASE_ORDER]
    if single_partition:
        return [
            PhaseCost("sample", predicted=0.0),
            PhaseCost("partition", predicted=0.0),
            PhaseCost("join", predicted=chosen.c_join),
        ]
    return [
        PhaseCost("sample", predicted=chosen.c_sample),
        PhaseCost(
            "partition",
            predicted=estimate_partition_cost(
                outer_pages, inner_pages, len(plan.intervals), config.cost_model
            ),
        ),
        PhaseCost("join", predicted=chosen.c_join),
    ]


def predicted_sweep_phases(
    outer_pages: int,
    inner_pages: int,
    config: PartitionJoinConfig,
    *,
    outer_sorted: bool = False,
    inner_sorted: bool = False,
) -> List[PhaseCost]:
    """The forward sweep's per-phase predictions.

    The sweep neither samples nor partitions (those phases predict zero);
    the sort phase carries the external-sort charge of unsorted inputs and
    the join phase one sorted scan of each input (docs/COST_MODEL.md).
    """
    from repro.core.planner import estimate_forward_sweep_cost

    estimate = estimate_forward_sweep_cost(
        outer_pages,
        inner_pages,
        config.cost_model,
        outer_sorted=outer_sorted,
        inner_sorted=inner_sorted,
    )
    return [
        PhaseCost("sample", predicted=0.0),
        PhaseCost("partition", predicted=0.0),
        PhaseCost("sort", predicted=estimate.c_sort),
        PhaseCost("join", predicted=estimate.c_scan),
    ]


class ExplainReport(Mapping):
    """The rendered outcome of EXPLAIN / EXPLAIN ANALYZE.

    A Mapping over the optimizer's per-algorithm ``JoinEstimate`` objects
    (backward compatible with the plain dict the facade used to return),
    carrying the chosen plan's description and -- after ANALYZE -- the
    per-phase predicted-vs-actual reconciliation.
    """

    def __init__(
        self,
        *,
        outer: str,
        inner: str,
        outer_pages: int,
        inner_pages: int,
        algorithm: str,
        method: str,
        estimates: Dict[str, Any],
        memory_pages: int,
        execution: str,
        plan: Optional[PartitionPlan] = None,
        single_partition: bool = False,
        phases: Optional[List[PhaseCost]] = None,
        analyzed: bool = False,
        actual_total: Optional[float] = None,
        result_tuples: Optional[int] = None,
        observability: Optional[Any] = None,
        operator: Optional[str] = None,
        operator_rationale: Optional[str] = None,
        shard_fanout: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.outer = outer
        self.inner = inner
        self.outer_pages = outer_pages
        self.inner_pages = inner_pages
        self.algorithm = algorithm
        self.method = method
        self.estimates = estimates
        self.memory_pages = memory_pages
        self.execution = execution
        self.plan = plan
        self.single_partition = single_partition
        self.phases: List[PhaseCost] = phases if phases is not None else []
        self.analyzed = analyzed
        self.actual_total = actual_total
        self.result_tuples = result_tuples
        self.observability = observability
        #: The chosen physical operator ("partition" or "forward-sweep")
        #: and the crossover-model rationale behind it; None when the
        #: algorithm has no partition/sweep choice (e.g. sort-merge).
        self.operator = operator
        self.operator_rationale = operator_rationale
        #: The shard fan-out description (shard count, strategy, and the
        #: per-shard fragment sizes with predicted costs) when the plan is
        #: sharded; None for single-process plans.
        self.shard_fanout = shard_fanout

    # -- Mapping protocol (over the per-algorithm estimates) -----------------

    def __getitem__(self, key: str) -> Any:
        return self.estimates[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self.estimates)

    def __len__(self) -> int:
        return len(self.estimates)

    # -- derived -------------------------------------------------------------

    @property
    def predicted_total(self) -> Optional[float]:
        """Sum of the phase predictions (None when nothing was predicted)."""
        known = [p.predicted for p in self.phases if p.predicted is not None]
        return sum(known) if known else None

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot of the report."""
        return {
            "outer": self.outer,
            "inner": self.inner,
            "outer_pages": self.outer_pages,
            "inner_pages": self.inner_pages,
            "algorithm": self.algorithm,
            "method": self.method,
            "execution": self.execution,
            "memory_pages": self.memory_pages,
            "estimates": {
                name: est.cost for name, est in sorted(self.estimates.items())
            },
            "plan": None
            if self.plan is None
            else {
                "num_partitions": len(self.plan.intervals),
                "part_size": self.plan.part_size,
                "buff_size": self.plan.buff_size,
                "n_samples": self.plan.chosen.n_samples
                if self.plan.chosen is not None
                else None,
                "single_partition": self.single_partition,
            },
            "phases": [
                {
                    "phase": p.phase,
                    "predicted": p.predicted,
                    "actual": p.actual,
                    "deviation_pct": p.deviation_pct,
                }
                for p in self.phases
            ],
            "operator": self.operator,
            "operator_rationale": self.operator_rationale,
            "shard_fanout": self.shard_fanout,
            "analyzed": self.analyzed,
            "predicted_total": self.predicted_total,
            "actual_total": self.actual_total,
            "result_tuples": self.result_tuples,
        }

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """The human-readable EXPLAIN text."""
        title = "EXPLAIN ANALYZE" if self.analyzed else "EXPLAIN"
        lines = [
            f"{title} valid-time natural join: {self.outer} ⋈ {self.inner}",
            f"  outer: {self.outer} ({self.outer_pages} pages)"
            f"   inner: {self.inner} ({self.inner_pages} pages)",
            f"  algorithm: {self.algorithm}"
            + (" (chosen by cost)" if self.method == "auto" else " (forced)")
            + f"   execution: {self.execution}"
            + f"   memory: {self.memory_pages} pages",
        ]
        if self.operator is not None:
            line = f"  physical operator: {self.operator}"
            if self.operator_rationale:
                line += f" -- {self.operator_rationale}"
            lines.append(line)
        if self.estimates:
            lines.append("  optimizer estimates:")
            for name, est in sorted(self.estimates.items()):
                marker = "  <- chosen" if name == self.algorithm else ""
                lines.append(f"    {name:<12} {est.cost:>12.1f}{marker}")
        plan = self.plan
        if plan is not None:
            chosen = plan.chosen
            desc = (
                f"  plan: {len(plan.intervals)} partition(s)"
                f" x {plan.part_size} page(s) (buffSize {plan.buff_size}"
            )
            if chosen is not None:
                desc += f", samples m={chosen.n_samples}"
            desc += ")"
            if self.single_partition:
                desc += "  [single-partition shortcut]"
            lines.append(desc)
            if chosen is not None:
                lines.append(
                    f"  predicted: C_sample={chosen.c_sample:.1f}"
                    f"  C_join={chosen.c_join:.1f}"
                    f" (scan {chosen.c_join_scan:.1f}"
                    f" + cache {chosen.c_join_cache:.1f})"
                )
        if self.shard_fanout is not None:
            fanout = self.shard_fanout
            per_shard = fanout.get("per_shard", [])
            costs = ", ".join(
                f"shard{row['rank']}={row['predicted_cost']:.1f}"
                for row in per_shard
            )
            lines.append(
                f"  shard fan-out: {fanout.get('shards')} shard(s)"
                f" [{fanout.get('strategy')}]  predicted per-shard: {costs}"
            )
        if self.phases:
            lines.append(
                f"  {'phase':<14} {'predicted':>12} {'actual':>12} {'deviation':>10}"
            )
            for p in self.phases:
                predicted = "-" if p.predicted is None else f"{p.predicted:.1f}"
                actual = "-" if p.actual is None else f"{p.actual:.1f}"
                dev = p.deviation_pct
                deviation = "-" if dev is None else f"{dev:+.1f}%"
                lines.append(
                    f"  {p.phase:<14} {predicted:>12} {actual:>12} {deviation:>10}"
                )
            predicted_total = self.predicted_total
            total_row = PhaseCost(
                "total", predicted=predicted_total, actual=self.actual_total
            )
            predicted = "-" if predicted_total is None else f"{predicted_total:.1f}"
            actual = (
                "-" if self.actual_total is None else f"{self.actual_total:.1f}"
            )
            dev = total_row.deviation_pct
            deviation = "-" if dev is None else f"{dev:+.1f}%"
            lines.append(
                f"  {'total':<14} {predicted:>12} {actual:>12} {deviation:>10}"
            )
        if self.analyzed and self.result_tuples is not None:
            lines.append(f"  result: {self.result_tuples} tuple(s)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ExplainReport({self.outer!r} join {self.inner!r}, "
            f"algorithm={self.algorithm!r}, analyzed={self.analyzed})"
        )
