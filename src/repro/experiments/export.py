"""Exporting experiment results as CSV for external plotting.

The benches print human-readable tables; downstream analysis (gnuplot,
pandas, a spreadsheet) wants machine-readable series.  One writer per
figure, all sharing the plain ``csv`` module and a stable column order, so
re-running an experiment overwrites its file deterministically.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Sequence, Union

from repro.experiments.fig4 import Fig4Result
from repro.experiments.fig6 import Fig6Point
from repro.experiments.fig7 import Fig7Point
from repro.experiments.fig8 import Fig8Point

PathLike = Union[str, Path]


def _write(path: PathLike, header: Sequence[str], rows: List[Sequence[object]]) -> int:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return len(rows)


def export_fig4(result: Fig4Result, path: PathLike) -> int:
    """Write the Figure 4 cost curve; returns the row count."""
    rows = [
        (
            point.part_size,
            point.n_samples,
            point.c_sample,
            point.c_join_scan,
            point.c_join_cache,
            point.total,
        )
        for point in result.curve
    ]
    return _write(
        path,
        ("part_size", "n_samples", "c_sample", "c_join_scan", "c_join_cache", "total"),
        rows,
    )


def export_fig6(points: List[Fig6Point], path: PathLike) -> int:
    """Write the Figure 6 sweep; returns the row count."""
    rows = [
        (p.memory_mb, p.ratio, p.algorithm, p.cost, p.memory_pages, p.relation_pages)
        for p in points
    ]
    return _write(
        path,
        ("memory_mb", "ratio", "algorithm", "cost", "memory_pages", "relation_pages"),
        rows,
    )


def export_fig7(points: List[Fig7Point], path: PathLike) -> int:
    """Write the Figure 7 sweep; returns the row count."""
    rows = [
        (
            p.long_lived_total,
            p.algorithm,
            p.cost,
            p.detail.get("backup_page_reads", ""),
            p.detail.get("cache_tuples_peak", ""),
        )
        for p in points
    ]
    return _write(
        path,
        ("long_lived_total", "algorithm", "cost", "backup_page_reads", "cache_tuples_peak"),
        rows,
    )


def export_fig8(points: List[Fig8Point], path: PathLike) -> int:
    """Write the Figure 8 grid; returns the row count."""
    rows = [(p.memory_mb, p.long_lived_total, p.cost) for p in points]
    return _write(path, ("memory_mb", "long_lived_total", "cost"), rows)
