"""One-call execution of each evaluation algorithm under an experiment config.

Each runner places the database on a fresh simulated disk, evaluates the
join, and returns the weighted I/O cost (result writes excluded, as the
paper excludes them).  The nested-loop baseline is analytical by default,
exactly as in the paper ("we ... calculated analytical results for
nested-loops"); the simulated variant exists to validate the formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.nested_loop_cost import nested_loop_cost
from repro.baselines.sort_merge import sort_merge_join
from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.experiments.config import ExperimentConfig
from repro.model.relation import ValidTimeRelation
from repro.storage.iostats import CostModel

#: The algorithm names every experiment and bench refers to.
ALGORITHMS = ("partition", "sort_merge", "nested_loop")


@dataclass
class RunCost:
    """Outcome of one measured run.

    Attributes:
        algorithm: one of :data:`ALGORITHMS` (or ``"nested_loop_sim"``).
        cost: weighted I/O cost under the run's cost model.
        phase_costs: weighted cost per phase (empty for analytical runs).
        detail: algorithm-specific extras (plan size, backup reads, ...).
    """

    algorithm: str
    cost: float
    phase_costs: Dict[str, float] = field(default_factory=dict)
    detail: Dict[str, object] = field(default_factory=dict)


def run_algorithm(
    algorithm: str,
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    memory_pages: int,
    cost_model: CostModel,
    config: Optional[ExperimentConfig] = None,
) -> RunCost:
    """Run *algorithm* on ``(r, s)`` and return its weighted cost."""
    config = config if config is not None else ExperimentConfig()
    if algorithm == "partition":
        return run_partition(r, s, memory_pages, cost_model, config)
    if algorithm == "sort_merge":
        return run_sort_merge(r, s, memory_pages, cost_model, config)
    if algorithm == "nested_loop":
        return run_nested_loop_analytic(r, s, memory_pages, cost_model, config)
    if algorithm == "nested_loop_sim":
        return run_nested_loop_simulated(r, s, memory_pages, cost_model, config)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def run_partition(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    memory_pages: int,
    cost_model: CostModel,
    config: ExperimentConfig,
    *,
    allow_scan_sampling: bool = True,
) -> RunCost:
    """Measured partition join (the paper's algorithm)."""
    join_config = PartitionJoinConfig(
        memory_pages=memory_pages,
        cost_model=cost_model,
        page_spec=config.page_spec(r.schema.tuple_bytes),
        allow_scan_sampling=allow_scan_sampling,
        max_plan_candidates=config.max_plan_candidates,
        collect_result=config.collect_result,
    )
    run = partition_join(r, s, join_config)
    tracker = run.layout.tracker
    return RunCost(
        algorithm="partition",
        cost=tracker.stats.cost(cost_model),
        phase_costs=tracker.breakdown(cost_model),
        detail={
            "num_partitions": run.plan.num_partitions,
            "part_size": run.plan.part_size,
            "overflow_blocks": run.outcome.overflow_blocks,
            "cache_tuples_peak": run.outcome.cache_tuples_peak,
            "n_result_tuples": run.outcome.n_result_tuples,
        },
    )


def run_sort_merge(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    memory_pages: int,
    cost_model: CostModel,
    config: ExperimentConfig,
) -> RunCost:
    """Measured sort-merge join with backing-up."""
    run = sort_merge_join(
        r,
        s,
        memory_pages,
        page_spec=config.page_spec(r.schema.tuple_bytes),
        collect_result=config.collect_result,
    )
    tracker = run.layout.tracker
    return RunCost(
        algorithm="sort_merge",
        cost=tracker.stats.cost(cost_model),
        phase_costs=tracker.breakdown(cost_model),
        detail={
            "memory_case": run.memory_case,
            "backup_page_reads": run.backup_page_reads,
            "n_result_tuples": run.n_result_tuples,
        },
    )


def run_nested_loop_analytic(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    memory_pages: int,
    cost_model: CostModel,
    config: ExperimentConfig,
) -> RunCost:
    """Closed-form nested-loop cost (the paper's analytical baseline)."""
    spec = config.page_spec(r.schema.tuple_bytes)
    cost = nested_loop_cost(
        spec.pages_for_tuples(len(r)),
        spec.pages_for_tuples(len(s)),
        memory_pages,
        cost_model,
    )
    return RunCost(algorithm="nested_loop", cost=cost)


def run_nested_loop_simulated(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    memory_pages: int,
    cost_model: CostModel,
    config: ExperimentConfig,
) -> RunCost:
    """Simulated nested loops (validates the analytical formula)."""
    run = nested_loop_join(
        r,
        s,
        memory_pages,
        page_spec=config.page_spec(r.schema.tuple_bytes),
        collect_result=config.collect_result,
    )
    tracker = run.layout.tracker
    return RunCost(
        algorithm="nested_loop_sim",
        cost=tracker.stats.cost(cost_model),
        phase_costs=tracker.breakdown(cost_model),
        detail={"n_outer_blocks": run.n_outer_blocks},
    )
