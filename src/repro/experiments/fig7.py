"""Figure 7 (Section 4.3): evaluation cost vs long-lived tuple density.

Databases of 262 144 tuples with 8 000 to 128 000 long-lived tuples in
8 000-tuple steps; long-lived tuples start uniformly in the first half of
the lifespan and last half of it.  Memory is fixed at 8 MiB ("the memory
size at which all three algorithms performed most closely" in Figure 6) and
the cost ratio at 5:1.

Paper observations the shape checks encode:

* the partition join outperforms sort-merge at every density;
* sort-merge cost grows substantially with density (backing-up), while the
  partition join's grows only mildly (cheap tuple-cache appends);
* nested-loops is flat ("long-lived tuples do not affect [its]
  performance").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_algorithm
from repro.storage.iostats import CostModel
from repro.workloads.specs import fig7_spec

#: The paper's density sweep: total long-lived tuples in the database.
LONG_LIVED_SWEEP: Tuple[int, ...] = tuple(range(8_000, 128_001, 8_000))
FIXED_MEMORY_MB: float = 8
FIXED_RATIO: float = 5
ALGORITHMS: Tuple[str, ...] = ("partition", "sort_merge", "nested_loop")


@dataclass
class Fig7Point:
    """One measured point: an algorithm at one long-lived density."""

    long_lived_total: int
    algorithm: str
    cost: float
    detail: Dict[str, object]


def run_fig7(
    config: ExperimentConfig,
    *,
    long_lived_totals: Sequence[int] = LONG_LIVED_SWEEP,
    memory_mb: float = FIXED_MEMORY_MB,
    ratio: float = FIXED_RATIO,
    algorithms: Sequence[str] = ALGORITHMS,
) -> List[Fig7Point]:
    """Regenerate the Figure 7 sweep at the configured scale."""
    pages = config.memory_pages(memory_mb)
    model = CostModel.with_ratio(ratio)
    points: List[Fig7Point] = []
    for total in long_lived_totals:
        r, s = config.database(fig7_spec(total))
        for algorithm in algorithms:
            run = run_algorithm(algorithm, r, s, pages, model, config)
            points.append(
                Fig7Point(
                    long_lived_total=total,
                    algorithm=algorithm,
                    cost=run.cost,
                    detail=run.detail,
                )
            )
    return points


def shape_checks(points: List[Fig7Point]) -> List[str]:
    """Deviations from the paper's Figure 7 claims (empty = all good)."""
    problems: List[str] = []
    by_key: Dict[Tuple[int, str], float] = {
        (p.long_lived_total, p.algorithm): p.cost for p in points
    }
    totals = sorted({p.long_lived_total for p in points})
    algorithms = {p.algorithm for p in points}

    if {"partition", "sort_merge"} <= algorithms:
        for total in totals:
            partition = by_key[(total, "partition")]
            sort_merge = by_key[(total, "sort_merge")]
            if partition >= sort_merge:
                problems.append(
                    f"partition ({partition:.0f}) not below sort-merge "
                    f"({sort_merge:.0f}) at {total} long-lived tuples"
                )
        if len(totals) > 1:
            growth_sm = by_key[(totals[-1], "sort_merge")] - by_key[(totals[0], "sort_merge")]
            growth_pj = by_key[(totals[-1], "partition")] - by_key[(totals[0], "partition")]
            if growth_sm <= 0:
                problems.append("sort-merge cost did not grow with long-lived density")
            if growth_pj > growth_sm:
                problems.append(
                    f"partition join's growth ({growth_pj:.0f}) exceeded "
                    f"sort-merge's ({growth_sm:.0f})"
                )
    if "nested_loop" in algorithms and len(totals) > 1:
        nl_costs = [by_key[(total, "nested_loop")] for total in totals]
        if max(nl_costs) - min(nl_costs) > 1e-6:
            problems.append("nested-loops cost varied with long-lived density")
    return problems
