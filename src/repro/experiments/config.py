"""Experiment configuration: paper parameters plus uniform scaling.

Paper-scale databases (131 072 tuples per relation) are supported but slow
in pure Python, so every experiment takes an :class:`ExperimentConfig`
whose ``scale`` divides tuple counts, long-lived counts, object counts, and
memory sizes together -- preserving every ratio the paper varies (memory /
database size, long-lived density, random:sequential cost).  EXPERIMENTS.md
records the scale used for each reported run.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from repro.model.relation import ValidTimeRelation
from repro.storage.page import PageSpec
from repro.workloads.generator import generate_pair
from repro.workloads.specs import DatabaseSpec


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs of every experiment run.

    Attributes:
        scale: integer divisor applied to database and memory sizes
            (1 = paper scale; the test suite uses 64, the benches 8).
        page_bytes: disk page size.
        max_plan_candidates: planner candidate-grid size.
        collect_result: materialize join results (experiments measure cost;
            correctness is covered by the test suite, so default off).
    """

    scale: int = 16
    page_bytes: int = 1024
    max_plan_candidates: int = 48
    collect_result: bool = False

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ValueError(f"scale must be >= 1, got {self.scale}")

    def page_spec(self, tuple_bytes: int = 128) -> PageSpec:
        return PageSpec(page_bytes=self.page_bytes, tuple_bytes=tuple_bytes)

    def memory_pages(self, memory_mb: float) -> int:
        """Buffer pages for a *paper-scale* memory size, after scaling."""
        pages = int(memory_mb * 1024 * 1024) // self.scale // self.page_bytes
        if pages < 4:
            raise ValueError(
                f"{memory_mb} MiB at scale {self.scale} leaves only {pages} pages; "
                f"use a smaller scale"
            )
        return pages

    def database(self, spec: DatabaseSpec) -> Tuple[ValidTimeRelation, ValidTimeRelation]:
        """The scaled database for *spec* (cached across runs)."""
        return _cached_pair(spec.scaled(self.scale))


@lru_cache(maxsize=32)
def _cached_pair(spec: DatabaseSpec) -> Tuple[ValidTimeRelation, ValidTimeRelation]:
    return generate_pair(spec)
