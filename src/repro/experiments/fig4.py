"""Figure 4: the sampling vs tuple-cache-paging cost trade-off.

Section 3.4 argues the planner's central trade-off: growing the expected
partition size ``partSize`` shrinks the error space, demanding more samples
(``C_sample`` rises monotonically), while larger partitions mean fewer
long-lived tuples span partition boundaries (the tuple-cache component of
``C_join`` falls monotonically).  Figure 4 plots both curves and their sum,
whose minimum the planner selects.

Running the planner on a long-lived database and exporting its per-candidate
cost curve regenerates the figure directly -- the curve *is* the planner's
search trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.core.planner import CandidateCost, determine_part_intervals
from repro.experiments.config import ExperimentConfig
from repro.storage.buffer import JoinBufferAllocation
from repro.storage.iostats import CostModel
from repro.storage.layout import DiskLayout
from repro.workloads.specs import fig7_spec


@dataclass
class Fig4Result:
    """The planner's cost curve plus the chosen operating point."""

    curve: List[CandidateCost]
    chosen_part_size: int
    buff_size: int

    def series(self) -> List[tuple]:
        """Rows (part_size, c_sample, c_cache, total) for plotting/printing."""
        return [
            (point.part_size, point.c_sample, point.c_join_cache, point.total)
            for point in self.curve
        ]


def run_fig4(
    config: ExperimentConfig,
    *,
    long_lived_total: int = 64_000,
    memory_mb: float = 8,
    ratio: float = 5,
    allow_scan_sampling: bool = False,
) -> Fig4Result:
    """Regenerate the Figure 4 curve.

    Sampling-cost capping (the Section 4.2 scan optimization) is off by
    default here: Figure 4 illustrates the raw trade-off, and with the cap
    the ``C_sample`` curve flattens at the scan cost instead of growing
    without bound.
    """
    r, s = config.database(fig7_spec(long_lived_total))
    layout = DiskLayout(spec=config.page_spec(r.schema.tuple_bytes))
    r_file = layout.place_relation(r)
    allocation = JoinBufferAllocation(config.memory_pages(memory_mb))
    plan = determine_part_intervals(
        allocation.buff_size,
        r_file,
        inner_tuples=len(s),
        cost_model=CostModel.with_ratio(ratio),
        rng=random.Random(0x4F16),
        allow_scan_sampling=allow_scan_sampling,
        max_candidates=config.max_plan_candidates,
        prune=False,
    )
    return Fig4Result(
        curve=plan.curve,
        chosen_part_size=plan.part_size,
        buff_size=allocation.buff_size,
    )


def shape_checks(result: Fig4Result) -> List[str]:
    """Deviations from the paper's Figure 4 shape (empty = all good).

    Checks: ``C_sample`` is non-decreasing in partition size, the
    tuple-cache cost is non-increasing, and the chosen point minimizes the
    total.
    """
    problems: List[str] = []
    curve = result.curve
    for earlier, later in zip(curve, curve[1:]):
        if later.c_sample < earlier.c_sample - 1e-9:
            problems.append(
                f"C_sample fell from {earlier.c_sample} to {later.c_sample} "
                f"between partSize {earlier.part_size} and {later.part_size}"
            )
    # The cache curve is estimated from samples, so check the trend rather
    # than strict pointwise monotonicity: the final (largest-partition)
    # cache cost must be below the initial one.
    if curve[-1].c_join_cache > curve[0].c_join_cache + 1e-9:
        problems.append(
            f"tuple-cache cost did not fall across the sweep: "
            f"{curve[0].c_join_cache} -> {curve[-1].c_join_cache}"
        )
    best = min(point.total for point in curve)
    chosen = next(p for p in curve if p.part_size == result.chosen_part_size)
    if chosen.total > best + 1e-9:
        problems.append(
            f"chosen partSize {chosen.part_size} has total {chosen.total}, "
            f"curve minimum is {best}"
        )
    return problems
