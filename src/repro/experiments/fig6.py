"""Figure 6 (Section 4.2): evaluation cost vs main memory size.

The database holds 262 144 instantaneous tuples uniformly spread over the
lifespan (no long-lived tuples, so neither tuple-cache paging nor
backing-up occurs).  Main memory sweeps 1-32 MiB (log-scaled x-axis in the
paper) and the random:sequential cost ratio takes 2:1, 5:1, and 10:1; each
(algorithm, ratio) combination is one curve.

Paper observations the shape checks encode:

* the partition join "shows relatively good performance at all memory
  sizes" and improves with memory;
* it beats sort-merge at every memory size;
* nested-loops is by far the worst at 1 MiB and competitive at 32 MiB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import RunCost, run_algorithm
from repro.storage.iostats import CostModel
from repro.workloads.specs import fig6_spec

#: The paper's sweep values.
MEMORY_SWEEP_MB: Tuple[float, ...] = (1, 2, 4, 8, 16, 32)
RATIOS: Tuple[float, ...] = (2, 5, 10)
ALGORITHMS: Tuple[str, ...] = ("partition", "sort_merge", "nested_loop")


@dataclass
class Fig6Point:
    """One measured point: an algorithm at one memory size and cost ratio."""

    memory_mb: float
    ratio: float
    algorithm: str
    cost: float
    detail: Dict[str, object]
    memory_pages: int = 0
    relation_pages: int = 0


def run_fig6(
    config: ExperimentConfig,
    *,
    memory_mb: Sequence[float] = MEMORY_SWEEP_MB,
    ratios: Sequence[float] = RATIOS,
    algorithms: Sequence[str] = ALGORITHMS,
) -> List[Fig6Point]:
    """Regenerate the Figure 6 sweep at the configured scale."""
    r, s = config.database(fig6_spec())
    relation_pages = config.page_spec(r.schema.tuple_bytes).pages_for_tuples(len(r))
    points: List[Fig6Point] = []
    for mb in memory_mb:
        pages = config.memory_pages(mb)
        for ratio in ratios:
            model = CostModel.with_ratio(ratio)
            for algorithm in algorithms:
                run: RunCost = run_algorithm(algorithm, r, s, pages, model, config)
                points.append(
                    Fig6Point(
                        memory_mb=mb,
                        ratio=ratio,
                        algorithm=algorithm,
                        cost=run.cost,
                        detail=run.detail,
                        memory_pages=pages,
                        relation_pages=relation_pages,
                    )
                )
    return points


def shape_checks(points: List[Fig6Point]) -> List[str]:
    """Deviations from the paper's Figure 6 claims (empty = all good)."""
    problems: List[str] = []
    by_key: Dict[Tuple[float, float, str], float] = {
        (p.memory_mb, p.ratio, p.algorithm): p.cost for p in points
    }
    memories = sorted({p.memory_mb for p in points})
    ratios = sorted({p.ratio for p in points})
    algorithms = {p.algorithm for p in points}

    pages_of: Dict[float, Tuple[int, int]] = {
        p.memory_mb: (p.memory_pages, p.relation_pages) for p in points
    }
    if {"partition", "sort_merge"} <= algorithms:
        for mb in memories:
            memory_pages, relation_pages = pages_of[mb]
            for ratio in ratios:
                partition = by_key[(mb, ratio, "partition")]
                sort_merge = by_key[(mb, ratio, "sort_merge")]
                if memory_pages < relation_pages:
                    # Relation exceeds memory: the paper's regime, where the
                    # partition join must win outright.
                    if partition >= sort_merge:
                        problems.append(
                            f"partition ({partition:.0f}) not below sort-merge "
                            f"({sort_merge:.0f}) at {mb} MiB, ratio {ratio}:1"
                        )
                elif partition > sort_merge * 4 / 3:
                    # Memory at or above a relation's size: our sort-merge
                    # exploits single-run sorting (a charitable baseline the
                    # paper's implementation did not have) and both
                    # algorithms converge toward a few linear scans.
                    # Exactly at the boundary the partition join still pays
                    # its sampling pass -- structurally at most one extra
                    # pass over sort-merge's three, hence the 4/3 bound.
                    # Above the boundary the single-partition shortcut
                    # removes even that.
                    problems.append(
                        f"partition ({partition:.0f}) above converged sort-merge "
                        f"({sort_merge:.0f}) by >4/3 at {mb} MiB, ratio {ratio}:1"
                    )
    if "nested_loop" in algorithms and len(memories) > 1:
        for ratio in ratios:
            small = by_key[(memories[0], ratio, "nested_loop")]
            large = by_key[(memories[-1], ratio, "nested_loop")]
            if small <= large:
                problems.append(
                    f"nested-loops did not improve with memory at ratio {ratio}:1"
                )
            if "partition" in algorithms:
                partition_small = by_key[(memories[0], ratio, "partition")]
                if small <= partition_small:
                    problems.append(
                        f"nested-loops ({small:.0f}) not worst at {memories[0]} MiB, "
                        f"ratio {ratio}:1 (partition {partition_small:.0f})"
                    )
    if "partition" in algorithms and len(memories) > 1:
        for ratio in ratios:
            first = by_key[(memories[0], ratio, "partition")]
            last = by_key[(memories[-1], ratio, "partition")]
            if last > first:
                problems.append(
                    f"partition join cost rose with memory at ratio {ratio}:1"
                )
    return problems
