"""Figure 8 (Section 4.4): main memory vs long-lived density, partition join.

Eight databases with 16 000 to 128 000 long-lived tuples (16 000-tuple
steps) are each evaluated at 1, 2, 4, 16, and 32 MiB of memory.  The paper
concludes: "at large memory sizes (16 and 32 megabytes) the evaluation cost
for all databases becomes fairly equal ... At smaller memory sizes, there
is a more pronounced difference" -- memory availability dominates tuple
caching, so the density curves converge as memory grows.

The shape checks encode exactly that: the cost spread across densities at
the smallest memory exceeds the spread at the largest, and each density's
cost falls with memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_algorithm
from repro.storage.iostats import CostModel
from repro.workloads.specs import fig8_spec

#: The paper's grids.
LONG_LIVED_SWEEP: Tuple[int, ...] = tuple(range(16_000, 128_001, 16_000))
MEMORY_SWEEP_MB: Tuple[float, ...] = (1, 2, 4, 16, 32)
FIXED_RATIO: float = 5


@dataclass
class Fig8Point:
    """Partition-join cost at one (memory, long-lived density) grid cell."""

    memory_mb: float
    long_lived_total: int
    cost: float
    detail: Dict[str, object]


def run_fig8(
    config: ExperimentConfig,
    *,
    long_lived_totals: Sequence[int] = LONG_LIVED_SWEEP,
    memory_mb: Sequence[float] = MEMORY_SWEEP_MB,
    ratio: float = FIXED_RATIO,
) -> List[Fig8Point]:
    """Regenerate the Figure 8 grid at the configured scale."""
    model = CostModel.with_ratio(ratio)
    points: List[Fig8Point] = []
    for total in long_lived_totals:
        r, s = config.database(fig8_spec(total))
        for mb in memory_mb:
            run = run_algorithm(
                "partition", r, s, config.memory_pages(mb), model, config
            )
            points.append(
                Fig8Point(
                    memory_mb=mb,
                    long_lived_total=total,
                    cost=run.cost,
                    detail=run.detail,
                )
            )
    return points


def shape_checks(points: List[Fig8Point]) -> List[str]:
    """Deviations from the paper's Figure 8 claims (empty = all good)."""
    problems: List[str] = []
    by_key: Dict[Tuple[float, int], float] = {
        (p.memory_mb, p.long_lived_total): p.cost for p in points
    }
    memories = sorted({p.memory_mb for p in points})
    totals = sorted({p.long_lived_total for p in points})
    if len(memories) < 2 or len(totals) < 2:
        return problems

    def spread(mb: float) -> float:
        costs = [by_key[(mb, total)] for total in totals]
        return max(costs) - min(costs)

    if spread(memories[0]) <= spread(memories[-1]):
        problems.append(
            f"density spread at {memories[0]} MiB ({spread(memories[0]):.0f}) "
            f"not above spread at {memories[-1]} MiB ({spread(memories[-1]):.0f})"
        )
    for total in totals:
        first = by_key[(memories[0], total)]
        last = by_key[(memories[-1], total)]
        if last > first:
            problems.append(
                f"cost rose with memory for {total} long-lived tuples "
                f"({first:.0f} -> {last:.0f})"
            )
    return problems
