"""Plain-text reporting: parameter tables, result tables, series.

The benches print through these helpers so a run's output reads like the
paper's tables: one row per measured point, aligned columns, and explicit
shape-check verdicts underneath.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.workloads.specs import PAPER_PARAMETERS


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.0f}"
    return str(value)


def parameter_table() -> str:
    """The reconstructed Figure 5 global parameter table."""
    rows = [(name, value) for name, value in PAPER_PARAMETERS.items()]
    return format_table(("parameter", "value"), rows)


def verdict_lines(title: str, problems: List[str]) -> str:
    """Shape-check verdict block for a figure reproduction."""
    if not problems:
        return f"[{title}] shape checks: all paper claims hold"
    lines = [f"[{title}] shape checks: {len(problems)} deviation(s)"]
    lines.extend(f"  - {problem}" for problem in problems)
    return "\n".join(lines)


def crossover(
    xs: Sequence[float], series_a: Sequence[float], series_b: Sequence[float]
) -> float | None:
    """x-coordinate where series A crosses below series B (None if never).

    Linear interpolation between sweep points; used to report where
    nested-loops overtakes the other algorithms as memory grows.
    """
    if len(xs) != len(series_a) or len(xs) != len(series_b):
        raise ValueError("series must align with the x values")
    for i in range(1, len(xs)):
        before = series_a[i - 1] - series_b[i - 1]
        after = series_a[i] - series_b[i]
        if before > 0 >= after:
            if before == after:
                return xs[i]
            fraction = before / (before - after)
            return xs[i - 1] + fraction * (xs[i] - xs[i - 1])
    return None
