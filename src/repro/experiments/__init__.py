"""The paper's evaluation, reproduced: Figures 4, 6, 7, and 8.

* :mod:`repro.experiments.config` -- experiment configuration and scaling.
* :mod:`repro.experiments.runner` -- one-call execution of each algorithm
  under a configuration, returning weighted costs.
* :mod:`repro.experiments.fig4` -- the sampling vs tuple-cache cost curve.
* :mod:`repro.experiments.fig6` -- evaluation cost vs main memory, three
  algorithms x three random:sequential ratios (Section 4.2).
* :mod:`repro.experiments.fig7` -- evaluation cost vs long-lived tuple
  density at fixed memory (Section 4.3).
* :mod:`repro.experiments.fig8` -- memory x long-lived density grid for the
  partition join (Section 4.4).
* :mod:`repro.experiments.report` -- ASCII tables and shape checks.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import RunCost, run_algorithm
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.report import format_table, parameter_table
from repro.experiments.export import (
    export_fig4,
    export_fig6,
    export_fig7,
    export_fig8,
)

__all__ = [
    "export_fig4",
    "export_fig6",
    "export_fig7",
    "export_fig8",
    "ExperimentConfig",
    "RunCost",
    "run_algorithm",
    "run_fig4",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "format_table",
    "parameter_table",
]
