"""Event-join and TE-outerjoin [SG89].

Segev and Gunadhi introduced these operators to merge the attribute
histories of two relations describing the same entities:

* **TE-outerjoin** -- the TE-join (valid-time natural join) extended with
  the *unmatched* validity of the left operand: for each tuple ``x`` of
  ``r``, the maximal sub-intervals of ``x[V]`` covered by no matching
  ``s``-tuple appear in the result with the ``s`` payload null.
* **Event-join** -- the symmetric closure: TE-join plus the unmatched
  validity of both operands.  The result is the complete merged history of
  each entity, with nulls where only one relation has information.

Nulls are represented by ``None`` in the payload positions.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import VTTuple
from repro.time.intervalset import subtract


def te_outerjoin(r: ValidTimeRelation, s: ValidTimeRelation) -> ValidTimeRelation:
    """TE-join of ``r`` and ``s`` plus the unmatched validity of ``r``."""
    result_schema = r.schema.join_result_schema(s.schema)
    result = ValidTimeRelation(result_schema)
    s_by_key = s.group_by_key()
    n_s_payload = len(s.schema.payload_attributes)
    _add_matches_and_left_pads(r, s_by_key, n_s_payload, result, pad_right=True)
    return result


def event_join(r: ValidTimeRelation, s: ValidTimeRelation) -> ValidTimeRelation:
    """Symmetric merge of histories: TE-join plus both sides' unmatched validity."""
    result_schema = r.schema.join_result_schema(s.schema)
    result = ValidTimeRelation(result_schema)
    s_by_key = s.group_by_key()
    n_s_payload = len(s.schema.payload_attributes)
    _add_matches_and_left_pads(r, s_by_key, n_s_payload, result, pad_right=True)

    # Unmatched validity of s: pad the r payload positions with nulls.
    r_by_key = r.group_by_key()
    n_r_payload = len(r.schema.payload_attributes)
    for key, s_tuples in s_by_key.items():
        r_tuples = r_by_key.get(key, [])
        for y in s_tuples:
            covered = [
                x.valid.intersect(y.valid)
                for x in r_tuples
                if x.valid.overlaps(y.valid)
            ]
            for gap in subtract(y.valid, [c for c in covered if c is not None]):
                result.add(VTTuple(key, (None,) * n_r_payload + y.payload, gap))
    return result


def _add_matches_and_left_pads(
    r: ValidTimeRelation,
    s_by_key: Dict[Tuple, List[VTTuple]],
    n_s_payload: int,
    result: ValidTimeRelation,
    *,
    pad_right: bool,
) -> None:
    """Emit TE-join matches and, per r-tuple, null-padded unmatched gaps."""
    for x in r:
        matches = s_by_key.get(x.key, [])
        covered = []
        for y in matches:
            common = x.valid.intersect(y.valid)
            if common is None:
                continue
            covered.append(common)
            result.add(VTTuple(x.key, x.payload + y.payload, common))
        if pad_right:
            for gap in subtract(x.valid, covered):
                result.add(VTTuple(x.key, x.payload + (None,) * n_s_payload, gap))
