"""Joins qualified by Allen interval predicates [LM90, LM92a].

Leung and Muntz generalized temporal joins to arbitrary predicates over the
tuples' intervals, "mainly those defined by Allen [All83]".  This module
provides the named variants the paper's related-work section lists --
overlap-join, contain-join, intersect-join, contain-semijoin -- plus a
generic :func:`allen_join` taking any set of Allen relations.

All variants here match on the explicit join attributes *and* the interval
predicate, mirroring how the valid-time natural join refines the snapshot
natural join.  The result timestamp policy differs per operator:

* intersect-join / overlap-join -- the intersection (as in the natural join);
* contain-join -- the contained (right) tuple's interval;
* contain-semijoin -- the left tuple, unchanged.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import VTTuple
from repro.time.allen import AllenRelation, relate


def allen_join(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    relations: Iterable[AllenRelation],
    *,
    timestamp: str = "intersection",
) -> ValidTimeRelation:
    """Generic Allen-predicate join.

    Args:
        r: left operand.
        s: right operand (must be join-compatible with *r*).
        relations: accepted Allen relations of ``relate(x[V], y[V])``.
        timestamp: result timestamp policy -- ``"intersection"`` (requires
            every accepted relation to imply intersection), ``"left"``, or
            ``"right"``.
    """
    wanted: FrozenSet[AllenRelation] = frozenset(relations)
    if timestamp not in ("intersection", "left", "right"):
        raise ValueError(f"unknown timestamp policy {timestamp!r}")
    if timestamp == "intersection":
        non_intersecting = [rel for rel in wanted if not rel.intersects]
        if non_intersecting:
            raise ValueError(
                f"intersection timestamps undefined for {sorted(r.value for r in non_intersecting)}"
            )
    result_schema = r.schema.join_result_schema(s.schema)
    result = ValidTimeRelation(result_schema)
    s_by_key = s.group_by_key()
    for x in r:
        for y in s_by_key.get(x.key, ()):
            if relate(x.valid, y.valid) not in wanted:
                continue
            if timestamp == "intersection":
                stamp = x.valid.intersect(y.valid)
                if stamp is None:
                    continue
            elif timestamp == "left":
                stamp = x.valid
            else:
                stamp = y.valid
            result.add(VTTuple(x.key, x.payload + y.payload, stamp))
    return result


#: Allen relations implying the intervals share at least one chronon.
INTERSECTING_RELATIONS = frozenset(rel for rel in AllenRelation if rel.intersects)

#: Strict-overlap relations: proper partial overlap only.
OVERLAP_RELATIONS = frozenset(
    {AllenRelation.OVERLAPS, AllenRelation.OVERLAPPED_BY}
)

#: Relations in which the left interval contains the right one.
CONTAIN_RELATIONS = frozenset(
    {
        AllenRelation.CONTAINS,
        AllenRelation.STARTED_BY,
        AllenRelation.FINISHED_BY,
        AllenRelation.EQUAL,
    }
)


def intersect_join(r: ValidTimeRelation, s: ValidTimeRelation) -> ValidTimeRelation:
    """Pairs whose intervals share a chronon; semantically the natural join."""
    return allen_join(r, s, INTERSECTING_RELATIONS, timestamp="intersection")


def overlap_join(r: ValidTimeRelation, s: ValidTimeRelation) -> ValidTimeRelation:
    """Pairs in strict partial overlap (Allen *overlaps* either way)."""
    return allen_join(r, s, OVERLAP_RELATIONS, timestamp="intersection")


def contain_join(r: ValidTimeRelation, s: ValidTimeRelation) -> ValidTimeRelation:
    """Pairs where ``x[V]`` contains ``y[V]``; stamped with the contained interval."""
    return allen_join(r, s, CONTAIN_RELATIONS, timestamp="right")


def contain_semijoin(r: ValidTimeRelation, s: ValidTimeRelation) -> ValidTimeRelation:
    """Tuples of ``r`` whose interval contains some matching ``s`` tuple's.

    A semijoin: the result schema and timestamps are those of ``r``; each
    qualifying tuple appears once regardless of how many witnesses it has.
    """
    result = ValidTimeRelation(r.schema)
    s_by_key = s.group_by_key()
    for x in r:
        witnesses = s_by_key.get(x.key, ())
        if any(relate(x.valid, y.valid) in CONTAIN_RELATIONS for y in witnesses):
            result.add(x)
    return result
