"""Partition-based evaluation of the pure time-join (no key predicate).

The T-join pairs tuples purely on interval overlap, so temporal
partitioning is the *natural* access path for it: overlapping tuples
always share a partition.  Evaluation reuses the full partition-join
pipeline by rekeying both inputs to a single synthetic key (every tuple
can match every other, which is exactly the T-join's predicate) and
unpacking the original attributes from the payload afterwards.
"""

from __future__ import annotations

from repro.core.partition_join import (
    PartitionJoinConfig,
    PartitionJoinResult,
    partition_join,
)
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple


def partitioned_time_join(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    config: PartitionJoinConfig,
) -> ValidTimeRelation:
    """Evaluate the T-join of *r* and *s* with the partition framework.

    Returns a relation shaped like :func:`repro.variants.time_join.time_join`
    (both sides' explicit attributes as payload, overlap timestamps), so the
    two evaluations are directly comparable.
    """
    rekeyed_r = _rekey(r, "tr")
    rekeyed_s = _rekey(s, "ts")
    run: PartitionJoinResult = partition_join(rekeyed_r, rekeyed_s, config)
    assert run.result is not None

    result_schema = RelationSchema(
        name=f"{r.schema.name}_tjoin_{s.schema.name}",
        join_attributes=("_t",),
        payload_attributes=tuple(f"r_{a}" for a in r.schema.attributes)
        + tuple(f"s_{a}" for a in s.schema.attributes),
        tuple_bytes=r.schema.tuple_bytes + s.schema.tuple_bytes,
    )
    result = ValidTimeRelation(result_schema)
    for tup in run.result:
        result.add(VTTuple(("t",), tup.payload, tup.valid))
    return result


def _rekey(relation: ValidTimeRelation, tag: str) -> ValidTimeRelation:
    """Collapse every tuple onto one synthetic key; attributes move to payload."""
    schema = RelationSchema(
        name=f"{relation.schema.name}_{tag}",
        join_attributes=("_t",),
        payload_attributes=tuple(
            f"{tag}_{a}" for a in relation.schema.attributes
        ),
        tuple_bytes=relation.schema.tuple_bytes,
    )
    rekeyed = ValidTimeRelation(schema)
    for tup in relation:
        rekeyed.add(VTTuple(("t",), tup.key + tup.payload, tup.valid))
    return rekeyed
