"""Valid-time natural outerjoins.

The temporal generalization of the familiar left/right/full outerjoins:
unmatched *validity* -- not just unmatched tuples -- is preserved.  A tuple
matched during part of its interval still contributes null-padded result
tuples for the remainder, so for every chronon ``t`` the timeslice of the
outerjoin equals the snapshot outerjoin of the timeslices (the
snapshot-reducibility property the tests check).
"""

from __future__ import annotations

from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import VTTuple
from repro.time.intervalset import subtract


def valid_time_outerjoin(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    *,
    keep_left: bool = True,
    keep_right: bool = False,
) -> ValidTimeRelation:
    """Valid-time natural outerjoin of *r* and *s*.

    Args:
        r: left operand.
        s: right operand.
        keep_left: preserve unmatched validity of ``r`` (left outerjoin).
        keep_right: preserve unmatched validity of ``s`` (right outerjoin).
            Setting both gives the full outerjoin; clearing both degenerates
            to the inner valid-time natural join.
    """
    result_schema = r.schema.join_result_schema(s.schema)
    result = ValidTimeRelation(result_schema)
    s_by_key = s.group_by_key()
    r_by_key = r.group_by_key()
    n_r_payload = len(r.schema.payload_attributes)
    n_s_payload = len(s.schema.payload_attributes)

    for x in r:
        covered = []
        for y in s_by_key.get(x.key, ()):
            common = x.valid.intersect(y.valid)
            if common is None:
                continue
            covered.append(common)
            result.add(VTTuple(x.key, x.payload + y.payload, common))
        if keep_left:
            for gap in subtract(x.valid, covered):
                result.add(VTTuple(x.key, x.payload + (None,) * n_s_payload, gap))

    if keep_right:
        for key, s_tuples in s_by_key.items():
            r_tuples = r_by_key.get(key, ())
            for y in s_tuples:
                covered = [
                    x.valid.intersect(y.valid)
                    for x in r_tuples
                    if x.valid.overlaps(y.valid)
                ]
                for gap in subtract(y.valid, [c for c in covered if c is not None]):
                    result.add(VTTuple(key, (None,) * n_r_payload + y.payload, gap))
    return result
