"""Streamed (I/O-costed) evaluation of the TE-outerjoin [SG89].

The in-memory TE-outerjoin (:mod:`repro.variants.event_join`) defines the
semantics; this evaluator computes it over the simulated disk with the
sort-merge machinery, so the operator family Segev and Gunadhi built their
nested-loop refinements for has a measured evaluation here too.

Algorithm: both inputs are externally sorted on valid-time start and
merged.  Live tuples carry in memory as in the sort-merge natural join;
additionally every left tuple accumulates the sub-intervals its matches
covered.  When a left tuple *retires* -- the merge cursor has passed its
end chronon, so no future right tuple can overlap it -- its uncovered
validity is final and the null-padded gap tuples are emitted.  Costs:
two external sorts plus the linear merge (the natural-join matching's
backing-up model is not replicated here; outer-join gap bookkeeping is
in-memory state, like the carry sets).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.external_sort import external_sort
from repro.model.errors import PlanError
from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import VTTuple
from repro.storage.heapfile import HeapFile
from repro.storage.layout import Device, DiskLayout
from repro.storage.page import PageSpec
from repro.time.intervalset import subtract


@dataclass
class StreamedOuterjoinResult:
    """Result and cost carrier of a streamed TE-outerjoin run."""

    result: ValidTimeRelation
    n_matched: int
    n_padded: int
    layout: DiskLayout


class _LeftEntry:
    __slots__ = ("tup", "covered", "retired")

    def __init__(self, tup: VTTuple) -> None:
        self.tup = tup
        self.covered: List = []
        self.retired = False


class _RightEntry:
    __slots__ = ("tup", "retired")

    def __init__(self, tup: VTTuple) -> None:
        self.tup = tup
        self.retired = False


def streamed_te_outerjoin(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    memory_pages: int,
    *,
    page_spec: Optional[PageSpec] = None,
    layout: Optional[DiskLayout] = None,
) -> StreamedOuterjoinResult:
    """Evaluate the TE-outerjoin of *r* and *s* over the simulated disk."""
    if memory_pages < 4:
        raise PlanError(f"streamed outerjoin needs >= 4 buffer pages, got {memory_pages}")
    result_schema = r.schema.join_result_schema(s.schema)
    if layout is None:
        layout = DiskLayout(spec=page_spec if page_spec is not None else PageSpec())
    n_s_payload = len(s.schema.payload_attributes)

    r_file = layout.place_relation(r)
    s_file = layout.place_relation(s)
    with layout.tracker.phase("sort"):
        r_sorted = external_sort(
            r_file, layout, memory_pages, name="oj_r",
            devices=(Device.SCRATCH_A, Device.SCRATCH_B),
        )
        layout.disk.park_heads()
        s_sorted = external_sort(
            s_file, layout, memory_pages, name="oj_s",
            devices=(Device.SCRATCH_C, Device.SCRATCH_D),
        )
    layout.disk.park_heads()

    result = ValidTimeRelation(result_schema)
    result_file = layout.result_file("oj_result")
    n_matched = 0
    n_padded = 0

    def emit(tup: VTTuple) -> None:
        layout.write_result(result_file, tup)
        result.add(tup)

    def finalize_left(entry: _LeftEntry) -> None:
        nonlocal n_padded
        for gap in subtract(entry.tup.valid, entry.covered):
            n_padded += 1
            emit(
                VTTuple(
                    entry.tup.key,
                    entry.tup.payload + (None,) * n_s_payload,
                    gap,
                )
            )

    with layout.tracker.phase("match"):
        left_by_key: Dict[Tuple, List[_LeftEntry]] = {}
        right_by_key: Dict[Tuple, List[_RightEntry]] = {}
        left_heap: List[Tuple[int, int, _LeftEntry]] = []
        right_heap: List[Tuple[int, int, _RightEntry]] = []
        counter = 0

        def retire(min_vs: int) -> None:
            while left_heap and left_heap[0][0] < min_vs:
                _, _, entry = heapq.heappop(left_heap)
                entry.retired = True
                finalize_left(entry)
            while right_heap and right_heap[0][0] < min_vs:
                _, _, entry = heapq.heappop(right_heap)
                entry.retired = True

        def match(x_entry: _LeftEntry, y: VTTuple) -> None:
            nonlocal n_matched
            common = x_entry.tup.valid.intersect(y.valid)
            if common is None:
                return
            x_entry.covered.append(common)
            n_matched += 1
            emit(VTTuple(x_entry.tup.key, x_entry.tup.payload + y.payload, common))

        r_stream = _PageCursor(r_sorted)
        s_stream = _PageCursor(s_sorted)
        while True:
            x = r_stream.peek()
            y = s_stream.peek()
            if x is None and y is None:
                break
            take_left = y is None or (x is not None and x.vs <= y.vs)
            if take_left:
                tup = r_stream.take()
                retire(tup.vs)
                entry = _LeftEntry(tup)
                counter += 1
                heapq.heappush(left_heap, (tup.ve, counter, entry))
                left_by_key.setdefault(tup.key, []).append(entry)
                for y_entry in right_by_key.get(tup.key, ()):  # y.vs <= x.vs
                    if not y_entry.retired:
                        match(entry, y_entry.tup)
            else:
                tup = s_stream.take()
                retire(tup.vs)
                entry = _RightEntry(tup)
                counter += 1
                heapq.heappush(right_heap, (tup.ve, counter, entry))
                right_by_key.setdefault(tup.key, []).append(entry)
                for x_entry in left_by_key.get(tup.key, ()):  # x.vs <= y.vs
                    if not x_entry.retired and x_entry.tup.vs <= tup.vs:
                        match(x_entry, tup)
        # End of both streams: every still-live left tuple finalizes.
        while left_heap:
            _, _, entry = heapq.heappop(left_heap)
            if not entry.retired:
                entry.retired = True
                finalize_left(entry)

    result_file.flush()
    return StreamedOuterjoinResult(
        result=result, n_matched=n_matched, n_padded=n_padded, layout=layout
    )


class _PageCursor:
    """Charged page-at-a-time cursor over a sorted heap file."""

    def __init__(self, source: HeapFile) -> None:
        self._source = source
        self._page: List[VTTuple] = []
        self._offset = 0
        self._next_page = 0

    def peek(self) -> Optional[VTTuple]:
        while self._offset >= len(self._page):
            if self._next_page >= self._source.n_pages:
                return None
            self._page = self._source.read_page(self._next_page)
            self._next_page += 1
            self._offset = 0
        return self._page[self._offset]

    def take(self) -> VTTuple:
        tup = self.peek()
        assert tup is not None
        self._offset += 1
        return tup
