"""Partition-based evaluation of predicate join variants.

Section 1 of the paper: "While we focus on the important valid-time natural
join, the techniques presented are also applicable to other valid-time
joins."  This module makes that claim concrete: any join whose predicate
*implies interval intersection* (intersect-join, overlap-join,
contain-join, and of course the natural join itself) can run through the
same plan / partition / sweep pipeline, because intersecting tuples always
share a partition and the end-chronon emission rule stays exactly-once.

Joins whose predicate does not imply intersection (e.g. a *before*-join)
cannot use temporal partitioning this way and are rejected.

Because evaluation rides the partition-join pipeline, the
``PartitionJoinConfig.execution`` knob applies unchanged: with
``"batch"``/``"batch-parallel"`` the candidate generation (key probe,
interval intersection, owner filter) runs through the vectorized kernels
of :mod:`repro.exec`, and only surviving pairs reach the per-variant
predicate function -- the variant pays Python-level cost proportional to
its *result*, not to the candidate space.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from repro.core.partition_join import (
    PartitionJoinConfig,
    PartitionJoinResult,
    partition_join,
)
from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import VTTuple
from repro.time.allen import AllenRelation, relate
from repro.time.interval import Interval


def partitioned_predicate_join(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    config: PartitionJoinConfig,
    relations: Iterable[AllenRelation],
    *,
    timestamp: str = "intersection",
) -> PartitionJoinResult:
    """Evaluate an Allen-predicate join with the partition framework.

    Args:
        r: outer relation.
        s: inner relation.
        config: partition-join configuration (memory, cost model, ...).
        relations: accepted Allen relations; all must imply intersection.
        timestamp: ``"intersection"``, ``"left"``, or ``"right"`` result
            timestamp policy (see :mod:`repro.variants.allen_joins`).

    Raises:
        ValueError: if any accepted relation does not imply intersection,
            or the timestamp policy is unknown.
    """
    wanted: FrozenSet[AllenRelation] = frozenset(relations)
    rejected = [rel for rel in wanted if not rel.intersects]
    if rejected:
        raise ValueError(
            "temporal partitioning requires intersection-implying predicates; "
            f"got {sorted(rel.value for rel in rejected)}"
        )
    if timestamp not in ("intersection", "left", "right"):
        raise ValueError(f"unknown timestamp policy {timestamp!r}")

    def pair_fn(x: VTTuple, y: VTTuple, common: Interval) -> Optional[VTTuple]:
        if relate(x.valid, y.valid) not in wanted:
            return None
        if timestamp == "intersection":
            stamp = common
        elif timestamp == "left":
            stamp = x.valid
        else:
            stamp = y.valid
        return VTTuple(x.key, x.payload + y.payload, stamp)

    return partition_join(r, s, config, pair_fn=pair_fn)
