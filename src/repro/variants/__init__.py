"""Other valid-time joins (Section 4.1's survey, built on the same machinery).

"A wide variety of valid-time joins have been defined, including the
time-join, event-join, TE-outerjoin [SG89], contain-join, contain-semijoin,
intersect-join, overlap-join [LM92a]."  The paper notes its techniques
"are also applicable to other valid-time joins"; this package provides those
operators:

* :mod:`repro.variants.time_join` -- the pure temporal T-join (interval
  overlap only, no attribute equality) and the TE-join alias of the
  valid-time natural join.
* :mod:`repro.variants.event_join` -- Segev & Gunadhi's event-join and
  TE-outerjoin.
* :mod:`repro.variants.allen_joins` -- joins qualified by Allen predicates
  (overlap-join, contain-join, intersect-join) and the contain-semijoin.
* :mod:`repro.variants.outerjoin` -- left/right/full valid-time natural
  outerjoins with timestamp-preserving padding.
* :mod:`repro.variants.partitioned` -- partition-based evaluation of the
  predicate joins, demonstrating the paper's claim that the partitioning
  framework extends beyond the natural join.
"""

from repro.variants.time_join import te_join, time_join
from repro.variants.event_join import event_join, te_outerjoin
from repro.variants.allen_joins import (
    allen_join,
    contain_join,
    contain_semijoin,
    intersect_join,
    overlap_join,
)
from repro.variants.outerjoin import valid_time_outerjoin
from repro.variants.partitioned import partitioned_predicate_join
from repro.variants.partitioned_time_join import partitioned_time_join
from repro.variants.sort_merge_predicate import sort_merge_predicate_join
from repro.variants.streamed_outerjoin import streamed_te_outerjoin

__all__ = [
    "te_join",
    "time_join",
    "event_join",
    "te_outerjoin",
    "allen_join",
    "contain_join",
    "contain_semijoin",
    "intersect_join",
    "overlap_join",
    "valid_time_outerjoin",
    "partitioned_predicate_join",
    "partitioned_time_join",
    "sort_merge_predicate_join",
    "streamed_te_outerjoin",
]
