"""The time-join (T-join) and the TE-join alias.

Gunadhi and Segev's taxonomy [GS90] distinguishes the *time-join*, which
pairs tuples purely on interval overlap (no attribute equality), from the
*time-equijoin (TE-join)*, which additionally demands equal surrogate
attributes -- the paper identifies the TE-join with the valid-time natural
join it studies ("Other terms for the valid-time natural join include ...
the time-equijoin (TEjoin) [GS90]").

The time-join result keeps both sides' explicit attributes, concatenated,
with the overlap interval as the timestamp.  Because no key restricts the
pairing, its result can be quadratic -- the evaluation here sorts both
inputs by valid-time start and sweeps, so the work is output-bounded rather
than blindly quadratic.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple


def time_join(r: ValidTimeRelation, s: ValidTimeRelation) -> ValidTimeRelation:
    """T-join: pair every ``x in r``, ``y in s`` with overlapping intervals.

    The result schema has no join attributes in common; both sides' explicit
    attributes become payload, keyed by a synthetic empty key.  The result
    timestamp is the maximal overlap.
    """
    result_schema = RelationSchema(
        name=f"{r.schema.name}_tjoin_{s.schema.name}",
        join_attributes=("_t",),
        payload_attributes=tuple(f"r_{a}" for a in r.schema.attributes)
        + tuple(f"s_{a}" for a in s.schema.attributes),
        tuple_bytes=r.schema.tuple_bytes + s.schema.tuple_bytes,
    )
    result = ValidTimeRelation(result_schema)

    # Sweep both sides in Vs order, retiring tuples whose end has passed.
    r_sorted = sorted(r, key=lambda tup: (tup.vs, tup.ve))
    s_sorted = sorted(s, key=lambda tup: (tup.vs, tup.ve))
    active: List[Tuple[int, int, VTTuple]] = []  # (ve, tiebreak, s tuple)
    counter = 0
    s_index = 0
    for x in r_sorted:
        while s_index < len(s_sorted) and s_sorted[s_index].vs <= x.ve:
            y = s_sorted[s_index]
            counter += 1
            heapq.heappush(active, (y.ve, counter, y))
            s_index += 1
        while active and active[0][0] < x.vs:
            heapq.heappop(active)
        for _, _, y in active:
            common = x.valid.intersect(y.valid)
            if common is None:
                continue
            result.add(
                VTTuple(("t",), x.key + x.payload + y.key + y.payload, common)
            )
    return result


def te_join(r: ValidTimeRelation, s: ValidTimeRelation) -> ValidTimeRelation:
    """TE-join: Gunadhi & Segev's name for the valid-time natural join.

    Provided as an alias so code following the [GS90] taxonomy reads
    naturally; delegates to the reference evaluation (use
    :func:`repro.core.partition_join` for measured evaluation).
    """
    from repro.baselines.reference import reference_join

    return reference_join(r, s)
