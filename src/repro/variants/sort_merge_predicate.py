"""Sort-merge evaluation of Allen-predicate joins [LM90].

Leung and Muntz's line of work: sort-merge temporal joins generalized "to
accommodate additional temporal join predicates, mainly those defined by
Allen" (Section 4.1).  With the library's sort-merge machinery already
parameterized by a pair function, the predicate family is a thin policy
layer -- the same restriction as for partition-based evaluation applies
(the predicate must imply interval intersection, or the merge's
retirement logic would discard future matches).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from repro.baselines.sort_merge import SortMergeResult, sort_merge_join
from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import VTTuple
from repro.storage.page import PageSpec
from repro.time.allen import AllenRelation, relate
from repro.time.interval import Interval


def sort_merge_predicate_join(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    memory_pages: int,
    relations: Iterable[AllenRelation],
    *,
    timestamp: str = "intersection",
    page_spec: Optional[PageSpec] = None,
    collect_result: bool = True,
) -> SortMergeResult:
    """Evaluate an Allen-predicate join by sort-merge.

    Args:
        r: left operand.
        s: right operand.
        memory_pages: buffer budget.
        relations: accepted Allen relations; all must imply intersection.
        timestamp: ``"intersection"``, ``"left"``, or ``"right"`` result
            timestamp policy.
        page_spec: page geometry.
        collect_result: materialize the result relation.

    Raises:
        ValueError: for non-intersecting predicates or an unknown policy.
    """
    wanted: FrozenSet[AllenRelation] = frozenset(relations)
    rejected = [rel for rel in wanted if not rel.intersects]
    if rejected:
        raise ValueError(
            "sort-merge predicate evaluation requires intersection-implying "
            f"predicates; got {sorted(rel.value for rel in rejected)}"
        )
    if timestamp not in ("intersection", "left", "right"):
        raise ValueError(f"unknown timestamp policy {timestamp!r}")

    def pair_fn(x: VTTuple, y: VTTuple, common: Interval) -> Optional[VTTuple]:
        if relate(x.valid, y.valid) not in wanted:
            return None
        if timestamp == "intersection":
            stamp = common
        elif timestamp == "left":
            stamp = x.valid
        else:
            stamp = y.valid
        return VTTuple(x.key, x.payload + y.payload, stamp)

    return sort_merge_join(
        r,
        s,
        memory_pages,
        page_spec=page_spec,
        collect_result=collect_result,
        pair_fn=pair_fn,
    )
