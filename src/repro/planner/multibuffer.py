"""Joint multi-buffer allocation for the zero-copy sweep.

The partition join's page budget (``buffSize``) is chosen by the paper's
cost model and must stay exactly what the serial plan chose -- changing it
would change the partitioning, the tuple-cache trajectory, and every
charged I/O, breaking the bit-identity contract between execution modes.
But the ``"zero-copy-sweep"`` mode has three *auxiliary* buffer consumers
the paper never had, and before this pass they were sized by disconnected
defaults:

* the **prefetch window** (``prefetch_depth`` pinned pages of read-ahead),
* the **shared column arena** the lane fan-out pushes index/page columns
  into,
* the **per-lane result slabs** workers write match indices into.

This pass sizes all three jointly under one explicit auxiliary page budget,
using the two classic buffer-needs estimators from SimpleDB's multibuffer
chunking (``BufferNeeds.best_root`` / ``best_factor``): the highest root
(resp. factor) of an output size that fits the available buffers.  The
allocation never touches the join budget -- auxiliary pages ride *on top*
of ``buffSize``, are reserved best-effort, and every shortfall degrades the
plan (smaller slabs, smaller arena, shallower prefetch) without ever
changing results: arena overflow falls back to pickled dispatch, slab
overflow to pickled returns, and a zero prefetch depth to demand paging,
all of which are result-identical by construction.

The same pass feeds admission control: ``estimate_grant_pages`` adds
``plan.total_aux_pages`` to a zero-copy query's useful budget, so the
service's grants account for the prefetch window and the lane buffers it
previously ignored.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.storage.page import PageSpec

#: Smallest useful per-lane slab: below this, slab traffic is dominated by
#: the header/IPC overhead the slabs exist to avoid.
MIN_SLAB_ROWS = 1024

#: Hard floor for the shared arena: one page worth of columns.
MIN_ARENA_PAGES = 1


def best_root(size: int, avail: int) -> int:
    """The highest *i*-th root of *size* that fits in *avail* buffers.

    The SimpleDB multibuffer rule: chunking an output of ``size`` blocks
    into ``ceil(size ** (1/i))``-block chunks costs ``i`` passes, so the
    best chunk size under ``avail`` buffers is the highest root that fits.
    Returns 1 when ``avail <= 1``.
    """
    if size < 0 or avail < 0:
        raise ValueError(f"best_root needs non-negative inputs, got {size}, {avail}")
    if avail <= 1 or size <= 1:
        return 1
    i = 1
    k = size
    while k > avail:
        i += 1
        k = math.ceil(size ** (1 / i))
    return k


def best_factor(size: int, avail: int) -> int:
    """The highest ``ceil(size / i)`` factor of *size* fitting *avail*.

    The companion rule for single-pass consumers (scan windows): the
    largest even division of ``size`` that fits the available buffers.
    Returns 1 when ``avail <= 1``.
    """
    if size < 0 or avail < 0:
        raise ValueError(f"best_factor needs non-negative inputs, got {size}, {avail}")
    if avail <= 1 or size <= 1:
        return 1
    i = 1
    k = size
    while k > avail:
        i += 1
        k = math.ceil(size / i)
    return k


@dataclass(frozen=True)
class MultiBufferPlan:
    """The joint auxiliary-buffer allocation of one zero-copy join.

    All page counts are in the join's page geometry.  ``join_pages`` is
    carried for reporting only -- the pass never alters it.
    """

    join_pages: int
    lanes: int
    prefetch_depth: int
    prefetch_pages: int
    arena_bytes: int
    arena_pages: int
    slab_rows: int
    slab_pages: int

    @property
    def total_aux_pages(self) -> int:
        """Pages the plan asks for on top of the join budget."""
        return self.prefetch_pages + self.arena_pages + self.slab_pages

    def arena_geometry(self):
        """The plan's arena shape as a checkpointable descriptor."""
        from repro.exec.arena import ArenaDescriptor

        return ArenaDescriptor(
            data_bytes=self.arena_bytes, slab_rows=self.slab_rows, lanes=self.lanes
        )

    @classmethod
    def from_descriptor(
        cls, descriptor, *, prefetch_depth: int, buff_size: int, spec: PageSpec
    ) -> "MultiBufferPlan":
        """Rebuild a plan from a checkpointed arena descriptor.

        The recovery log stores only the arena *geometry* (segments are
        volatile); resume reconstructs the page accounting from it so the
        restarted sweep reserves and allocates exactly the original shape.
        """
        arena_pages = max(
            MIN_ARENA_PAGES, math.ceil(descriptor.data_bytes / spec.page_bytes)
        )
        slab_pages = math.ceil(
            8 * descriptor.lanes * (1 + 4 * descriptor.slab_rows) / spec.page_bytes
        )
        return cls(
            join_pages=buff_size,
            lanes=descriptor.lanes,
            prefetch_depth=prefetch_depth,
            prefetch_pages=max(0, prefetch_depth),
            arena_bytes=descriptor.data_bytes,
            arena_pages=arena_pages,
            slab_rows=descriptor.slab_rows,
            slab_pages=slab_pages,
        )

    def shrink_to(self, avail_pages: int, spec: PageSpec) -> "MultiBufferPlan":
        """The same plan degraded to fit *avail_pages* auxiliary pages.

        Degradation order mirrors the cost of losing each consumer: slabs
        shrink first (overflow falls back to pickled returns -- cheap),
        then the arena (whole-dispatch pickled fallback), then the
        prefetch window (pure demand paging).  Results are identical at
        every point of the ladder.
        """
        if avail_pages >= self.total_aux_pages:
            return self
        remaining = max(0, avail_pages)
        prefetch_pages = min(self.prefetch_pages, remaining)
        remaining -= prefetch_pages
        arena_pages = min(self.arena_pages, remaining)
        remaining -= arena_pages
        slab_pages = min(self.slab_pages, remaining)
        slab_rows = max(
            MIN_SLAB_ROWS, (slab_pages * spec.page_bytes) // (8 * 4 * max(1, self.lanes))
        )
        return replace(
            self,
            prefetch_depth=min(self.prefetch_depth, prefetch_pages),
            prefetch_pages=prefetch_pages,
            arena_pages=arena_pages,
            arena_bytes=max(spec.page_bytes * MIN_ARENA_PAGES, arena_pages * spec.page_bytes),
            slab_pages=slab_pages,
            slab_rows=slab_rows,
        )


def plan_multibuffer(
    outer_pages: int,
    inner_pages: int,
    buff_size: int,
    spec: PageSpec,
    *,
    lanes: int,
    prefetch_depth: int = 8,
    aux_pages: Optional[int] = None,
) -> MultiBufferPlan:
    """Size the zero-copy sweep's auxiliary buffers jointly.

    Args:
        outer_pages: catalog page count of the outer relation.
        inner_pages: catalog page count of the inner relation.
        buff_size: the join's outer-block budget (pages) -- read, never
            altered.
        spec: the page geometry (tuples per page, bytes per page).
        lanes: probe lanes of the fan-out (1 = no pool, slabs/arena still
            sized for the degenerate case).
        prefetch_depth: the *requested* read-ahead depth; the pass may only
            lower it.
        aux_pages: the auxiliary page budget.  None means "unconstrained"
            (standalone runs reserve best-effort and degrade at the pool);
            admission-controlled runs pass the granted headroom.

    The three consumers, in allocation order:

    1. **Prefetch window** -- the per-partition serial page run is about
       ``buff_size`` outer pages plus the partition's share of the inner
       relation; ``best_factor`` of that run under the remaining budget is
       the deepest read-ahead that still evenly tiles the run, capped at
       the requested depth.
    2. **Column arena** -- sized to the worst-case push: the pruned
       index's four ``int64`` columns of a full outer block plus four
       page columns per lane.
    3. **Result slabs** -- the worst-case pair count of one (page, block)
       probe is ``page_rows * block_rows``; its ``best_root`` under the
       rows the remaining budget can hold is the classic chunk size, floored
       at :data:`MIN_SLAB_ROWS`.  Four columns plus a header word per lane.
    """
    if outer_pages < 0 or inner_pages < 0 or buff_size < 1:
        raise ValueError(
            f"plan_multibuffer needs non-negative relations and buff_size >= 1, "
            f"got {outer_pages}, {inner_pages}, {buff_size}"
        )
    lanes = max(1, lanes)
    page_rows = spec.capacity
    block_rows = buff_size * page_rows

    budget = aux_pages if aux_pages is not None else (1 << 30)

    # 1. Prefetch window.
    n_partitions = max(1, math.ceil(max(1, outer_pages) / buff_size))
    partition_run = min(buff_size, max(1, outer_pages)) + max(
        1, math.ceil(inner_pages / n_partitions)
    )
    depth = min(max(0, prefetch_depth), best_factor(partition_run, budget))
    prefetch_pages = depth
    budget -= prefetch_pages

    # 2. Column arena.
    arena_bytes = 8 * 4 * (block_rows + lanes * page_rows)
    arena_pages = max(MIN_ARENA_PAGES, math.ceil(arena_bytes / spec.page_bytes))
    arena_pages = min(arena_pages, max(MIN_ARENA_PAGES, budget))
    arena_bytes = arena_pages * spec.page_bytes
    budget -= arena_pages

    # 3. Result slabs.  The budget bounds the rows a slab can hold; even an
    # unconstrained budget is capped at one block's rows per lane, so the
    # root rule lands on the classic square-root chunk instead of degenerating
    # to "the whole worst case fits".
    avail_rows = max(0, budget) * spec.page_bytes // (8 * 4 * lanes)
    avail_rows = min(avail_rows, block_rows)
    slab_rows = max(MIN_SLAB_ROWS, best_root(page_rows * block_rows, avail_rows))
    slab_pages = math.ceil(8 * lanes * (1 + 4 * slab_rows) / spec.page_bytes)

    return MultiBufferPlan(
        join_pages=buff_size,
        lanes=lanes,
        prefetch_depth=depth,
        prefetch_pages=prefetch_pages,
        arena_bytes=arena_bytes,
        arena_pages=arena_pages,
        slab_rows=slab_rows,
        slab_pages=slab_pages,
    )


__all__ = ["MIN_ARENA_PAGES", "MIN_SLAB_ROWS", "MultiBufferPlan", "best_factor", "best_root", "plan_multibuffer"]
