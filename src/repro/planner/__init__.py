"""Planner passes that sit above the core cost model.

The :mod:`repro.core.planner` module owns the paper's cost formulas (C_part
/ C_join, partition-count search, admission grants).  This package holds
the passes layered on top of them; currently the multi-buffer allocation
pass (:mod:`repro.planner.multibuffer`) that sizes every *auxiliary*
buffer consumer of the zero-copy sweep -- prefetch window, shared column
arena, per-lane result slabs -- jointly under one BufferPool budget.
"""

from repro.planner.multibuffer import (
    MultiBufferPlan,
    best_factor,
    best_root,
    plan_multibuffer,
)

__all__ = [
    "MultiBufferPlan",
    "best_factor",
    "best_root",
    "plan_multibuffer",
]
