"""Lane supervision: heartbeats, deterministic re-dispatch, and quarantine.

The pipelined sweeps fan pure-compute probe work out to a
``multiprocessing`` pool.  Before this module, a dying or hung worker was
swallowed by blanket ``except Exception`` fallbacks -- the sweep silently
reran everything serially, unobserved and untested.  The
:class:`LaneSupervisor` replaces the raw ``pool.map`` with a supervised
dispatch that makes every failure mode explicit:

* **Crashed lanes** (SIGKILL, OOM-kill, hard exit) are detected by watching
  the exit codes of the worker processes snapshotted at dispatch time --
  a pool quietly repopulates dead workers, but the in-flight task is lost
  and a bare ``map`` would wait forever.
* **Hung lanes** are detected by a per-dispatch deadline
  (:attr:`SupervisionPolicy.lane_timeout_seconds`); progress is sampled on
  a heartbeat and intervals without a newly completed lane are counted as
  heartbeat misses.
* **Poisoned lanes** -- shared-memory result slabs that fail CRC/sequence
  validation -- are reported by the arena dispatcher through
  :meth:`LaneSupervisor.note_poison`.

Recovery is **deterministic re-dispatch**: lane tasks are pure functions of
their inputs (``group_rank % lanes`` fan-out, no I/O, no shared mutable
state), so terminating the pool and re-running the failed dispatch on a
fresh one is bit-identical by construction.  Every recovery charges a
:class:`~repro.resilience.retry.RetryPolicy` backoff penalty to the
supervisor's own ledger (:attr:`LaneSupervisionStats.backoff_ops`) --
deliberately *not* to the charged-I/O statistics, because lanes perform no
I/O and the acceptance contract is that a disturbed run's charged ledger
stays bit-identical to an undisturbed one.

Repeated failure walks a quarantine ladder: every
:attr:`SupervisionPolicy.quarantine_after` consecutive failures retires one
lane (shrinking the fan-out), and when fewer than two lanes remain -- or
:attr:`SupervisionPolicy.max_redispatches` is exceeded -- the supervisor
retires entirely and the identical computation continues in-process.

Everything is observable: ``repro_lane_*`` metrics, trace events, and
:class:`~repro.resilience.report.DegradationEvent` entries with ``lane-*``
kinds (which the service layer uses to keep disturbed runs out of the
result cache and to trip its circuit breaker).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.model.errors import LaneFailureError
from repro.resilience.retry import RetryPolicy

#: Exceptions a pool dispatch can legitimately surface in restricted or
#: degraded environments (spawn refused, pipe torn, worker lost, payload
#: unpicklable).  Fallback handlers catch exactly these -- never a blanket
#: ``Exception`` -- so genuine bugs keep propagating.
LANE_POOL_ERRORS: Tuple[type, ...] = (
    OSError,
    ValueError,
    ImportError,
    RuntimeError,
    EOFError,
    MemoryError,
    multiprocessing.ProcessError,
    pickle.PicklingError,
    pickle.UnpicklingError,
)

#: Process-global lane-fault injector hook.  The service layer builds its
#: configs from frozen, hashable dataclasses that cannot carry an injector
#: object, so service-level chaos tests install one here instead; every
#: supervisor consults it after its own injector.
_GLOBAL_LANE_INJECTOR = None


def install_lane_injector(injector) -> None:
    """Install a process-global lane-fault injector (chaos tests)."""
    global _GLOBAL_LANE_INJECTOR
    _GLOBAL_LANE_INJECTOR = injector


def clear_lane_injector() -> None:
    """Remove the process-global lane-fault injector."""
    global _GLOBAL_LANE_INJECTOR
    _GLOBAL_LANE_INJECTOR = None


@dataclass(frozen=True)
class SupervisionPolicy:
    """Bounds and cadence of lane supervision.

    Attributes:
        lane_timeout_seconds: wall-clock deadline for one dispatch; a
            dispatch still incomplete past it is declared hung and
            re-dispatched on a fresh pool.
        heartbeat_seconds: progress-sampling interval; a heartbeat with no
            newly completed lane counts one miss (observability only --
            misses never trigger recovery by themselves).
        max_redispatches: consecutive failed dispatches tolerated before
            the supervisor retires to in-process execution.
        quarantine_after: consecutive failures per quarantined lane; every
            ``quarantine_after``-th consecutive failure retires one lane.
            0 disables quarantine (the lane count never shrinks).
        retry: backoff shape; recovery ``i`` of a consecutive-failure run
            charges ``retry.penalty(i)`` operations to the supervisor's
            backoff ledger (never to the charged-I/O statistics).
    """

    lane_timeout_seconds: float = 30.0
    heartbeat_seconds: float = 0.5
    max_redispatches: int = 3
    quarantine_after: int = 2
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.lane_timeout_seconds <= 0:
            raise ValueError(
                f"lane_timeout_seconds must be positive, got {self.lane_timeout_seconds}"
            )
        if self.heartbeat_seconds <= 0:
            raise ValueError(
                f"heartbeat_seconds must be positive, got {self.heartbeat_seconds}"
            )
        if self.max_redispatches < 0:
            raise ValueError(
                f"max_redispatches must be >= 0, got {self.max_redispatches}"
            )
        if self.quarantine_after < 0:
            raise ValueError(
                f"quarantine_after must be >= 0 (0 disables quarantine), "
                f"got {self.quarantine_after}"
            )


@dataclass
class LaneSupervisionStats:
    """What one supervisor observed and did over its lifetime.

    ``backoff_ops`` is the supervisor's own charged ledger: recovery
    penalties land here (and on the ``repro_lane_backoff_ops_total``
    metric), never on the disk's I/O statistics -- lanes do no I/O, so the
    charged bill of a disturbed run must stay bit-identical.
    """

    dispatches: int = 0
    deaths: int = 0
    hangs: int = 0
    errors: int = 0
    poisoned: int = 0
    heartbeat_misses: int = 0
    redispatches: int = 0
    quarantines: int = 0
    backoff_ops: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "dispatches": self.dispatches,
            "deaths": self.deaths,
            "hangs": self.hangs,
            "errors": self.errors,
            "poisoned": self.poisoned,
            "heartbeat_misses": self.heartbeat_misses,
            "redispatches": self.redispatches,
            "quarantines": self.quarantines,
            "backoff_ops": self.backoff_ops,
        }

    @property
    def failures(self) -> int:
        return self.deaths + self.hangs + self.errors + self.poisoned


def _wedged_lane(args):
    """Scripted hang: wedge one lane well past the dispatch deadline.

    Used by the fault injector's ``hang_lane`` script; the sleep exceeds
    the supervisor's deadline, so detection -- and the SIGTERM delivered by
    the recovery's ``pool.terminate()`` -- always wins.
    """
    fn, task, seconds = args
    time.sleep(seconds)
    return fn(task)


class LaneSupervisor:
    """Supervised ``map`` over a lane pool the supervisor owns.

    Args:
        lanes: initial lane count (< 2 means in-process from the start).
        policy: supervision bounds (None = defaults).
        injector: optional :class:`~repro.resilience.faults.FaultInjector`;
            its ``on_lane_dispatch``/``on_slab_gather`` scripts drive the
            chaos tests.  The process-global injector installed via
            :func:`install_lane_injector` is consulted as well.
        report: optional :class:`~repro.resilience.report.ResilienceReport`
            receiving ``lane-*`` degradation events.
        obs: optional observability runtime for metrics and events.
        initializer / initargs: forwarded to the pool (and run once
            in-process when the pool cannot be used, so initializer-
            dependent task functions keep working in the fallback).
    """

    def __init__(
        self,
        lanes: int,
        *,
        policy: Optional[SupervisionPolicy] = None,
        injector=None,
        report=None,
        obs=None,
        initializer: Optional[Callable] = None,
        initargs: Tuple = (),
    ) -> None:
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.lanes = max(1, int(lanes))
        self.stats = LaneSupervisionStats()
        self._injector = injector
        self._report = report
        self._obs = obs
        self._initializer = initializer
        self._initargs = initargs
        self._init_done = False
        self._pool = None
        self._retired = False
        self._spawn_failed = False
        self._consecutive = 0
        self._teardowns: List[Callable[[], None]] = []
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def retired(self) -> bool:
        """True once the supervisor gave up on pools for good."""
        return self._retired or self._spawn_failed or self._closed

    def add_teardown(self, closer: Callable[[], None]) -> None:
        """Register a resource closed with the supervisor (idempotent safe).

        The arena dispatchers register here, so shared-memory segments are
        reclaimed on the supervisor-owned teardown path even when a lane
        died mid-gather and the engine's unwind is abnormal.
        """
        self._teardowns.append(closer)

    def ensure_pool(self):
        """The live lane pool, or None when work must run in-process."""
        if self.retired or self.lanes < 2:
            return None
        if self._pool is None:
            try:
                self._pool = multiprocessing.get_context().Pool(
                    processes=self.lanes,
                    initializer=self._initializer,
                    initargs=self._initargs,
                )
                if self._obs is not None:
                    self._obs.event("lane-pool-start", lanes=self.lanes)
            except LANE_POOL_ERRORS:
                # Restricted environments (sandboxes, some CI runners)
                # cannot spawn processes; same computation, one process.
                self._spawn_failed = True
                self._degrade(
                    "pool-fallback",
                    f"lane pool of {self.lanes} workers could not be spawned; "
                    f"running in-process",
                )
        return self._pool

    def close(self) -> None:
        """Run registered teardowns and discard the pool (idempotent)."""
        if self._closed:
            return
        self._closed = True
        teardowns, self._teardowns = self._teardowns, []
        for closer in teardowns:
            try:
                closer()
            except Exception:
                pass
        self._discard_pool()

    def _discard_pool(self, *, broken: bool = False) -> None:
        """Tear the pool down without ever blocking the parent.

        ``Pool.terminate()`` can deadlock after a worker was SIGKILLed: the
        dead worker may have held the shared task-queue lock, and the
        pool's teardown helper blocks on that lock forever.  So a *broken*
        pool's surviving workers are killed directly first (their tasks are
        re-dispatched anyway), and the stdlib teardown runs on a bounded
        daemon thread -- if it wedges on the poisoned lock, the thread is
        abandoned and cannot keep the process alive.  A healthy pool is
        NEVER pre-killed: SIGKILLing an idle worker that holds the
        task-queue read lock would *create* the poisoned lock and stall
        every clean close for the full reaper timeout.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if broken:
            for proc in list(getattr(pool, "_pool", None) or []):
                try:
                    if proc is not None and proc.exitcode is None:
                        os.kill(proc.pid, signal.SIGKILL)
                except OSError:
                    pass

        def teardown() -> None:
            try:
                pool.terminate()
                pool.join()
            except Exception:
                pass

        reaper = threading.Thread(
            target=teardown, name="lane-pool-reaper", daemon=True
        )
        reaper.start()
        reaper.join(timeout=1.0)

    # -- the supervised dispatch ----------------------------------------------

    def map(self, fn: Callable, tasks: Sequence, *, label: str = "lanes") -> List:
        """Run ``fn`` over *tasks* on the supervised pool, in task order.

        Detects crashed, hung, and erroring dispatches and recovers by
        re-dispatching the whole failed dispatch on a fresh pool -- the
        tasks are pure, so the retry is bit-identical.  After retirement
        (or when no pool is available) the identical computation runs
        in-process.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        while True:
            pool = self.ensure_pool()
            if pool is None:
                if self._initializer is not None and not self._init_done:
                    self._initializer(*self._initargs)
                    self._init_done = True
                return [fn(task) for task in tasks]
            self.stats.dispatches += 1
            fault = self._scripted_lane_fault()
            try:
                results = self._dispatch(pool, fn, tasks, fault, label)
            except LaneFailureError as failure:
                self._recover(failure, label)
                continue
            self._consecutive = 0
            return results

    def _dispatch(self, pool, fn, tasks, fault: Optional[str], label: str) -> List:
        policy = self.policy
        # Snapshot the worker processes NOW: the pool silently replaces a
        # dead worker, but the task it held is gone -- the exit codes of
        # this snapshot are the crash detector.
        procs = [p for p in (getattr(pool, "_pool", None) or []) if p is not None]
        asyncs = []
        for i, task in enumerate(tasks):
            if fault == "hang" and i == 0:
                wedge = (fn, task, policy.lane_timeout_seconds * 4 + 1.0)
                asyncs.append(pool.apply_async(_wedged_lane, (wedge,)))
            else:
                asyncs.append(pool.apply_async(fn, (task,)))
        if fault == "kill" and procs:
            victim = procs[self.stats.dispatches % len(procs)]
            try:
                os.kill(victim.pid, signal.SIGKILL)
            except OSError:
                pass

        start = time.monotonic()
        deadline = start + policy.lane_timeout_seconds
        next_beat = start + policy.heartbeat_seconds
        last_ready = -1
        slice_s = min(0.05, max(0.005, policy.heartbeat_seconds / 4.0))
        while True:
            dead = [p.exitcode for p in procs if p.exitcode is not None]
            if dead:
                raise LaneFailureError(
                    f"lane worker died mid-dispatch ({label})",
                    kind="death",
                    exitcodes=tuple(dead),
                )
            ready = sum(1 for a in asyncs if a.ready())
            if ready == len(asyncs):
                try:
                    return [a.get() for a in asyncs]
                except LaneFailureError:
                    raise
                except Exception as error:
                    raise LaneFailureError(
                        f"lane task raised {type(error).__name__}: {error} ({label})",
                        kind="error",
                    ) from error
            now = time.monotonic()
            if now >= deadline:
                raise LaneFailureError(
                    f"lane dispatch exceeded its {policy.lane_timeout_seconds:.3f}s "
                    f"deadline with {len(asyncs) - ready} lanes outstanding ({label})",
                    kind="hang",
                    timeout=policy.lane_timeout_seconds,
                )
            if now >= next_beat:
                if ready == last_ready:
                    self.stats.heartbeat_misses += 1
                    if self._obs is not None:
                        self._obs.count(
                            "repro_lane_heartbeat_misses_total",
                            "Heartbeat intervals with no lane progress.",
                        )
                last_ready = ready
                next_beat = now + policy.heartbeat_seconds
            for a in asyncs:
                if not a.ready():
                    a.wait(min(slice_s, max(1e-4, deadline - now)))
                    break

    # -- failure accounting ----------------------------------------------------

    def _recover(self, failure: LaneFailureError, label: str) -> None:
        """Account one failed dispatch and prepare the re-dispatch.

        The pool is discarded wholesale: any worker of a failed dispatch
        may hold stale state (a wedged task, a half-written slab), and lane
        tasks are cheap pure compute, so a fresh pool is both the safe and
        the simple recovery.  The caller's loop then re-runs every task of
        the dispatch -- results of an aborted dispatch are never trusted,
        and purity makes the re-run free of semantic cost.
        """
        self._discard_pool(broken=True)
        kind = str(failure.context.get("kind", "error"))
        if kind == "death":
            self.stats.deaths += 1
            metric = "repro_lane_deaths_total"
        elif kind == "hang":
            self.stats.hangs += 1
            metric = "repro_lane_hangs_total"
        else:
            self.stats.errors += 1
            metric = "repro_lane_errors_total"
        if self._obs is not None:
            self._obs.count(metric, "Supervised lane failures by kind.")
        self._charge_failure(f"lane-{kind}", f"{failure} (dispatch {self.stats.dispatches}, {label})")

    def note_poison(self, detail: str) -> None:
        """Account a poisoned result slab (CRC/sequence validation failed).

        Called by the arena dispatcher, which re-computes the dispatch
        through the pickled transport itself; the supervisor records the
        event, charges the backoff, and walks the quarantine ladder.
        """
        self.stats.poisoned += 1
        if self._obs is not None:
            self._obs.count(
                "repro_lane_poisoned_total",
                "Result slabs that failed CRC/sequence validation.",
            )
        self._charge_failure("lane-poison", detail)

    def _charge_failure(self, kind: str, detail: str) -> None:
        self._consecutive += 1
        attempt = self._consecutive
        penalty = self.policy.retry.penalty(attempt)
        self.stats.backoff_ops += penalty
        self.stats.redispatches += 1
        self._degrade(kind, f"{detail}; re-dispatch {attempt} charged {penalty} backoff ops")
        if self._obs is not None:
            self._obs.count(
                "repro_lane_redispatches_total",
                "Lane dispatches re-run after a failure.",
            )
            if penalty:
                self._obs.count(
                    "repro_lane_backoff_ops_total",
                    "Backoff penalty ops charged to the supervisor's ledger.",
                    float(penalty),
                )
            self._obs.event("lane-failure", kind=kind, attempt=attempt, detail=detail)
        if attempt > self.policy.max_redispatches:
            self._retire(
                f"{attempt} consecutive lane failures exceeded "
                f"max_redispatches={self.policy.max_redispatches}"
            )
            return
        if self.policy.quarantine_after and attempt % self.policy.quarantine_after == 0:
            self.lanes -= 1
            self.stats.quarantines += 1
            self._degrade(
                "lane-quarantine",
                f"lane retired after {attempt} consecutive failures; "
                f"{self.lanes} lanes remain",
            )
            if self._obs is not None:
                self._obs.count(
                    "repro_lane_quarantines_total",
                    "Lanes retired by the quarantine ladder.",
                )
            if self.lanes < 2:
                self._retire("lane count shrank below 2")

    def _retire(self, reason: str) -> None:
        if self._retired:
            return
        self._retired = True
        self._degrade("lane-retired", f"{reason}; continuing in-process")

    def _degrade(self, kind: str, detail: str) -> None:
        if self._report is not None:
            self._report.record_degradation(kind, detail)
        if self._obs is not None:
            self._obs.event("degradation", kind=kind, detail=detail)
            self._obs.count(
                "repro_degradations_total",
                "Recorded degradation events by kind.",
                kind=kind,
            )

    # -- scripted chaos ----------------------------------------------------------

    def _scripted_lane_fault(self) -> Optional[str]:
        for injector in (self._injector, _GLOBAL_LANE_INJECTOR):
            hook = getattr(injector, "on_lane_dispatch", None)
            if hook is not None:
                fault = hook(self.stats.dispatches)
                if fault is not None:
                    return fault
        return None

    def scripted_slab_poison(self, gather_no: int) -> bool:
        """Whether a scripted slab corruption targets gather *gather_no*."""
        for injector in (self._injector, _GLOBAL_LANE_INJECTOR):
            hook = getattr(injector, "on_slab_gather", None)
            if hook is not None and hook(gather_no):
                return True
        return False


__all__ = [
    "LANE_POOL_ERRORS",
    "LaneSupervisionStats",
    "LaneSupervisor",
    "SupervisionPolicy",
    "clear_lane_injector",
    "install_lane_injector",
]
