"""Structured reporting of what the resilience machinery did.

Every :class:`~repro.storage.disk.SimulatedDisk` owns a
:class:`ResilienceReport`; the disk records fault and retry events into it,
the joiner records checkpoints, resumes, and degradations.  A fault-free run
leaves the report empty, so asserting ``report.clean`` is a cheap way for
tests to prove no resilience path fired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class DegradationEvent:
    """One graceful-degradation decision taken instead of aborting.

    Attributes:
        kind: ``"nested-loop-fallback"`` (permanent page failure, the join
            re-ran as a block nested loop over the base relations),
            ``"replan"`` (the buffer budget shrank before planning, the
            planner re-ran with a smaller ``partSize``),
            ``"buffer-reduction"`` (the budget shrank mid-sweep, the outer
            block was split -- the Section 3.4 overflow machinery),
            ``"pool-fallback"`` / ``"arena-fallback"`` (a worker pool or
            shared segment could not be used; the identical computation ran
            in-process / over pickled chunks), or one of the lane
            supervisor's ``"lane-*"`` kinds (``lane-death``, ``lane-hang``,
            ``lane-error``, ``lane-poison``, ``lane-quarantine``,
            ``lane-retired`` -- see :mod:`repro.resilience.supervisor`).
            The ``lane-`` prefix is load-bearing: the service keeps
            lane-disturbed runs out of its result cache by that prefix.
        detail: human-readable description.
        position: sweep position the event applies to, when applicable.
    """

    kind: str
    detail: str
    position: Optional[int] = None


@dataclass
class ResilienceReport:
    """Counters and events accumulated across one storage stack's lifetime.

    Attributes:
        transient_read_faults: injected read faults that were retried.
        transient_write_faults: injected write faults that were retried.
        corruptions_detected: corrupted deliveries caught by checksums.
        corruptions_undetected: corrupted deliveries that went unnoticed
            (checksums disabled -- the injector knows, the reader does not).
        retries: re-issued access attempts.
        backoff_ops: charged backoff penalty operations.
        permanent_failures: context strings of accesses that exhausted the
            retry policy.
        checkpoints_written: committed sweep checkpoints.
        resumes: times a run was resumed from a checkpoint.
        degradations: graceful-degradation events, in order.
    """

    transient_read_faults: int = 0
    transient_write_faults: int = 0
    corruptions_detected: int = 0
    corruptions_undetected: int = 0
    retries: int = 0
    backoff_ops: int = 0
    permanent_failures: List[str] = field(default_factory=list)
    checkpoints_written: int = 0
    resumes: int = 0
    degradations: List[DegradationEvent] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when any degradation path replaced the planned evaluation."""
        return bool(self.degradations)

    @property
    def clean(self) -> bool:
        """True when no fault, retry, or degradation was ever recorded."""
        return (
            self.transient_read_faults == 0
            and self.transient_write_faults == 0
            and self.corruptions_detected == 0
            and self.corruptions_undetected == 0
            and self.retries == 0
            and not self.permanent_failures
            and not self.degradations
        )

    def record_degradation(
        self, kind: str, detail: str, position: Optional[int] = None
    ) -> DegradationEvent:
        """Append a degradation event and return it."""
        event = DegradationEvent(kind=kind, detail=detail, position=position)
        self.degradations.append(event)
        return event

    def summary(self) -> str:
        """One-line digest for logs and CLI output."""
        parts = []
        if self.retries:
            parts.append(f"{self.retries} retries (+{self.backoff_ops} backoff ops)")
        if self.corruptions_detected:
            parts.append(f"{self.corruptions_detected} corruptions detected")
        if self.corruptions_undetected:
            parts.append(f"{self.corruptions_undetected} corruptions UNDETECTED")
        if self.permanent_failures:
            parts.append(f"{len(self.permanent_failures)} permanent failures")
        if self.checkpoints_written:
            parts.append(f"{self.checkpoints_written} checkpoints")
        if self.resumes:
            parts.append(f"{self.resumes} resumes")
        for event in self.degradations:
            parts.append(f"degraded[{event.kind}]")
        return "; ".join(parts) if parts else "clean"
