"""Deterministic, seedable fault injection for the simulated disk.

A :class:`FaultInjector` is attached to a :class:`~repro.storage.disk.
SimulatedDisk` and consulted on every charged read and write.  It can

* raise **transient I/O faults** -- the access attempt fails and the disk's
  retry policy decides whether to try again;
* deliver **torn/corrupted pages** -- the stored page is intact, but the
  copy handed to the reader is damaged.  With checksummed frames the
  corruption is detected and retried; without them it is silent;
* **crash** the run at a scheduled operation count, modeling process death
  mid-sweep (:class:`~repro.model.errors.SimulatedCrashError`);
* script **lane faults** against the supervised worker pools
  (:meth:`kill_lane`, :meth:`hang_lane`, :meth:`poison_slab`) -- the
  :class:`~repro.resilience.supervisor.LaneSupervisor` consults
  :meth:`on_lane_dispatch` before every pool dispatch and the arena
  dispatcher consults :meth:`on_slab_gather` before validating result
  slabs, so worker death, wedged lanes, and corrupted shared memory are
  injected at exact, reproducible dispatch counts.

Faults come from two sources that compose:

* **Scripted faults** target a named extent page explicitly
  (:meth:`fail_read`, :meth:`fail_write`, :meth:`corrupt_read`) and fire a
  bounded number of times -- the deterministic building block of the unit
  tests and degradation scenarios.
* **Seeded random faults** fire with configured per-access probabilities
  from a private :class:`random.Random`.  The decision stream is a pure
  function of the seed and the access sequence, so a chaos run is exactly
  reproducible from its seed.

The injector never mutates stored state; permanently bad *storage* is
modeled by :meth:`repro.storage.disk.SimulatedDisk.corrupt_stored`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.model.errors import SimulatedCrashError


@dataclass(frozen=True)
class FaultDecision:
    """What the injector decided for one access attempt.

    Attributes:
        kind: ``"io"`` (the attempt errors outright) or ``"corrupt"``
            (the attempt "succeeds" but delivers a damaged page).
    """

    kind: str


#: Scripted-fault key: (extent name, page index, "read"/"write").
_ScriptKey = Tuple[str, int, str]


class FaultInjector:
    """Seeded fault source consulted by the disk on every charged access.

    Args:
        seed: seed of the random-fault stream.
        read_fault_rate: probability a read attempt raises a transient fault.
        write_fault_rate: probability a write attempt raises a transient fault.
        corruption_rate: probability a read attempt delivers a corrupted page.
        devices: restrict random faults to these device numbers (None = all;
            scripted faults always fire regardless).
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        read_fault_rate: float = 0.0,
        write_fault_rate: float = 0.0,
        corruption_rate: float = 0.0,
        devices: Optional[Sequence[int]] = None,
    ) -> None:
        for name, rate in (
            ("read_fault_rate", read_fault_rate),
            ("write_fault_rate", write_fault_rate),
            ("corruption_rate", corruption_rate),
        ):
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        self.seed = seed
        self.read_fault_rate = read_fault_rate
        self.write_fault_rate = write_fault_rate
        self.corruption_rate = corruption_rate
        self.devices = frozenset(devices) if devices is not None else None
        self._rng = random.Random(seed)
        self._ops = 0
        self._crash_at: Optional[int] = None
        self._scripted: Dict[_ScriptKey, int] = {}
        self._scripted_corrupt: Dict[Tuple[str, int], int] = {}
        self._lane_faults: Dict[int, str] = {}
        self._slab_faults: Dict[int, bool] = {}

    # -- crash scheduling ------------------------------------------------------

    @property
    def ops_seen(self) -> int:
        """Charged disk operations observed so far (retries not counted)."""
        return self._ops

    def schedule_crash(self, at_op: int) -> None:
        """Crash the run when the *at_op*-th operation is issued.

        One-shot: after firing, the crash is disarmed, so a resumed run
        proceeds (re-arm explicitly to model repeated failures).
        """
        if at_op < 1:
            raise ValueError(f"crash operation count must be >= 1, got {at_op}")
        self._crash_at = at_op

    def disarm_crash(self) -> None:
        """Cancel a scheduled crash."""
        self._crash_at = None

    def tick(self) -> None:
        """Count one logical disk operation; crash if its turn has come."""
        self._ops += 1
        if self._crash_at is not None and self._ops >= self._crash_at:
            self._crash_at = None
            raise SimulatedCrashError(
                f"simulated crash at operation {self._ops}", operation=self._ops
            )

    # -- scripted faults ----------------------------------------------------------

    def fail_read(self, extent_name: str, page_index: int, *, times: int = 1) -> None:
        """Make the next *times* read attempts of a page raise I/O faults."""
        self._script((extent_name, page_index, "read"), times)

    def fail_write(self, extent_name: str, page_index: int, *, times: int = 1) -> None:
        """Make the next *times* write attempts of a page raise I/O faults."""
        self._script((extent_name, page_index, "write"), times)

    def corrupt_read(self, extent_name: str, page_index: int, *, times: int = 1) -> None:
        """Make the next *times* read attempts of a page deliver a torn copy."""
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        key = (extent_name, page_index)
        self._scripted_corrupt[key] = self._scripted_corrupt.get(key, 0) + times

    def _script(self, key: _ScriptKey, times: int) -> None:
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        self._scripted[key] = self._scripted.get(key, 0) + times

    # -- scripted lane faults ------------------------------------------------------

    def kill_lane(self, at_dispatch: int) -> None:
        """SIGKILL one pool worker of the *at_dispatch*-th supervised dispatch.

        One-shot: supervised dispatches are numbered per supervisor starting
        at 1 (re-dispatches count), and the fault is consumed when consulted.
        """
        self._script_lane(at_dispatch, "kill")

    def hang_lane(self, at_dispatch: int) -> None:
        """Wedge one lane of the *at_dispatch*-th dispatch past its deadline."""
        self._script_lane(at_dispatch, "hang")

    def poison_slab(self, at_gather: int) -> None:
        """Corrupt one result slab of the *at_gather*-th shared-memory gather.

        One-shot: gathers are numbered per dispatcher starting at 1; the
        corrupted slab fails CRC validation and the dispatch is recomputed.
        """
        if at_gather < 1:
            raise ValueError(f"gather count must be >= 1, got {at_gather}")
        self._slab_faults[at_gather] = True

    def _script_lane(self, at_dispatch: int, fault: str) -> None:
        if at_dispatch < 1:
            raise ValueError(f"dispatch count must be >= 1, got {at_dispatch}")
        self._lane_faults[at_dispatch] = fault

    def on_lane_dispatch(self, dispatch_no: int) -> Optional[str]:
        """The scripted fault for dispatch *dispatch_no*, consumed once."""
        return self._lane_faults.pop(dispatch_no, None)

    def on_slab_gather(self, gather_no: int) -> bool:
        """Whether gather *gather_no* is scripted to be poisoned (one-shot)."""
        return self._slab_faults.pop(gather_no, False)

    # -- the per-attempt decision --------------------------------------------------

    def on_access(
        self, extent_name: str, device: int, page_index: int, *, write: bool
    ) -> Optional[FaultDecision]:
        """Decide the fate of one access attempt (called per attempt, so a
        retried access is re-examined and scripted counters burn down)."""
        key = (extent_name, page_index, "write" if write else "read")
        remaining = self._scripted.get(key, 0)
        if remaining > 0:
            self._scripted[key] = remaining - 1
            return FaultDecision("io")
        if not write:
            ckey = (extent_name, page_index)
            remaining = self._scripted_corrupt.get(ckey, 0)
            if remaining > 0:
                self._scripted_corrupt[ckey] = remaining - 1
                return FaultDecision("corrupt")
        if self.devices is not None and device not in self.devices:
            return None
        rate = self.write_fault_rate if write else self.read_fault_rate
        if rate > 0.0 and self._rng.random() < rate:
            return FaultDecision("io")
        if not write and self.corruption_rate > 0.0:
            if self._rng.random() < self.corruption_rate:
                return FaultDecision("corrupt")
        return None
