"""Sweep checkpoints: making ``joinPartitions`` resumable after a crash.

The partition sweep is a long sequential pass whose volatile state at a
partition boundary is small and well-defined: the retained outer tuples,
the resident part of the tuple cache, and a handful of counters.  Everything
else it needs -- the input partitions, the cache spill file, the result file
-- is already on (simulated) disk.  A :class:`SweepCheckpointer` therefore
persists exactly that boundary state every ``interval`` partitions:

* the volatile tuples are written to the CHECKPOINT device as charged page
  I/O (durability is not free), followed by one metadata page;
* only after every page write succeeded is the :class:`SweepCheckpoint`
  *committed* into the :class:`RecoveryLog` -- commit-after-write, so a
  crash mid-checkpoint leaves the previous checkpoint authoritative;
* file state is captured as **watermarks** (page/tuple counts at the
  boundary).  Resume truncates the cache spill and result files back to
  their watermarks, discarding whatever the interrupted run wrote past
  them, and replays the sweep from the checkpoint position.

Replay from a boundary is bit-identical to the uninterrupted run: the sweep
is deterministic given its inputs and the restored boundary state, and the
restored counters make :class:`~repro.core.joiner.JoinOutcome` come out
identical too (the integration tests assert both).

The :class:`RecoveryLog` itself models durable metadata (a recovery
catalog).  It lives in Python memory because the crash being simulated is
the *evaluator's* -- the simulated disks, like real disks, survive it; the
caller keeps the log and the layout and hands both to
:func:`~repro.core.partition_join.resume_join`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.model.errors import CheckpointError
from repro.model.vtuple import VTTuple
from repro.storage.heapfile import HeapFile
from repro.storage.layout import Device, DiskLayout


@dataclass(frozen=True)
class SweepContext:
    """Everything the sweep needs besides checkpointed state, captured when
    the sweep starts so :func:`resume_join` can rebuild the exact call.

    ``pair_fn`` is a Python callable: the recovery log models a durable
    catalog, and a real catalog would store the predicate's identifier the
    same way.
    """

    r_parts: Sequence[HeapFile]
    s_parts: Sequence[HeapFile]
    partition_map: Any
    buff_size: int
    result_schema: Any
    collect: bool
    direction: str
    cache_memory_tuples: int
    execution: str
    result_file: HeapFile
    #: Pipelined-sweep knobs (ignored by the other execution modes); the
    #: defaults keep pre-pipeline recovery logs readable.
    prefetch_depth: int = 8
    sweep_workers: Optional[int] = None
    #: Zero-copy sweep arena geometry (an
    #: :class:`~repro.exec.arena.ArenaDescriptor`, or None for the other
    #: modes).  Geometry only -- shared-memory segments are volatile and die
    #: with the process; resume recreates fresh segments of the same shape
    #: so the restarted run degrades (or not) exactly like the original.
    arena: Optional[Any] = None
    #: True when ``r_parts``/``s_parts`` hold the inputs in *swapped*
    #: orientation (the single-partition shortcut makes the smaller relation
    #: the outer side).  Resume must re-apply the same argument flip to its
    #: ``pair_fn`` or replayed results come out payload-reversed.
    swapped: bool = False


@dataclass(frozen=True)
class SweepCheckpoint:
    """Committed boundary state after ``position`` sweep steps.

    Attributes:
        position: completed sweep steps (0 = nothing done yet; the sweep
            order -- backward or forward -- is fixed by the context).
        outer_retained: outer tuples retained in the buffer at the boundary.
        cache_resident: resident tuple-cache area at the boundary.
        cache_spill: the cache's spill file, or None when nothing spilled.
        cache_spill_pages: spill-file page watermark.
        cache_spill_tuples: spill-file tuple watermark.
        cache_name: name the cache was created under (re-used on restore).
        result_pages: result-file page watermark.
        result_tuples: result-file tuple watermark.
        n_result_tuples: emitted-result counter at the boundary.
        overflow_blocks: overflow-block counter at the boundary.
        cache_tuples_peak: cache-population peak at the boundary.
        cache_tuples_spilled: spilled-tuple counter at the boundary.
        epoch: how many checkpoints preceded this one in the run.
    """

    position: int
    outer_retained: Tuple[VTTuple, ...]
    cache_resident: Tuple[VTTuple, ...]
    cache_spill: Optional[HeapFile]
    cache_spill_pages: int
    cache_spill_tuples: int
    cache_name: Optional[str]
    result_pages: int
    result_tuples: int
    n_result_tuples: int
    overflow_blocks: int
    cache_tuples_peak: int
    cache_tuples_spilled: int
    epoch: int


@dataclass
class RecoveryLog:
    """Durable recovery metadata for one partition-join run.

    Attributes:
        plan: the executed :class:`~repro.core.planner.PartitionPlan`.
        context: the sweep's :class:`SweepContext`.
        checkpoint: the latest *committed* checkpoint.
        resumes: times this run was resumed.
    """

    plan: Any = None
    context: Optional[SweepContext] = None
    checkpoint: Optional[SweepCheckpoint] = None
    resumes: int = 0

    @property
    def resumable(self) -> bool:
        """True when a resume has everything it needs."""
        return self.context is not None and self.checkpoint is not None


class SweepCheckpointer:
    """Writes charged checkpoints of the sweep onto the CHECKPOINT device."""

    def __init__(self, layout: DiskLayout, recovery: RecoveryLog, interval: int) -> None:
        if interval < 1:
            raise CheckpointError(f"checkpoint interval must be >= 1, got {interval}")
        self._layout = layout
        self.recovery = recovery
        self.interval = interval
        self._extent = None  # allocated lazily on the first write
        self._epoch = 0

    def due(self, position: int, resume_position: int) -> bool:
        """Whether a checkpoint is due after completing *position* steps.

        Never due at the resume position itself (that state is already the
        committed checkpoint) and never at 0 (that is :meth:`begin`'s job).
        """
        return (
            position > 0
            and position != resume_position
            and position % self.interval == 0
        )

    def begin(self, context: SweepContext) -> None:
        """Record the sweep context and commit the position-0 checkpoint.

        Guarantees a crash *anywhere* in the sweep leaves something to
        resume from, at the cost of one metadata-page write.
        """
        self.recovery.context = context
        self.write(
            position=0,
            outer_retained=(),
            cache_resident=(),
            cache_spill=None,
            cache_name=None,
            result_file=context.result_file,
            n_result_tuples=0,
            overflow_blocks=0,
            cache_tuples_peak=0,
            cache_tuples_spilled=0,
        )

    def write(
        self,
        *,
        position: int,
        outer_retained: Sequence[VTTuple],
        cache_resident: Sequence[VTTuple],
        cache_spill: Optional[HeapFile],
        cache_name: Optional[str],
        result_file: HeapFile,
        n_result_tuples: int,
        overflow_blocks: int,
        cache_tuples_peak: int,
        cache_tuples_spilled: int,
    ) -> SweepCheckpoint:
        """Write and commit one checkpoint; returns it.

        The volatile tuples are paged out as charged writes before the
        metadata page; the commit into the recovery log happens last, so an
        interruption at any earlier point is harmless.
        """
        disk = self._layout.disk
        if self._extent is None:
            self._extent = disk.allocate(
                "sweep_checkpoint", device=Device.CHECKPOINT, capacity=4
            )
        capacity = self._layout.spec.capacity
        volatile: List[VTTuple] = list(outer_retained) + list(cache_resident)
        for start in range(0, len(volatile), capacity):
            disk.append(self._extent, volatile[start : start + capacity])
        checkpoint = SweepCheckpoint(
            position=position,
            outer_retained=tuple(outer_retained),
            cache_resident=tuple(cache_resident),
            cache_spill=cache_spill,
            cache_spill_pages=cache_spill.n_pages if cache_spill is not None else 0,
            cache_spill_tuples=cache_spill.n_tuples if cache_spill is not None else 0,
            cache_name=cache_name,
            result_pages=result_file.n_pages,
            result_tuples=result_file.n_tuples,
            n_result_tuples=n_result_tuples,
            overflow_blocks=overflow_blocks,
            cache_tuples_peak=cache_tuples_peak,
            cache_tuples_spilled=cache_tuples_spilled,
            epoch=self._epoch,
        )
        # The metadata page: what a real system would serialize here is the
        # checkpoint record itself.
        disk.append(self._extent, [("sweep-checkpoint", position, self._epoch)])
        # Commit point -- everything above reached "disk".
        self.recovery.checkpoint = checkpoint
        self._epoch += 1
        disk.report.checkpoints_written += 1
        return checkpoint
