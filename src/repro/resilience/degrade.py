"""Graceful degradation: keep answering when the planned evaluation cannot.

Two mechanisms, both reporting through the layout's
:class:`~repro.resilience.report.ResilienceReport`:

* **Mid-sweep buffer reduction** (:class:`BufferReduction`): the memory
  budget shrinks while the sweep runs (another workload claimed pages).
  The sweep shrinks its outer area at the given position and routes the
  excess through the Section 3.4 overflow-block machinery -- correctness
  preserved, performance degraded, exactly the paper's overflow promise.
* **Nested-loop fallback** (:func:`fallback_nested_loop_join`): a page
  failed permanently (retry policy exhausted), so partition files on the
  damaged device cannot be trusted.  The join re-runs as a block nested
  loop over *fresh placements of the base relations*, which sidesteps every
  temporary file.  Expensive -- quadratic in the smaller relation's blocks
  -- but it only needs one buffer-sized block plus one page at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.joiner import JoinOutcome, PairFn
from repro.model.relation import ValidTimeRelation
from repro.storage.layout import DiskLayout


@dataclass(frozen=True)
class BufferReduction:
    """A scheduled mid-sweep shrink of the memory budget.

    Attributes:
        at_position: sweep step (0-based, in sweep order) from which the
            reduced budget applies.
        buff_size: outer-area pages available from that step on.
    """

    at_position: int
    buff_size: int

    def __post_init__(self) -> None:
        if self.at_position < 0:
            raise ValueError(f"at_position must be >= 0, got {self.at_position}")
        if self.buff_size < 1:
            raise ValueError(f"reduced buff_size must be >= 1, got {self.buff_size}")


def fallback_nested_loop_join(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    buff_size: int,
    layout: DiskLayout,
    result_schema,
    *,
    collect: bool,
    pair_fn: PairFn,
) -> JoinOutcome:
    """Block nested-loop valid-time join over fresh base placements.

    The outer relation is read a *block* (``buff_size`` pages) at a time;
    for each block the whole inner relation streams through one page.  Pairs
    are matched on key equality and interval overlap -- no partition
    ownership filter is needed because each pair co-resides exactly once.
    Emission order is (outer block, inner page, inner row, outer row), which
    differs from the sweep's; callers comparing against it sort first.

    Charged under its own ``"degraded-join"`` phase on the layout's tracker.
    """
    r_file = layout.place_relation(r)
    s_file = layout.place_relation(s)
    result_file = layout.result_file("fallback_result")
    collected = ValidTimeRelation(result_schema) if collect else None
    outcome = JoinOutcome(result=collected)
    spec = layout.spec
    block_tuples = max(1, buff_size * spec.capacity)

    layout.disk.park_heads()
    with layout.tracker.phase("degraded-join"):
        block_starts = list(range(0, max(r_file.n_pages, 1), max(1, buff_size)))
        for block_start in block_starts:
            block = []
            for page_index in range(
                block_start, min(block_start + buff_size, r_file.n_pages)
            ):
                block.extend(r_file.read_page(page_index))
            if not block and r_file.n_pages > 0:
                continue
            probe = {}
            for tup in block:
                probe.setdefault(tup.key, []).append(tup)
            for page in s_file.scan_pages():
                for inner_tup in page:
                    for outer_tup in probe.get(inner_tup.key, ()):
                        common = outer_tup.valid.intersect(inner_tup.valid)
                        if common is None:
                            continue
                        joined = pair_fn(outer_tup, inner_tup, common)
                        if joined is None:
                            continue
                        outcome.n_result_tuples += 1
                        layout.write_result(result_file, joined)
                        if collected is not None:
                            collected.add(joined)
            layout.disk.park_heads()
        result_file.flush()
    return outcome
