"""Bounded retries with deterministic simulated backoff.

When an access attempt fails (injected transient fault, or a checksum
mismatch on a delivered page), the disk re-issues it under a
:class:`RetryPolicy`: up to ``max_retries`` further attempts, each preceded
by a *backoff penalty* of charged I/O operations.  The penalty is linear and
deterministic -- retry attempt ``i`` costs ``backoff_ops * i`` extra
operations -- modeling the settle/re-seek a controller pays before retrying,
without introducing wall-clock time into the simulation.

Every re-attempt and every penalty operation is charged to the normal
:class:`~repro.storage.iostats.IOStatistics` buckets (so retries raise the
reported evaluation cost exactly like real extra I/O) and additionally
tagged in the ``retry_reads``/``retry_writes`` counters so fault overhead
stays separately visible.  See ``docs/RESILIENCE.md`` for the full cost
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds and backoff shape of the disk's fault-retry loop.

    Attributes:
        max_retries: re-attempts after the first failure before the access
            is declared permanently failed (0 = fail immediately).
        backoff_ops: charged penalty operations before retry attempt ``i``
            is ``backoff_ops * i`` (0 = retry for free).
    """

    max_retries: int = 2
    backoff_ops: int = 1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_ops < 0:
            raise ValueError(f"backoff_ops must be >= 0, got {self.backoff_ops}")

    def penalty(self, attempt: int) -> int:
        """Charged backoff operations before retry *attempt* (1-based)."""
        if attempt < 1:
            raise ValueError(f"retry attempts are 1-based, got {attempt}")
        return self.backoff_ops * attempt


@dataclass(frozen=True)
class ResiliencePolicy:
    """One-stop resilience configuration for high-level entry points.

    Bundles the knobs a caller of :class:`~repro.engine.database.
    TemporalDatabase` (or other facades) cares about, mapped onto the
    storage- and join-layer mechanisms underneath.

    Attributes:
        retry_limit: ``max_retries`` of the disk's :class:`RetryPolicy`.
        backoff_ops: its backoff shape.
        checksums: store checksummed page frames and verify on read.
        checkpoint_interval: partitions between sweep checkpoints
            (0 disables checkpointing).
        degraded_fallback: fall back to a nested-loop evaluation when a
            page fails permanently, instead of aborting the join.
    """

    retry_limit: int = 2
    backoff_ops: int = 1
    checksums: bool = True
    checkpoint_interval: int = 4
    degraded_fallback: bool = True

    def __post_init__(self) -> None:
        if self.retry_limit < 0:
            raise ValueError(f"retry_limit must be >= 0, got {self.retry_limit}")
        if self.backoff_ops < 0:
            raise ValueError(f"backoff_ops must be >= 0, got {self.backoff_ops}")
        if self.checkpoint_interval < 0:
            raise ValueError(
                f"checkpoint_interval must be >= 0 (0 disables checkpointing), "
                f"got {self.checkpoint_interval}"
            )

    def retry_policy(self) -> RetryPolicy:
        """The disk-layer policy this configuration maps to."""
        return RetryPolicy(max_retries=self.retry_limit, backoff_ops=self.backoff_ops)
