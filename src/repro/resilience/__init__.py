"""Resilience: fault injection, retries, checkpoints, and degradation.

The subsystem that lets the reproduction keep its promises when the
simulated hardware misbehaves.  See ``docs/RESILIENCE.md`` for the model.

Leaf modules (:mod:`~repro.resilience.faults`, :mod:`~repro.resilience.retry`,
:mod:`~repro.resilience.report`) depend only on :mod:`repro.model.errors`,
so the storage layer imports them without cycles.  The modules that sit
*above* storage (:mod:`~repro.resilience.checkpoint`,
:mod:`~repro.resilience.degrade`) are re-exported lazily: importing them
eagerly here would run before :mod:`repro.storage.disk` finishes importing
the leaves, closing an import cycle.
"""

from repro.resilience.faults import FaultDecision, FaultInjector
from repro.resilience.report import DegradationEvent, ResilienceReport
from repro.resilience.retry import ResiliencePolicy, RetryPolicy

__all__ = [
    "BufferReduction",
    "DegradationEvent",
    "FaultDecision",
    "FaultInjector",
    "LaneSupervisionStats",
    "LaneSupervisor",
    "RecoveryLog",
    "ResiliencePolicy",
    "ResilienceReport",
    "RetryPolicy",
    "SupervisionPolicy",
    "SweepCheckpoint",
    "SweepCheckpointer",
    "SweepContext",
    "fallback_nested_loop_join",
]

_LAZY = {
    "RecoveryLog": "repro.resilience.checkpoint",
    "SweepCheckpoint": "repro.resilience.checkpoint",
    "SweepCheckpointer": "repro.resilience.checkpoint",
    "SweepContext": "repro.resilience.checkpoint",
    "BufferReduction": "repro.resilience.degrade",
    "fallback_nested_loop_join": "repro.resilience.degrade",
    # Lazy: the supervisor pulls in multiprocessing, which the storage
    # leaves never need.
    "LaneSupervisionStats": "repro.resilience.supervisor",
    "LaneSupervisor": "repro.resilience.supervisor",
    "SupervisionPolicy": "repro.resilience.supervisor",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
