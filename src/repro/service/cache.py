"""Epoch-keyed plan and result caches.

Both caches key on the *relation version epochs* of a query's inputs (plus
the frozen :class:`~repro.core.partition_join.PartitionJoinConfig`), which
is what makes invalidation trivial and correct: any append/delete installs
a new version at a new epoch, so a later identical query simply misses --
it can never observe a stale entry.  Explicit
:meth:`~EpochKeyedCache.invalidate_relation` additionally evicts the dead
entries eagerly (bounding memory and feeding the
``repro_service_cache_invalidations_total`` metric); it shares the epoch
discipline of the incremental-view machinery, which maintains its views on
exactly the same catalog mutations (see
:meth:`repro.engine.catalog.VersionedCatalog.attach_view`).

A result-cache hit serves the stored relation and
:class:`~repro.core.joiner.JoinOutcome` with **zero charged I/O**: no disk
layout is ever built, so there is nothing to charge -- the property the
perf-smoke CI gate asserts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.core.joiner import JoinOutcome
from repro.core.partition_join import PartitionJoinConfig
from repro.core.planner import PartitionPlan
from repro.model.errors import ServiceError
from repro.model.relation import ValidTimeRelation


@dataclass
class CacheStats:
    """Hit/miss accounting of one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class EpochKeyedCache:
    """A bounded LRU cache whose keys carry the relation names they cover.

    Keys are arbitrary hashables; the constructor-supplied position of the
    relation names inside the key drives :meth:`invalidate_relation`.
    Thread-safe: one lock serializes lookups, inserts, and invalidation.
    """

    def __init__(self, capacity: int, *, name: str) -> None:
        if capacity < 1:
            raise ServiceError(f"cache {name!r} needs capacity >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._names: Dict[Hashable, Tuple[str, ...]] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key: Hashable, value: Any, *, names: Tuple[str, ...]) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                self._names[key] = names
                return
            while len(self._entries) >= self.capacity:
                victim, _ = self._entries.popitem(last=False)
                self._names.pop(victim, None)
                self.stats.evictions += 1
            self._entries[key] = value
            self._names[key] = names

    def invalidate_relation(self, name: str) -> int:
        """Drop every entry whose inputs include *name*; returns the count."""
        with self._lock:
            dead = [k for k, names in self._names.items() if name in names]
            for key in dead:
                del self._entries[key]
                del self._names[key]
            self.stats.invalidations += len(dead)
            return len(dead)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._names.clear()


@dataclass(frozen=True)
class CachedJoin:
    """A completed join, replayable from cache with zero charged I/O.

    The relation and outcome are shared, never copied: every producer in
    this library materializes a fresh result relation per run and nothing
    mutates one afterwards, so sharing is safe and O(1).

    Attributes:
        relation: the materialized result.
        outcome: the run's :class:`~repro.core.joiner.JoinOutcome` (counters
            included, so a cached reply is bit-identical to the run's).
        algorithm: which join algorithm produced it.
        cost: the producing run's weighted I/O cost (reported for context;
            a cache hit itself charges nothing).
        charged_ops: the producing run's charged operation count.
        epochs: ``(outer_epoch, inner_epoch)`` of the inputs joined.
    """

    relation: Optional[ValidTimeRelation]
    outcome: JoinOutcome
    algorithm: str
    cost: float
    charged_ops: int
    epochs: Tuple[int, int]


def plan_key(
    outer: str,
    inner: str,
    epochs: Tuple[int, int],
    config: PartitionJoinConfig,
) -> Tuple:
    """The plan-cache key: inputs at exact versions under an exact config."""
    return ("plan", outer, inner, epochs, config)


def result_key(
    outer: str,
    inner: str,
    epochs: Tuple[int, int],
    method: str,
    config: PartitionJoinConfig,
) -> Tuple:
    """The result-cache key (method included: algorithms emit different orders)."""
    return ("result", outer, inner, epochs, method, config)


class PlanCache(EpochKeyedCache):
    """Cached :class:`~repro.core.planner.PartitionPlan` per (epochs, config).

    A hit lets ``partition_join(plan=...)`` skip the whole sampling phase --
    identical results (the plan fully determines the partitioning), minus
    the sample I/O.
    """

    def __init__(self, capacity: int = 256) -> None:
        super().__init__(capacity, name="plan")

    def lookup(
        self,
        outer: str,
        inner: str,
        epochs: Tuple[int, int],
        config: PartitionJoinConfig,
    ) -> Optional[PartitionPlan]:
        return self.get(plan_key(outer, inner, epochs, config))

    def store(
        self,
        outer: str,
        inner: str,
        epochs: Tuple[int, int],
        config: PartitionJoinConfig,
        plan: PartitionPlan,
    ) -> None:
        self.put(plan_key(outer, inner, epochs, config), plan, names=(outer, inner))


class InternerCache(EpochKeyedCache):
    """Cached :class:`~repro.exec.batch.SharedKeyInterner` per relation version.

    The batch kernels intern every join key of the *outer* (build-side)
    relation into dense ids, and before this cache each join rebuilt that
    map from scratch -- pure churn when a session re-joins the same
    relation version.  The interner keys on ``(outer, epoch, backend)``:
    the epoch discipline makes staleness impossible (a mutation installs a
    new epoch, so the next query misses and interns fresh), and the backend
    tag keeps a pure-python run from feeding numpy id tables.

    Sharing is result-identical by construction: interner ids are a
    private, order-dependent encoding that the final emission sort erases,
    which is also why a *shared* (lock-guarded) interner can serve
    concurrent queries -- whatever order their interleaved interns assign
    ids in, every query's output is the same.
    """

    def __init__(self, capacity: int = 64) -> None:
        super().__init__(capacity, name="interner")

    def lookup_or_create(self, outer: str, epoch: int, backend: str):
        """The relation version's shared interner, created on first use.

        Atomic under the cache lock: concurrent queries on the same version
        always receive the *same* interner object (two private interners
        would still be correct, just churn).
        """
        from repro.exec.batch import SharedKeyInterner

        key = ("interner", outer, epoch, backend)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
            self.stats.misses += 1
            entry = SharedKeyInterner()
            while len(self._entries) >= self.capacity:
                victim, _ = self._entries.popitem(last=False)
                self._names.pop(victim, None)
                self.stats.evictions += 1
            self._entries[key] = entry
            self._names[key] = (outer,)
            return entry


class ResultCache(EpochKeyedCache):
    """Cached :class:`CachedJoin` per (epochs, method, config)."""

    def __init__(self, capacity: int = 256) -> None:
        super().__init__(capacity, name="result")

    def lookup(
        self,
        outer: str,
        inner: str,
        epochs: Tuple[int, int],
        method: str,
        config: PartitionJoinConfig,
    ) -> Optional[CachedJoin]:
        return self.get(result_key(outer, inner, epochs, method, config))

    def store(
        self,
        outer: str,
        inner: str,
        epochs: Tuple[int, int],
        method: str,
        config: PartitionJoinConfig,
        value: CachedJoin,
    ) -> None:
        self.put(
            result_key(outer, inner, epochs, method, config),
            value,
            names=(outer, inner),
        )
