"""The concurrent query service: sessions, admission, isolation, caching.

The serving layer the ROADMAP's north star asks for: many concurrent
sessions evaluating valid-time joins over one
:class:`~repro.engine.catalog.VersionedCatalog`, sharing one buffer budget
without ever oversubscribing it.  Five cooperating pieces (see
``docs/SERVICE.md``):

* :mod:`repro.service.admission` -- memory-grant admission control over a
  shared (thread-safe) :class:`~repro.storage.buffer.BufferPool`, sized by
  the planner's :func:`~repro.core.planner.estimate_grant_pages`, with
  FIFO / smallest-grant-first policies, degradation under pressure, and
  :class:`~repro.model.errors.AdmissionTimeoutError` on timeout;
* :mod:`repro.service.cache` -- the epoch-keyed plan and result caches;
* :mod:`repro.service.breaker` -- the lane circuit breaker that trips
  pooled execution to serial after clustered worker-lane failures and
  half-opens on probe queries;
* :mod:`repro.service.executor` -- a worker-thread executor with a bounded
  run queue, per-query cancellation, and whole-query deadline budgets;
* :mod:`repro.service.session` -- session lifecycle and per-session
  configuration overrides;
* :mod:`repro.service.service` -- :class:`QueryService`, tying the above
  together and exposing the ``repro_service_*`` metric families.

Snapshot isolation: every query joins against the catalog snapshot it took
at submission; the property suite proves each result bit-identical to a
serial replay at the same snapshot epochs, in all four execution modes.
"""

from repro.model.errors import (
    AdmissionTimeoutError,
    QueryCancelledError,
    QueryDeadlineError,
    ServiceError,
    SessionClosedError,
)
from repro.service.admission import AdmissionController, MemoryGrant
from repro.service.breaker import LaneCircuitBreaker
from repro.service.cache import CachedJoin, PlanCache, ResultCache
from repro.service.executor import QueryExecutor, QueryHandle
from repro.service.service import QueryService, ServiceQueryResult
from repro.service.session import Session, SessionConfig
from repro.service.workload import (
    demo_workload,
    load_workload,
    run_workload,
)

__all__ = [
    "AdmissionController",
    "AdmissionTimeoutError",
    "CachedJoin",
    "LaneCircuitBreaker",
    "MemoryGrant",
    "PlanCache",
    "QueryCancelledError",
    "QueryDeadlineError",
    "QueryExecutor",
    "QueryHandle",
    "QueryService",
    "ResultCache",
    "ServiceError",
    "ServiceQueryResult",
    "Session",
    "SessionClosedError",
    "SessionConfig",
    "demo_workload",
    "load_workload",
    "run_workload",
]
