"""Memory-grant admission control over a shared buffer pool.

The paper's ``buffSize`` is a *per-evaluation* budget; a serving layer has
one physical budget shared by every concurrent query.  The
:class:`AdmissionController` arbitrates it: a query asks for the pages the
planner says it can use (:func:`~repro.core.planner.estimate_grant_pages`),
and the controller either grants them immediately, queues the request, or
-- under sustained pressure -- hands out a *degraded* grant that the join
layer absorbs through its PR-2 replan ladder (a smaller pool triggers
``partition_join``'s re-plan degradation instead of a failure).

Two admission policies:

* ``"fifo"`` -- strict arrival order.  Predictable latency, but a large
  request at the head blocks smaller ones behind it (head-of-line
  blocking; the price of fairness).
* ``"smallest"`` -- smallest-grant-first, ties broken by arrival.  Maximizes
  throughput under mixed sizes, can starve big queries under a steady
  trickle of small ones (the degrade/timeout bounds the damage).

The invariant the test-suite asserts at every instant: granted pages never
exceed the pool's capacity.  The accounting runs through the thread-safe
:class:`~repro.storage.buffer.BufferPool`, whose atomic check-then-charge
makes oversubscription structurally impossible rather than merely tested.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.planner import MIN_GRANT_PAGES
from repro.model.errors import (
    AdmissionTimeoutError,
    QueryCancelledError,
    ServiceError,
)
from repro.storage.buffer import BufferPool, Reservation

#: Admission policies the controller understands.
ADMISSION_POLICIES = ("fifo", "smallest")

#: Upper bound on one condition wait, so cancellation and the degradation
#: deadline are observed promptly even with no grant churn.
_WAIT_SLICE_SECONDS = 0.05


@dataclass
class AdmissionEvent:
    """One noteworthy admission decision, for the service's report."""

    kind: str  # "clamp" | "degraded-grant" | "timeout"
    label: str
    requested_pages: int
    granted_pages: int = 0
    detail: str = ""


class MemoryGrant:
    """Pages granted to one query; release returns them to the pool.

    Usable as a context manager.  Two distinct shortfalls:

    * ``clamped`` -- the original ask exceeded the whole pool, so the
      *request* was cut down to capacity before queueing.  Deterministic:
      the same ask against the same pool always clamps the same way.
    * ``degraded`` -- the controller granted fewer pages than the
      (post-clamp) request because pressure outlasted ``degrade_after``.
      Nondeterministic: the grant depends on whatever happened to be free.

    ``requested_pages`` is the post-clamp request (what admission actually
    tried to satisfy, and what ``degraded_grants`` counts against);
    ``asked_pages`` preserves the caller's original ask.
    """

    def __init__(
        self,
        controller: "AdmissionController",
        reservation: Reservation,
        requested_pages: int,
        queue_wait_seconds: float,
        *,
        asked_pages: Optional[int] = None,
    ) -> None:
        self._controller = controller
        self._reservation = reservation
        self.pages = reservation.pages
        self.requested_pages = requested_pages
        self.asked_pages = asked_pages if asked_pages is not None else requested_pages
        self.queue_wait_seconds = queue_wait_seconds
        self._released = False

    @property
    def degraded(self) -> bool:
        return self.pages < self.requested_pages

    @property
    def clamped(self) -> bool:
        return self.requested_pages < self.asked_pages

    def release(self) -> None:
        """Return the pages (idempotent)."""
        if self._released:
            return
        self._released = True
        self._controller._release(self._reservation)

    def __enter__(self) -> "MemoryGrant":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.release()


@dataclass
class _Waiter:
    ticket: int
    pages: int
    min_pages: int
    label: str


class AdmissionController:
    """Grants buffer-pool pages to queries under a fixed capacity.

    Args:
        capacity_pages: the shared budget (the service's whole buffer pool).
        policy: ``"fifo"`` or ``"smallest"`` (smallest-grant-first).
        default_timeout: seconds a request may queue before
            :class:`~repro.model.errors.AdmissionTimeoutError`.
        degrade_after: seconds of queueing after which an eligible waiter
            accepts a *smaller* grant (down to its ``min_pages``) instead of
            continuing to wait for the full request.  None disables
            degradation (queue until timeout).
    """

    def __init__(
        self,
        capacity_pages: int,
        *,
        policy: str = "fifo",
        default_timeout: float = 30.0,
        degrade_after: Optional[float] = None,
    ) -> None:
        if policy not in ADMISSION_POLICIES:
            raise ServiceError(
                f"admission policy must be one of {ADMISSION_POLICIES}, got {policy!r}"
            )
        if default_timeout <= 0:
            raise ServiceError(
                f"default_timeout must be positive, got {default_timeout}"
            )
        if degrade_after is not None and degrade_after < 0:
            raise ServiceError(
                f"degrade_after must be >= 0 (or None), got {degrade_after}"
            )
        self.pool = BufferPool(capacity_pages)
        self.policy = policy
        self.default_timeout = default_timeout
        self.degrade_after = degrade_after
        self._condition = threading.Condition()
        self._queue: List[_Waiter] = []
        self._tickets = 0
        self.peak_granted_pages = 0
        self.timeouts = 0
        self.degraded_grants = 0
        self.clamped_requests = 0
        self.grants = 0
        self.events: List[AdmissionEvent] = []
        # Per-owner accounting (owner = e.g. a session): pages currently
        # granted and the high-water mark, keyed by the owner string.
        self._owner_granted: Dict[str, int] = {}
        self._owner_peak: Dict[str, int] = {}
        self._reservation_owner: Dict[int, Tuple[str, int]] = {}

    # -- introspection -------------------------------------------------------

    @property
    def capacity_pages(self) -> int:
        return self.pool.total_pages

    @property
    def granted_pages(self) -> int:
        """Pages currently granted (never exceeds capacity)."""
        return self.pool.used_pages

    @property
    def queued_pages(self) -> int:
        """Pages currently asked for by queued requests."""
        with self._condition:
            return sum(w.pages for w in self._queue)

    @property
    def queue_length(self) -> int:
        with self._condition:
            return len(self._queue)

    def owner_peak_pages(self) -> Dict[str, int]:
        """Per-owner granted-page high-water marks (owner = e.g. a session).

        Only requests that passed ``owner=`` to :meth:`acquire` appear;
        the peak covers every concurrent grant the owner held at once.
        """
        with self._condition:
            return dict(self._owner_peak)

    # -- the grant loop ------------------------------------------------------

    def acquire(
        self,
        pages: int,
        *,
        label: str = "query",
        timeout: Optional[float] = None,
        min_pages: Optional[int] = None,
        cancelled: Optional[threading.Event] = None,
        owner: Optional[str] = None,
    ) -> MemoryGrant:
        """Wait for a grant of *pages* pages under the configured policy.

        Args:
            pages: the full request (clamped to capacity, with an event
                recorded, when it exceeds the whole pool).
            label: diagnostic name carried on the pool reservation.
            timeout: per-request override of ``default_timeout``.
            min_pages: smallest acceptable degraded grant (defaults to
                :data:`~repro.core.planner.MIN_GRANT_PAGES`); only used when
                ``degrade_after`` is configured.
            cancelled: optional event; when set while queued, the wait
                aborts with :class:`~repro.model.errors.QueryCancelledError`.
            owner: optional accounting key (e.g. a session id); grants are
                rolled into :meth:`owner_peak_pages` per owner.

        Raises:
            AdmissionTimeoutError: no grant within the timeout.
            QueryCancelledError: *cancelled* was set while waiting.
        """
        if pages < 1:
            raise ServiceError(f"cannot request {pages} pages")
        requested = pages
        if requested > self.capacity_pages:
            # The request can never fit whole: clamp to the pool and let the
            # join's replan ladder absorb the difference.
            requested = self.capacity_pages
            with self._condition:
                self.clamped_requests += 1
                self.events.append(
                    AdmissionEvent(
                        kind="clamp",
                        label=label,
                        requested_pages=pages,
                        granted_pages=requested,
                        detail=f"request exceeds pool capacity {self.capacity_pages}",
                    )
                )
        floor = MIN_GRANT_PAGES if min_pages is None else min_pages
        floor = max(1, min(floor, requested))
        wait_limit = self.default_timeout if timeout is None else timeout
        begin = time.monotonic()
        deadline = begin + wait_limit
        degrade_at = (
            begin + self.degrade_after if self.degrade_after is not None else None
        )

        with self._condition:
            self._tickets += 1
            waiter = _Waiter(self._tickets, requested, floor, label)
            self._queue.append(waiter)
            try:
                while True:
                    if cancelled is not None and cancelled.is_set():
                        raise QueryCancelledError(
                            f"admission wait for {label!r} cancelled",
                            requested_pages=pages,
                        )
                    now = time.monotonic()
                    grant_pages = self._grantable(waiter, now, degrade_at)
                    if grant_pages is not None:
                        reservation = self.pool.reserve(label, grant_pages)
                        self._queue.remove(waiter)
                        self.grants += 1
                        if grant_pages < requested:
                            self.degraded_grants += 1
                            self.events.append(
                                AdmissionEvent(
                                    kind="degraded-grant",
                                    label=label,
                                    requested_pages=requested,
                                    granted_pages=grant_pages,
                                    detail="pressure past degrade_after",
                                )
                            )
                        self.peak_granted_pages = max(
                            self.peak_granted_pages, self.pool.used_pages
                        )
                        if owner is not None:
                            held = self._owner_granted.get(owner, 0) + grant_pages
                            self._owner_granted[owner] = held
                            self._owner_peak[owner] = max(
                                self._owner_peak.get(owner, 0), held
                            )
                            self._reservation_owner[id(reservation)] = (
                                owner,
                                grant_pages,
                            )
                        self._condition.notify_all()
                        return MemoryGrant(
                            self,
                            reservation,
                            requested,
                            now - begin,
                            asked_pages=pages,
                        )
                    if now >= deadline:
                        self.timeouts += 1
                        self.events.append(
                            AdmissionEvent(
                                kind="timeout",
                                label=label,
                                requested_pages=requested,
                                detail=f"no grant within {wait_limit:.3f}s",
                            )
                        )
                        raise AdmissionTimeoutError(
                            f"admission of {label!r} ({requested} pages) timed "
                            f"out after {wait_limit:.3f}s "
                            f"({self.granted_pages}/{self.capacity_pages} pages "
                            f"granted, {len(self._queue) - 1} other waiters)",
                            requested_pages=requested,
                            timeout=wait_limit,
                        )
                    slice_end = min(deadline, now + _WAIT_SLICE_SECONDS)
                    if degrade_at is not None and now < degrade_at:
                        slice_end = min(slice_end, degrade_at + 1e-4)
                    self._condition.wait(max(1e-4, slice_end - now))
            finally:
                if waiter in self._queue:
                    self._queue.remove(waiter)
                    self._condition.notify_all()

    def _grantable(
        self, waiter: _Waiter, now: float, degrade_at: Optional[float]
    ) -> Optional[int]:
        """Pages *waiter* may take right now, or None (caller holds the lock)."""
        if not self._eligible(waiter):
            return None
        free = self.pool.total_pages - self.pool.used_pages
        if free >= waiter.pages:
            return waiter.pages
        if degrade_at is not None and now >= degrade_at and free >= waiter.min_pages:
            return max(waiter.min_pages, min(waiter.pages, free))
        return None

    def _eligible(self, waiter: _Waiter) -> bool:
        """Is *waiter* next under the policy? (Caller holds the lock.)"""
        if self.policy == "fifo":
            return self._queue[0] is waiter
        best = min(self._queue, key=lambda w: (w.pages, w.ticket))
        return best is waiter

    def _release(self, reservation: Reservation) -> None:
        reservation.release()
        with self._condition:
            owned = self._reservation_owner.pop(id(reservation), None)
            if owned is not None:
                owner, pages = owned
                remaining = self._owner_granted.get(owner, 0) - pages
                if remaining > 0:
                    self._owner_granted[owner] = remaining
                else:
                    self._owner_granted.pop(owner, None)
            self._condition.notify_all()
