"""A worker-thread executor with a bounded run queue and cancellation.

Deliberately tiny compared to :mod:`concurrent.futures`: the service needs
exactly three behaviors the stdlib pool does not give cleanly together --
a *bounded* run queue that rejects (rather than silently buffers) work when
the service is saturated, per-query cooperative cancellation that also
aborts an admission wait already in progress, and deterministic teardown.

A submitted callable receives its own :class:`QueryHandle` and should poll
``handle.cancel_requested`` (or pass ``handle.cancel_event`` into blocking
waits) at its cancellation points.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Set

from repro.model.errors import (
    QueryCancelledError,
    QueryDeadlineError,
    ServiceError,
)


class QueryHandle:
    """The caller's view of one submitted query.

    A handle optionally carries a *deadline*: a wall-clock budget covering
    everything from submission on -- run-queue wait, admission wait, and
    execution.  The clock starts at handle creation (submission), so a
    query stuck behind a full run queue burns budget exactly like one
    stuck in an admission queue.
    """

    def __init__(
        self,
        query_id: int,
        label: str = "",
        deadline_seconds: Optional[float] = None,
    ) -> None:
        self.query_id = query_id
        self.label = label
        self.deadline_seconds = deadline_seconds
        self._deadline = (
            time.monotonic() + deadline_seconds
            if deadline_seconds is not None
            else None
        )
        self.cancel_event = threading.Event()
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._started = False
        self._cancelled = False

    # -- state ---------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def cancel_requested(self) -> bool:
        """True once cancel() was called; running queries poll this."""
        return self.cancel_event.is_set()

    def check_cancelled(self) -> None:
        """Raise :class:`QueryCancelledError` if cancellation was requested."""
        if self.cancel_event.is_set():
            raise QueryCancelledError(
                f"query {self.query_id} ({self.label or 'unlabeled'}) cancelled"
            )

    # -- deadline --------------------------------------------------------------

    def remaining_seconds(self) -> Optional[float]:
        """Deadline budget left (never negative); None when unbudgeted."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    def check_deadline(self) -> None:
        """Raise :class:`QueryDeadlineError` once the deadline budget is spent."""
        if self._deadline is not None and time.monotonic() >= self._deadline:
            raise QueryDeadlineError(
                f"query {self.query_id} ({self.label or 'unlabeled'}) exceeded "
                f"its {self.deadline_seconds:.3f}s deadline budget",
                deadline_seconds=self.deadline_seconds,
            )

    # -- completion ----------------------------------------------------------

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the result; re-raises the query's error if it failed."""
        if not self._done.wait(timeout):
            raise ServiceError(
                f"query {self.query_id} still running after {timeout}s wait"
            )
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        if not self._done.wait(timeout):
            raise ServiceError(
                f"query {self.query_id} still running after {timeout}s wait"
            )
        return self._error

    def cancel(self) -> bool:
        """Request cancellation.

        A query still in the run queue is cancelled for certain; a running
        query is cancelled at its next cancellation point.  Returns False
        when the query already finished.
        """
        with self._lock:
            if self._done.is_set():
                return False
            self.cancel_event.set()
            if not self._started:
                self._cancelled = True
                self._error = QueryCancelledError(
                    f"query {self.query_id} ({self.label or 'unlabeled'}) "
                    f"cancelled before it started"
                )
                self._done.set()
            return True

    # -- executor side -------------------------------------------------------

    def _claim(self) -> bool:
        """Mark started; False when cancel() won the race (skip the work)."""
        with self._lock:
            if self._done.is_set():
                return False
            self._started = True
            return True

    def _finish(self, result: Any = None, error: Optional[BaseException] = None) -> None:
        with self._lock:
            if self._done.is_set():
                return
            self._result = result
            self._error = error
            if isinstance(error, QueryCancelledError):
                self._cancelled = True
            self._done.set()


class QueryExecutor:
    """Fixed worker threads draining a bounded FIFO run queue.

    Args:
        workers: worker-thread count.
        queue_limit: maximum *queued* (not yet started) queries; submit
            raises :class:`~repro.model.errors.ServiceError` beyond it, so
            saturation is visible at the edge instead of an unbounded
            buffer deep inside.
    """

    def __init__(self, workers: int = 4, queue_limit: int = 256, name: str = "repro-svc") -> None:
        if workers < 1:
            raise ServiceError(f"executor needs >= 1 worker, got {workers}")
        if queue_limit < 1:
            raise ServiceError(f"queue_limit must be >= 1, got {queue_limit}")
        self.workers = workers
        self.queue_limit = queue_limit
        self._condition = threading.Condition()
        self._queue: Deque = deque()
        self._shutdown = False
        self._query_ids = 0
        self._active = 0
        self._running: Set[QueryHandle] = set()
        self._threads: List[threading.Thread] = [
            threading.Thread(target=self._work, name=f"{name}-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- introspection -------------------------------------------------------

    @property
    def queued(self) -> int:
        with self._condition:
            return len(self._queue)

    @property
    def active(self) -> int:
        with self._condition:
            return self._active

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        fn: Callable[[QueryHandle], Any],
        *,
        label: str = "",
        deadline_seconds: Optional[float] = None,
    ) -> QueryHandle:
        """Queue *fn* for execution; returns its handle immediately.

        ``deadline_seconds`` starts the handle's whole-query deadline clock
        now, so run-queue wait counts against the budget.

        Raises:
            ServiceError: executor shut down, or the run queue is full.
        """
        with self._condition:
            if self._shutdown:
                raise ServiceError("executor is shut down")
            if len(self._queue) >= self.queue_limit:
                raise ServiceError(
                    f"run queue full ({self.queue_limit} queries queued); "
                    f"retry later or raise queue_limit"
                )
            self._query_ids += 1
            handle = QueryHandle(self._query_ids, label, deadline_seconds)
            self._queue.append((handle, fn))
            self._condition.notify()
            return handle

    def shutdown(
        self,
        *,
        wait: bool = True,
        cancel_queued: bool = True,
        cancel_running: bool = False,
    ) -> None:
        """Stop accepting work; optionally cancel the backlog and join.

        ``cancel_queued`` cancels not-yet-started queries for certain.
        ``cancel_running`` additionally requests cancellation of in-flight
        queries: their blocking waits (admission queues observe the cancel
        event) abort promptly, and cooperative queries stop at their next
        cancellation point -- so teardown doesn't sit behind a long
        admission wait.
        """
        with self._condition:
            self._shutdown = True
            backlog = list(self._queue) if cancel_queued else []
            if cancel_queued:
                self._queue.clear()
            running = list(self._running) if cancel_running else []
            self._condition.notify_all()
        for handle, _ in backlog:
            handle.cancel()
        for handle in running:
            handle.cancel()
        if wait:
            for thread in self._threads:
                thread.join(timeout=10.0)

    # -- the worker loop -----------------------------------------------------

    def _work(self) -> None:
        while True:
            with self._condition:
                while not self._queue and not self._shutdown:
                    self._condition.wait()
                if not self._queue:
                    return  # shutdown with an empty queue
                handle, fn = self._queue.popleft()
                self._active += 1
                self._running.add(handle)
            try:
                if not handle._claim():
                    continue  # cancelled while queued
                try:
                    handle._finish(result=fn(handle))
                except BaseException as error:  # noqa: BLE001 -- handed to caller
                    handle._finish(error=error)
            finally:
                with self._condition:
                    self._active -= 1
                    self._running.discard(handle)
                    self._condition.notify_all()
