"""A lane circuit breaker: stop paying for lane recovery when lanes keep dying.

The :class:`~repro.resilience.supervisor.LaneSupervisor` makes individual
lane failures survivable -- re-dispatch is bit-identical, so one crashed
worker costs a retry, not a wrong answer.  But when lane failures *cluster*
(a host out of memory, a cgroup killing children, a poisoned numpy build),
every pooled query pays the detection deadline plus the re-dispatch before
it lands on the same failure again.  The service-level answer is the classic
circuit breaker:

* **closed** -- lanes allowed.  Each lane-disturbed run (any ``lane-*``
  :class:`~repro.resilience.report.DegradationEvent`) counts toward a
  sliding window; ``threshold`` failures inside ``window_seconds`` trip the
  breaker.
* **open** -- queries run serial (``sweep_workers=1``, supervision off): no
  pools are spawned at all.  Results stay bit-identical -- lane count never
  affects the answer -- so this is purely a latency/ throughput trade.
* **half-open** -- after ``cooldown_seconds`` the next query is admitted to
  lanes as a *probe*; its peers stay serial until it reports back.  A clean
  probe closes the breaker; a disturbed one reopens it for another cooldown.

Serial runs report nothing (they cannot observe lane health), so a stream
of probes under continuous failure costs exactly one lane attempt per
cooldown period.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List

from repro.model.errors import ServiceError

#: Breaker states, in gauge order (0=closed, 1=open, 2=half-open).
BREAKER_STATES = ("closed", "open", "half-open")


class LaneCircuitBreaker:
    """Trips pooled execution to serial after clustered lane failures.

    Args:
        threshold: lane-disturbed runs within the window that trip the
            breaker.
        window_seconds: sliding failure-counting window.
        cooldown_seconds: how long the breaker stays open before admitting
            a half-open probe.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        threshold: int = 3,
        window_seconds: float = 60.0,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ServiceError(f"breaker threshold must be >= 1, got {threshold}")
        if window_seconds <= 0:
            raise ServiceError(
                f"breaker window_seconds must be positive, got {window_seconds}"
            )
        if cooldown_seconds < 0:
            raise ServiceError(
                f"breaker cooldown_seconds must be >= 0, got {cooldown_seconds}"
            )
        self.threshold = threshold
        self.window_seconds = window_seconds
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures: List[float] = []
        self._opened_at = 0.0
        self._probing = False
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def state_index(self) -> int:
        """The state as a gauge value (see :data:`BREAKER_STATES`)."""
        return BREAKER_STATES.index(self.state)

    def admit(self) -> bool:
        """May the next query use lanes?  False means run serial.

        An open breaker past its cooldown admits exactly one caller as the
        half-open probe; everyone else stays serial until the probe's
        :meth:`record` lands.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at < self.cooldown_seconds:
                    return False
                self._state = "half-open"
                self._probing = True
                return True
            # half-open: one probe at a time.
            if self._probing:
                return False
            self._probing = True
            return True

    def record(self, used_lanes: bool, lane_failed: bool) -> None:
        """Report one finished query's lane health.

        Serial runs (``used_lanes=False``) carry no signal and are ignored;
        a pooled run either feeds the failure window or -- as the half-open
        probe -- decides the breaker's fate outright.
        """
        if not used_lanes:
            return
        with self._lock:
            now = self._clock()
            if self._state == "half-open":
                self._probing = False
                if lane_failed:
                    self._trip(now)
                else:
                    self._state = "closed"
                    self._failures.clear()
                return
            if not lane_failed:
                return
            self._failures.append(now)
            horizon = now - self.window_seconds
            self._failures = [t for t in self._failures if t > horizon]
            if self._state == "closed" and len(self._failures) >= self.threshold:
                self._trip(now)

    def _trip(self, now: float) -> None:
        """Open the breaker (caller holds the lock)."""
        self._state = "open"
        self._opened_at = now
        self._probing = False
        self._failures.clear()
        self.trips += 1


__all__ = ["BREAKER_STATES", "LaneCircuitBreaker"]
