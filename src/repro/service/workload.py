"""Declarative concurrent workloads for the query service.

A workload is a list of JSON statements (one object per line in a ``.jsonl``
script).  *Setup* statements build the catalog serially; *serve* statements
carry a ``"session"`` number and are replayed concurrently -- one thread per
session, each session's statements in order (so a session sees its own
writes, while cross-session interleaving is up to the scheduler, exactly
the regime the snapshot-isolation property covers).

Statement reference::

    {"op": "create",   "name": "r", "join_attributes": ["k"],
     "payload_attributes": ["v"], "rows": [["k1", 1, 0, 9], ...]}
    {"op": "generate", "name": "r", "n_tuples": 5000, "seed": 0,
     "n_keys": 32, "lifespan": 50000}
    {"op": "join",     "session": 0, "outer": "r", "inner": "s",
     "method": "auto", "repeat": 3}
    {"op": "append",   "session": 1, "name": "r", "rows": [...]}
    {"op": "append",   "session": 1, "name": "r", "n_tuples": 64, "seed": 7}
    {"op": "delete",   "session": 1, "name": "r", "rows": [...]}

``python -m repro serve --script workload.jsonl`` drives this module from
the command line; :func:`demo_workload` produces a ready-made script.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.errors import ServiceError
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval

_SETUP_OPS = ("create", "generate")
_SERVE_OPS = ("join", "append", "delete")


def percentile(samples: Sequence[float], q: float) -> float:
    """The *q*-quantile (0..1) by linear interpolation; 0.0 when empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def _generated_rows(
    n_tuples: int, *, seed: int, n_keys: int, lifespan: int
) -> List[VTTuple]:
    """Seeded probe-heavy tuples: few keys, short intervals, long lifespan."""
    rng = random.Random(seed)
    rows = []
    for number in range(n_tuples):
        start = rng.randrange(max(1, lifespan))
        end = min(lifespan - 1, start + rng.randrange(4)) if lifespan > 1 else start
        rows.append(
            VTTuple(
                (f"k{rng.randrange(n_keys)}",),
                (number,),
                Interval(start, max(start, end)),
            )
        )
    return rows


def load_workload(path: str) -> List[Dict]:
    """Parse a ``.jsonl`` workload script (blank lines and ``#`` comments ok)."""
    statements = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                statement = json.loads(text)
            except json.JSONDecodeError as error:
                raise ServiceError(
                    f"{path}:{lineno}: not a JSON statement: {error}"
                ) from error
            if not isinstance(statement, dict) or "op" not in statement:
                raise ServiceError(f"{path}:{lineno}: statement needs an 'op' key")
            statements.append(statement)
    return statements


def demo_workload(
    *,
    n_tuples: int = 2_000,
    sessions: int = 4,
    queries_per_session: int = 4,
    seed: int = 0,
    n_keys: int = 32,
    lifespan: int = 50_000,
    appends: bool = True,
) -> List[Dict]:
    """A ready-made mixed workload: two generated relations, repeated joins
    on every session, and (optionally) one session interleaving appends."""
    statements: List[Dict] = [
        {
            "op": "generate",
            "name": name,
            "n_tuples": n_tuples,
            "seed": seed + offset,
            "n_keys": n_keys,
            "lifespan": lifespan,
        }
        for offset, name in ((0, "r"), (1, "s"))
    ]
    for session in range(sessions):
        statements.append(
            {
                "op": "join",
                "session": session,
                "outer": "r",
                "inner": "s",
                "repeat": queries_per_session,
            }
        )
        if appends and session == sessions - 1 and sessions > 1:
            statements.append(
                {
                    "op": "append",
                    "session": session,
                    "name": "r",
                    "n_tuples": 32,
                    "seed": seed + 99,
                }
            )
            statements.append(
                {
                    "op": "join",
                    "session": session,
                    "outer": "r",
                    "inner": "s",
                }
            )
    return statements


@dataclass
class QueryRecord:
    """One served query as the workload driver saw it."""

    session: int
    outer: str
    inner: str
    algorithm: str
    epochs: Tuple[int, int]
    n_result_tuples: int
    latency_seconds: float
    queue_wait_seconds: float
    charged_ops: int
    cost: float
    result_cache_hit: bool
    plan_cache_hit: bool
    degraded: bool


@dataclass
class WorkloadReport:
    """What one concurrent workload run measured."""

    queries: List[QueryRecord] = field(default_factory=list)
    writes: int = 0
    errors: List[str] = field(default_factory=list)
    wall_seconds: float = 0.0
    sessions: int = 0
    service_report: Dict = field(default_factory=dict)

    def summary(self) -> Dict:
        """The JSON-friendly rollup the CLI prints."""
        waits = [record.queue_wait_seconds for record in self.queries]
        latencies = [record.latency_seconds for record in self.queries]
        return {
            "sessions": self.sessions,
            "queries": len(self.queries),
            "writes": self.writes,
            "errors": len(self.errors),
            "wall_seconds": round(self.wall_seconds, 4),
            "queries_per_second": round(
                len(self.queries) / self.wall_seconds, 2
            )
            if self.wall_seconds > 0
            else 0.0,
            "result_cache_hits": sum(1 for q in self.queries if q.result_cache_hit),
            "plan_cache_hits": sum(1 for q in self.queries if q.plan_cache_hit),
            "degraded_grants": sum(1 for q in self.queries if q.degraded),
            "charged_ops_total": sum(q.charged_ops for q in self.queries),
            "queue_wait_p50_seconds": round(percentile(waits, 0.50), 6),
            "queue_wait_p95_seconds": round(percentile(waits, 0.95), 6),
            "latency_p50_seconds": round(percentile(latencies, 0.50), 6),
            "latency_p95_seconds": round(percentile(latencies, 0.95), 6),
            "service": self.service_report,
        }


def apply_setup(catalog, statements: Sequence[Dict]) -> None:
    """Apply the setup statements (``create``/``generate``) serially."""
    for statement in statements:
        op = statement.get("op")
        if op == "create":
            schema = RelationSchema(
                name=statement["name"],
                join_attributes=tuple(statement.get("join_attributes", ("k",))),
                payload_attributes=tuple(statement.get("payload_attributes", ())),
            )
            relation = ValidTimeRelation.from_rows(
                schema, [tuple(row) for row in statement.get("rows", [])]
            )
            catalog.register(schema, relation.tuples)
        elif op == "generate":
            schema = RelationSchema(
                name=statement["name"],
                join_attributes=("k",),
                payload_attributes=(f"{statement['name']}_payload",),
            )
            catalog.register(
                schema,
                _generated_rows(
                    int(statement["n_tuples"]),
                    seed=int(statement.get("seed", 0)),
                    n_keys=int(statement.get("n_keys", 32)),
                    lifespan=int(statement.get("lifespan", 50_000)),
                ),
            )
        else:
            raise ServiceError(f"unknown setup op {op!r}")


def split_statements(
    statements: Sequence[Dict],
) -> Tuple[List[Dict], Dict[int, List[Dict]]]:
    """Split a script into (setup, per-session serve lists)."""
    setup: List[Dict] = []
    per_session: Dict[int, List[Dict]] = {}
    for statement in statements:
        op = statement.get("op")
        if op in _SETUP_OPS:
            setup.append(statement)
        elif op in _SERVE_OPS:
            session = int(statement.get("session", 0))
            per_session.setdefault(session, []).append(statement)
        else:
            raise ServiceError(f"unknown workload op {op!r}")
    return setup, per_session


def _replay_session(
    service,
    session_number: int,
    statements: Sequence[Dict],
    report: WorkloadReport,
    lock: threading.Lock,
    start_barrier: threading.Barrier,
) -> None:
    from repro.service.session import SessionConfig

    config = SessionConfig(label=f"workload-{session_number}")
    with service.open_session(config) as session:
        start_barrier.wait()
        for statement in statements:
            op = statement["op"]
            try:
                if op == "join":
                    for _ in range(int(statement.get("repeat", 1))):
                        begin = time.monotonic()
                        result = session.join(
                            statement["outer"],
                            statement["inner"],
                            method=statement.get("method"),
                        )
                        latency = time.monotonic() - begin
                        record = QueryRecord(
                            session=session_number,
                            outer=result.outer,
                            inner=result.inner,
                            algorithm=result.algorithm,
                            epochs=result.epochs,
                            n_result_tuples=result.outcome.n_result_tuples,
                            latency_seconds=latency,
                            queue_wait_seconds=result.queue_wait_seconds,
                            charged_ops=result.charged_ops,
                            cost=result.cost,
                            result_cache_hit=result.result_cache_hit,
                            plan_cache_hit=result.plan_cache_hit,
                            degraded=result.degraded,
                        )
                        with lock:
                            report.queries.append(record)
                elif op in ("append", "delete"):
                    rows = statement.get("rows")
                    if rows is None:
                        rows = _generated_rows(
                            int(statement.get("n_tuples", 16)),
                            seed=int(statement.get("seed", session_number)),
                            n_keys=int(statement.get("n_keys", 32)),
                            lifespan=int(statement.get("lifespan", 50_000)),
                        )
                    else:
                        rows = [tuple(row) for row in rows]
                    getattr(session, op)(statement["name"], rows)
                    with lock:
                        report.writes += 1
            except Exception as error:  # noqa: BLE001 -- reported, not fatal
                with lock:
                    report.errors.append(f"session {session_number} {op}: {error}")


def run_workload(
    statements: Sequence[Dict],
    *,
    service: Optional[object] = None,
    **service_kwargs,
) -> WorkloadReport:
    """Run a workload script concurrently; returns its :class:`WorkloadReport`.

    Builds a fresh :class:`~repro.engine.catalog.VersionedCatalog` and
    :class:`~repro.service.service.QueryService` (forwarding
    ``service_kwargs``) unless an open *service* is supplied -- in which
    case setup statements register into its catalog and the service is
    left open afterwards.
    """
    from repro.engine.catalog import VersionedCatalog
    from repro.service.service import QueryService

    setup, per_session = split_statements(statements)
    own_service = service is None
    if own_service:
        catalog = VersionedCatalog()
        service = QueryService(catalog, **service_kwargs)
    apply_setup(service.catalog, setup)

    report = WorkloadReport(sessions=len(per_session))
    lock = threading.Lock()
    try:
        if per_session:
            barrier = threading.Barrier(len(per_session))
            threads = [
                threading.Thread(
                    target=_replay_session,
                    args=(service, number, session_statements, report, lock, barrier),
                    name=f"workload-session-{number}",
                )
                for number, session_statements in sorted(per_session.items())
            ]
            begin = time.monotonic()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            report.wall_seconds = time.monotonic() - begin
        report.service_report = service.report()
    finally:
        if own_service:
            service.close()
    return report
