""":class:`QueryService`: the concurrent multi-session query engine.

One service owns a :class:`~repro.engine.catalog.VersionedCatalog`, a
shared memory budget under an
:class:`~repro.service.admission.AdmissionController`, the epoch-keyed
plan/result caches, and a bounded worker-thread
:class:`~repro.service.executor.QueryExecutor`.  The query path:

1. take a catalog snapshot (snapshot isolation: writers never affect it);
2. consult the result cache -- a hit replays the stored relation and
   :class:`~repro.core.joiner.JoinOutcome` with **zero charged I/O**;
3. ask admission for the planner-estimated memory grant (queue, degrade,
   or time out under pressure);
4. consult the plan cache -- a hit skips the sampling phase entirely;
5. evaluate on a private :class:`~repro.storage.buffer.BufferPool` sized
   to the grant (a smaller grant rides the PR-2 replan ladder);
6. populate the caches, release the grant, record ``repro_service_*``
   metrics.

Every query's result is bit-identical to a serial replay of the same
statements at the same snapshot epochs (property-tested in
``tests/service/test_service_property.py``, all four execution modes).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.sort_merge import sort_merge_join
from repro.core.joiner import JoinOutcome
from repro.algebra.predicates import NATURAL_PREDICATE, resolve_predicate
from repro.core.partition_join import (
    ALL_EXECUTION_MODES,
    PartitionJoinConfig,
    partition_join,
)
from repro.core.planner import estimate_grant_pages
from repro.engine.catalog import (
    CatalogSnapshot,
    RelationStatistics,
    VersionedCatalog,
    analyze,
)
from repro.engine.optimizer import choose_algorithm
from repro.model.errors import (
    AdmissionTimeoutError,
    QueryCancelledError,
    QueryDeadlineError,
    ServiceError,
)
from repro.model.relation import ValidTimeRelation
from repro.obs import Observability, ObservabilityConfig
from repro.service.admission import AdmissionController
from repro.service.breaker import LaneCircuitBreaker
from repro.service.cache import CachedJoin, InternerCache, PlanCache, ResultCache
from repro.service.executor import QueryExecutor, QueryHandle
from repro.service.session import Rows, Session, SessionConfig, coerce_rows
from repro.storage.buffer import BufferPool
from repro.storage.iostats import CostModel
from repro.storage.page import PageSpec

#: Queue-wait histogram bounds, in seconds.
QUEUE_WAIT_BUCKETS = (0.0005, 0.002, 0.01, 0.05, 0.2, 1.0, 5.0, 30.0)

_JOIN_METHODS = ("auto", "partition", "sweep", "sort_merge", "nested_loop")

#: Execution modes that spawn worker lanes (and hence feed the lane breaker).
_LANE_MODES = ("batch-parallel", "batch-parallel-sweep", "zero-copy-sweep")


@dataclass(frozen=True)
class ServiceQueryResult:
    """One served query: the result plus its full serving pedigree.

    Attributes:
        relation: the join result.
        outcome: the producing run's outcome counters (shared verbatim on a
            cache hit, which is what makes hits bit-identical).
        algorithm: algorithm that produced the result.
        cost: weighted I/O cost *this* serving charged (0.0 on a cache hit).
        charged_ops: charged I/O operations of this serving (0 on a hit).
        outer / inner: input relation names.
        epochs: ``(outer_epoch, inner_epoch)`` relation-version epochs the
            query saw -- the serial-replay coordinates.
        snapshot_epoch: global catalog epoch of the snapshot.
        result_cache_hit / plan_cache_hit: which caches served.
        requested_pages / granted_pages: the admission ask and grant
            (both 0 on a result-cache hit: no memory was needed).
        degraded: admission granted fewer pages than it tried to satisfy
            (pressure outlasted ``degrade_after``); the grant size is
            nondeterministic, so such a run never populates the result
            cache.
        clamped: the ask exceeded the whole pool and was cut to capacity
            before queueing (deterministic, unlike a degraded grant).
        queue_wait_seconds: time spent queued for admission.
        session_id / query_id: who asked.
    """

    relation: Optional[ValidTimeRelation]
    outcome: JoinOutcome
    algorithm: str
    cost: float
    charged_ops: int
    outer: str
    inner: str
    epochs: Tuple[int, int]
    snapshot_epoch: int
    result_cache_hit: bool = False
    plan_cache_hit: bool = False
    requested_pages: int = 0
    granted_pages: int = 0
    degraded: bool = False
    clamped: bool = False
    queue_wait_seconds: float = 0.0
    session_id: int = 0
    query_id: int = 0


class QueryService:
    """Concurrent query serving over a versioned catalog.

    Args:
        catalog: the versioned catalog to serve (shared with writers).
        pool_pages: the shared buffer budget admission control arbitrates.
        memory_pages: default per-query memory ask (defaults to
            ``pool_pages``: a lone session gets the whole pool).
        workers: executor worker threads.
        queue_limit: bounded run-queue length.
        admission_policy: ``"fifo"`` or ``"smallest"``.
        admission_timeout: default seconds a query may queue for memory.
        degrade_after: seconds of queueing after which a smaller grant is
            accepted (None: queue until timeout).
        plan_cache_entries / result_cache_entries: cache capacities
            (0 disables the respective cache).
        execution: default partition-join execution mode.
        cost_model / page_spec: the served cost environment.
        observability: optional tracing config; metrics are always on.
        max_sessions: open-session cap.
        lane_failure_threshold: lane-disturbed runs within
            ``lane_failure_window`` seconds that trip the lane circuit
            breaker to serial execution (see
            :class:`~repro.service.breaker.LaneCircuitBreaker`).
        lane_failure_window: the breaker's sliding failure window, seconds.
        lane_breaker_cooldown: seconds an open breaker waits before
            admitting a half-open probe query back onto lanes.
    """

    def __init__(
        self,
        catalog: VersionedCatalog,
        *,
        pool_pages: int = 64,
        memory_pages: Optional[int] = None,
        workers: int = 4,
        queue_limit: int = 256,
        admission_policy: str = "fifo",
        admission_timeout: float = 30.0,
        degrade_after: Optional[float] = None,
        plan_cache_entries: int = 256,
        result_cache_entries: int = 256,
        execution: str = "tuple",
        cost_model: Optional[CostModel] = None,
        page_spec: Optional[PageSpec] = None,
        observability: Optional[ObservabilityConfig] = None,
        max_sessions: int = 64,
        lane_failure_threshold: int = 3,
        lane_failure_window: float = 60.0,
        lane_breaker_cooldown: float = 30.0,
    ) -> None:
        if execution not in ALL_EXECUTION_MODES:
            raise ServiceError(
                f"execution must be one of {ALL_EXECUTION_MODES}, got {execution!r}"
            )
        if max_sessions < 1:
            raise ServiceError(f"max_sessions must be >= 1, got {max_sessions}")
        self.catalog = catalog
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.page_spec = page_spec if page_spec is not None else PageSpec()
        self.execution = execution
        self.default_memory_pages = (
            memory_pages if memory_pages is not None else pool_pages
        )
        if self.default_memory_pages < 4:
            raise ServiceError(
                f"memory_pages must be >= 4 (the Figure 3 minimum), "
                f"got {self.default_memory_pages}"
            )
        self.admission = AdmissionController(
            pool_pages,
            policy=admission_policy,
            default_timeout=admission_timeout,
            degrade_after=degrade_after,
        )
        self.executor = QueryExecutor(workers=workers, queue_limit=queue_limit)
        self.lane_breaker = LaneCircuitBreaker(
            threshold=lane_failure_threshold,
            window_seconds=lane_failure_window,
            cooldown_seconds=lane_breaker_cooldown,
        )
        self.plan_cache = PlanCache(plan_cache_entries) if plan_cache_entries else None
        self.result_cache = (
            ResultCache(result_cache_entries) if result_cache_entries else None
        )
        # Per-relation-version key interners for the batch kernels: epoch
        # keyed like the plan cache, so repeated joins of an unchanged
        # relation stop re-interning its keys from scratch.  Sized with the
        # plan cache (0 disables both).
        self.interner_cache = (
            InternerCache(max(1, plan_cache_entries // 4))
            if plan_cache_entries
            else None
        )
        self.max_sessions = max_sessions
        self.obs = Observability(
            observability
            if observability is not None
            else ObservabilityConfig(tracing=False)
        )
        # Exact-count metrics under concurrency need a lock: Counter.inc is
        # a read-modify-write, and the tests assert exact totals.
        self._metrics_lock = threading.Lock()
        self._sessions_lock = threading.Lock()
        self._sessions: Dict[int, Session] = {}
        self._session_ids = 0
        self._stats_lock = threading.Lock()
        self._stats_cache: Dict[Tuple[str, int], RelationStatistics] = {}
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the executor down and close every open session.

        Queued queries are cancelled outright; in-flight queries get a
        cancel request too, which aborts an admission wait promptly and is
        honored at the query's next cancellation point.  A query already
        deep inside a join kernel has no further cancellation points and
        runs to completion (bounded by the executor's join timeout).
        """
        if self._closed:
            return
        self._closed = True
        self.executor.shutdown(wait=True, cancel_queued=True, cancel_running=True)
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # -- sessions ------------------------------------------------------------

    def open_session(self, config: Optional[SessionConfig] = None, **overrides) -> Session:
        """Open a session (``config`` or keyword overrides; see
        :class:`~repro.service.session.SessionConfig`)."""
        if self._closed:
            raise ServiceError("service is closed")
        if config is None:
            config = SessionConfig(**overrides)
        elif overrides:
            config = dataclasses.replace(config, **overrides)
        if config.execution is not None and config.execution not in ALL_EXECUTION_MODES:
            raise ServiceError(
                f"execution must be one of {ALL_EXECUTION_MODES}, "
                f"got {config.execution!r}"
            )
        if config.method not in _JOIN_METHODS:
            raise ServiceError(
                f"method must be one of {_JOIN_METHODS}, got {config.method!r}"
            )
        if config.predicate is not None:
            try:
                resolve_predicate(config.predicate)
            except ValueError as error:
                raise ServiceError(str(error)) from None
        if config.memory_pages is not None and config.memory_pages < 4:
            raise ServiceError(
                f"memory_pages must be >= 4, got {config.memory_pages}"
            )
        if config.deadline_seconds is not None and config.deadline_seconds <= 0:
            raise ServiceError(
                f"deadline_seconds must be positive (or None), "
                f"got {config.deadline_seconds}"
            )
        with self._sessions_lock:
            if len(self._sessions) >= self.max_sessions:
                raise ServiceError(
                    f"session limit of {self.max_sessions} reached"
                )
            self._session_ids += 1
            session = Session(self, self._session_ids, config)
            self._sessions[session.session_id] = session
        self._count("repro_service_sessions_total", "Sessions ever opened.")
        self._set_active_sessions()
        return session

    def _session_closed(self, session: Session) -> None:
        with self._sessions_lock:
            self._sessions.pop(session.session_id, None)
        self._set_active_sessions()

    @property
    def active_sessions(self) -> int:
        with self._sessions_lock:
            return len(self._sessions)

    def _set_active_sessions(self) -> None:
        with self._metrics_lock:
            self.obs.gauge(
                "repro_service_active_sessions",
                self.active_sessions,
                "Currently open sessions.",
            )

    # -- writes --------------------------------------------------------------

    def _append(self, session: Session, name: str, rows: Rows) -> int:
        version = self.catalog.current(name)
        tuples = coerce_rows(version.schema, rows)
        new_version = self.catalog.append(name, tuples)
        self._on_mutation(name, "append")
        return new_version.epoch

    def _delete(self, session: Session, name: str, rows: Rows) -> int:
        version = self.catalog.current(name)
        tuples = coerce_rows(version.schema, rows)
        new_version = self.catalog.delete(name, tuples)
        self._on_mutation(name, "delete")
        return new_version.epoch

    def _on_mutation(self, name: str, kind: str) -> None:
        dropped = 0
        for cache in (self.plan_cache, self.result_cache, self.interner_cache):
            if cache is not None:
                count = cache.invalidate_relation(name)
                dropped += count
                if count:
                    self._count(
                        "repro_service_cache_invalidations_total",
                        "Cache entries evicted by relation mutations.",
                        amount=count,
                        cache=cache.name,
                    )
        self._count(
            "repro_service_writes_total",
            "Catalog mutations served.",
            kind=kind,
        )

    # -- queries -------------------------------------------------------------

    def _submit_join(
        self,
        session: Session,
        outer: str,
        inner: str,
        *,
        method: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> QueryHandle:
        if self._closed:
            raise ServiceError("service is closed")
        effective_method = method if method is not None else session.config.method
        if effective_method not in _JOIN_METHODS:
            raise ServiceError(
                f"method must be one of {_JOIN_METHODS}, got {effective_method!r}"
            )
        predicate = self._session_predicate(session)
        if predicate != NATURAL_PREDICATE and effective_method not in ("auto", "sweep"):
            raise ServiceError(
                f"predicate {predicate!r} requires method 'sweep' (or 'auto'); "
                f"the {effective_method!r} algorithm evaluates only the "
                f"natural join's {NATURAL_PREDICATE!r}"
            )
        label = f"s{session.session_id}:{outer}x{inner}"
        handle = self.executor.submit(
            lambda h: self._run_join(session, outer, inner, effective_method, timeout, h),
            label=label,
            deadline_seconds=session.config.deadline_seconds,
        )
        self._gauge_queue_depth()
        return handle

    def _run_join(
        self,
        session: Session,
        outer: str,
        inner: str,
        method: str,
        timeout: Optional[float],
        handle: QueryHandle,
    ) -> ServiceQueryResult:
        self._gauge_queue_depth()
        try:
            with self.obs.span(
                "service:query", outer=outer, inner=inner, session=session.session_id
            ):
                handle.check_cancelled()
                snapshot = self.catalog.snapshot()
                config = self._query_config(session)
                predicate = self._session_predicate(session)
                # Resolve "auto" before dispatch so every status of
                # repro_service_queries_total carries the same method label.
                if method == "auto":
                    method = self._choose_method(
                        snapshot, outer, inner, config, predicate=predicate
                    )
                # A session-level forward-sweep execution forces the sweep
                # operator regardless of the cost model's pick.
                if config.execution == "forward-sweep" and method == "partition":
                    method = "sweep"
                if method == "sweep":
                    config = dataclasses.replace(
                        config, execution="forward-sweep", predicate=predicate
                    )
                return self._run_join_inner(
                    session, snapshot, outer, inner, method, config, timeout, handle
                )
        except QueryCancelledError:
            self._count_query("cancelled", method)
            raise
        except QueryDeadlineError:
            self._count_query("deadline", method)
            with self._metrics_lock:
                self.obs.count(
                    "repro_service_deadline_exceeded_total",
                    "Queries that blew their whole-query deadline budget.",
                )
            raise
        except AdmissionTimeoutError:
            self._count_query("admission_timeout", method)
            with self._metrics_lock:
                self.obs.count(
                    "repro_service_admission_timeouts_total",
                    "Queries that timed out waiting for a memory grant.",
                )
            raise
        except Exception:
            self._count_query("error", method)
            raise

    def _run_join_inner(
        self,
        session: Session,
        snapshot: CatalogSnapshot,
        outer: str,
        inner: str,
        method: str,
        config: PartitionJoinConfig,
        timeout: Optional[float],
        handle: QueryHandle,
    ) -> ServiceQueryResult:
        r_version = snapshot.version(outer)
        s_version = snapshot.version(inner)
        epochs = (r_version.epoch, s_version.epoch)

        # 1. Result cache: a hit charges nothing at all.
        if self.result_cache is not None and session.config.use_result_cache:
            cached = self.result_cache.lookup(outer, inner, epochs, method, config)
            if cached is not None:
                self._count(
                    "repro_service_result_cache_hits",
                    "Queries served entirely from the result cache.",
                )
                self._count_query("ok", method)
                return ServiceQueryResult(
                    relation=cached.relation,
                    outcome=cached.outcome,
                    algorithm=cached.algorithm,
                    cost=0.0,
                    charged_ops=0,
                    outer=outer,
                    inner=inner,
                    epochs=epochs,
                    snapshot_epoch=snapshot.epoch,
                    result_cache_hit=True,
                    session_id=session.session_id,
                    query_id=handle.query_id,
                )
            self._count(
                "repro_service_result_cache_misses",
                "Queries that had to be evaluated.",
            )

        # 2. Admission: the planner bounds the useful ask.
        outer_pages = self._statistics(r_version).n_pages
        inner_pages = self._statistics(s_version).n_pages
        if method in ("partition", "sweep"):
            request = estimate_grant_pages(
                outer_pages,
                inner_pages,
                config.memory_pages,
                execution=config.execution,
                spec=config.page_spec,
                lanes=config.sweep_workers,
                prefetch_depth=config.prefetch_depth,
            )
        else:
            request = config.memory_pages
        admission_timeout = (
            timeout
            if timeout is not None
            else session.config.admission_timeout
        )
        handle.check_cancelled()
        handle.check_deadline()
        # The deadline budget covers admission wait too: cap the admission
        # timeout to whatever budget remains, and report an admission wait
        # cut short *by the deadline* as a deadline miss, not a timeout.
        remaining = handle.remaining_seconds()
        deadline_bound = remaining is not None and (
            admission_timeout is None or remaining < admission_timeout
        )
        if deadline_bound:
            admission_timeout = remaining
        try:
            grant = self.admission.acquire(
                request,
                label=handle.label or f"s{session.session_id}",
                timeout=admission_timeout,
                cancelled=handle.cancel_event,
                owner=f"s{session.session_id}",
            )
        except AdmissionTimeoutError as error:
            if deadline_bound:
                raise QueryDeadlineError(
                    f"query {handle.query_id} ({handle.label or 'unlabeled'}) "
                    f"exceeded its deadline budget waiting for admission",
                    deadline_seconds=handle.deadline_seconds,
                ) from error
            raise
        self._observe_queue_wait(grant.queue_wait_seconds)
        self._gauge_pool()
        try:
            handle.check_cancelled()
            handle.check_deadline()
            result = self._evaluate(
                outer, inner, r_version.relation, s_version.relation,
                method, config, grant.pages, epochs, session,
                degraded=grant.degraded,
            )
        finally:
            grant.release()
            self._gauge_pool()
        self._count_query("ok", method)
        return dataclasses.replace(
            result,
            snapshot_epoch=snapshot.epoch,
            requested_pages=request,
            granted_pages=grant.pages,
            degraded=grant.degraded,
            clamped=grant.clamped,
            queue_wait_seconds=grant.queue_wait_seconds,
            session_id=session.session_id,
            query_id=handle.query_id,
        )

    def _evaluate(
        self,
        outer: str,
        inner: str,
        r: ValidTimeRelation,
        s: ValidTimeRelation,
        method: str,
        config: PartitionJoinConfig,
        granted_pages: int,
        epochs: Tuple[int, int],
        session: Session,
        *,
        degraded: bool = False,
    ) -> ServiceQueryResult:
        plan_cache_hit = False
        lane_disturbed = False
        use_lanes = False
        if method == "partition":
            pool = BufferPool(granted_pages)
            plan = None
            full_grant = granted_pages >= config.memory_pages or (
                # estimate_grant_pages may shrink the ask below memory_pages
                # without any degradation: the planner proved the extra
                # pages useless, so the plan is the full-budget plan...
                granted_pages
                >= estimate_grant_pages(
                    self.page_spec.pages_for_tuples(len(r)),
                    self.page_spec.pages_for_tuples(len(s)),
                    config.memory_pages,
                    execution=config.execution,
                    spec=config.page_spec,
                    lanes=config.sweep_workers,
                    prefetch_depth=config.prefetch_depth,
                )
            )
            # ...but a cached plan must key on the *effective* budget, so a
            # clamped grant uses a config replanned for what it actually got.
            effective_config = (
                config
                if granted_pages >= config.memory_pages
                else dataclasses.replace(config, memory_pages=granted_pages)
            )
            if config.execution in _LANE_MODES:
                # The lane circuit breaker decides pooled-vs-serial BEFORE
                # the plan-cache lookup: a serial run plans identically (the
                # plan never depends on lane count) but must not spawn the
                # pools an open breaker exists to avoid.  Results are
                # bit-identical either way, so this is purely a latency
                # trade and the cache keys stay on the original config.
                use_lanes = self.lane_breaker.admit()
                if not use_lanes:
                    effective_config = dataclasses.replace(
                        effective_config,
                        parallel_workers=1,
                        sweep_workers=1,
                        lane_supervision=False,
                    )
                    self._count(
                        "repro_service_breaker_serial_total",
                        "Queries forced to serial execution by the lane breaker.",
                    )
            use_plan_cache = (
                self.plan_cache is not None
                and session.config.use_plan_cache
                and full_grant
            )
            if use_plan_cache:
                plan = self.plan_cache.lookup(outer, inner, epochs, effective_config)
                if plan is not None:
                    plan_cache_hit = True
                    self._count(
                        "repro_service_plan_cache_hits",
                        "Partition joins that skipped sampling via a cached plan.",
                    )
                else:
                    self._count(
                        "repro_service_plan_cache_misses",
                        "Partition joins that had to sample a plan.",
                    )
            interner = None
            if self.interner_cache is not None and effective_config.execution != "tuple":
                from repro.exec.backend import backend_name

                # Epoch-keyed, so repeated joins of the same relation
                # version skip the per-join interner rebuild.  Ids never
                # reach results; see InternerCache.
                interner = self.interner_cache.lookup_or_create(
                    outer, epochs[0], backend_name()
                )
            run = partition_join(
                r, s, effective_config, pool=pool, plan=plan, interner=interner
            )
            if use_plan_cache and not plan_cache_hit:
                self.plan_cache.store(
                    outer, inner, epochs, effective_config, run.plan
                )
            lane_disturbed = any(
                event.kind.startswith("lane-")
                for event in run.resilience.degradations
            )
            if config.execution in _LANE_MODES:
                self.lane_breaker.record(use_lanes, lane_disturbed)
                self._gauge_breaker()
                if lane_disturbed:
                    self._count(
                        "repro_service_lane_disturbed_total",
                        "Queries whose run recovered from lane failures.",
                    )
            outcome = run.outcome
            relation = run.outcome.result
            cost = run.total_cost(self.cost_model)
            charged_ops = run.layout.tracker.stats.total_ops
            algorithm = "partition"
        elif method == "sweep":
            # The forward sweep neither samples a plan nor interns keys:
            # the plan cache and interner cache have nothing to offer, and
            # the lane breaker never engages (no worker lanes).  The config
            # already carries execution="forward-sweep" and the predicate
            # (set by _run_join), so the result-cache key -- which includes
            # the config -- distinguishes predicates.
            pool = BufferPool(granted_pages)
            run = partition_join(r, s, config, pool=pool)
            outcome = run.outcome
            relation = run.outcome.result
            cost = run.total_cost(self.cost_model)
            charged_ops = run.layout.tracker.stats.total_ops
            algorithm = "forward-sweep"
        elif method in ("sort_merge", "nested_loop"):
            runner = sort_merge_join if method == "sort_merge" else nested_loop_join
            run = runner(r, s, granted_pages, page_spec=self.page_spec)
            relation = run.result
            outcome = JoinOutcome(result=relation, n_result_tuples=run.n_result_tuples)
            cost = run.layout.tracker.stats.cost(self.cost_model)
            charged_ops = run.layout.tracker.stats.total_ops
            algorithm = method
        else:  # pragma: no cover -- validated upstream
            raise ServiceError(f"unknown join method {method!r}")

        # A degraded grant ran with a nondeterministic, pressure-dependent
        # budget: its outcome counters (and potentially tuple order) are not
        # the full-budget answer, so storing it under the full-budget config
        # key would break bit-identity for later full-grant hits.  Mirror
        # the plan cache's full_grant guard and skip the store.  A
        # lane-disturbed run is likewise kept out: its *answer* is provably
        # identical (re-dispatch determinism), but caching it would hide the
        # disturbance from every later serving of the same query -- repeat
        # queries must re-observe lane health, and chaos tests must compare
        # recomputations, not a memo of the disturbed run.
        if (
            self.result_cache is not None
            and session.config.use_result_cache
            and not degraded
            and not lane_disturbed
            and relation is not None
        ):
            self.result_cache.store(
                outer,
                inner,
                epochs,
                method,
                config,
                CachedJoin(
                    relation=relation,
                    outcome=outcome,
                    algorithm=algorithm,
                    cost=cost,
                    charged_ops=charged_ops,
                    epochs=epochs,
                ),
            )
        return ServiceQueryResult(
            relation=relation,
            outcome=outcome,
            algorithm=algorithm,
            cost=cost,
            charged_ops=charged_ops,
            outer=outer,
            inner=inner,
            epochs=epochs,
            snapshot_epoch=0,  # filled by the caller
            plan_cache_hit=plan_cache_hit,
        )

    # -- planning helpers ----------------------------------------------------

    def _query_config(self, session: Session) -> PartitionJoinConfig:
        memory = (
            session.config.memory_pages
            if session.config.memory_pages is not None
            else self.default_memory_pages
        )
        execution = (
            session.config.execution
            if session.config.execution is not None
            else self.execution
        )
        return PartitionJoinConfig(
            memory_pages=memory,
            cost_model=self.cost_model,
            page_spec=self.page_spec,
            execution=execution,
        )

    def _statistics(self, version) -> RelationStatistics:
        key = (version.name, version.epoch)
        with self._stats_lock:
            stats = self._stats_cache.get(key)
        if stats is None:
            stats = analyze(version.relation, self.page_spec)
            with self._stats_lock:
                if len(self._stats_cache) > 1024:
                    self._stats_cache.clear()
                self._stats_cache[key] = stats
        return stats

    def _session_predicate(self, session: Session) -> str:
        """The session's resolved (de-aliased) join predicate name."""
        raw = session.config.predicate
        if raw is None:
            return NATURAL_PREDICATE
        return resolve_predicate(raw).name

    def _choose_method(
        self,
        snapshot: CatalogSnapshot,
        outer: str,
        inner: str,
        config: PartitionJoinConfig,
        *,
        predicate: str = NATURAL_PREDICATE,
    ) -> str:
        # Only the forward sweep evaluates non-intersection Allen
        # predicates; there is nothing to choose for those.
        if predicate != NATURAL_PREDICATE:
            return "sweep"
        outer_stats = self._statistics(snapshot.version(outer))
        inner_stats = self._statistics(snapshot.version(inner))
        return choose_algorithm(
            outer_stats.n_pages,
            inner_stats.n_pages,
            config.memory_pages,
            self.cost_model,
            long_lived_fraction=inner_stats.long_lived_fraction,
            endpoint_sorted=(
                outer_stats.endpoint_sorted,
                inner_stats.endpoint_sorted,
            ),
        )

    # -- metrics -------------------------------------------------------------

    def _count(self, name: str, help: str = "", amount: float = 1.0, **labels) -> None:
        with self._metrics_lock:
            self.obs.count(name, help, amount=amount, **labels)

    def _count_query(self, status: str, method: str) -> None:
        self._count(
            "repro_service_queries_total",
            "Queries served, by final status and method.",
            status=status,
            method=method,
        )

    def _observe_queue_wait(self, seconds: float) -> None:
        with self._metrics_lock:
            self.obs.observe(
                "repro_service_queue_wait_seconds",
                seconds,
                "Admission queue wait per granted query.",
                buckets=QUEUE_WAIT_BUCKETS,
            )

    def _gauge_pool(self) -> None:
        with self._metrics_lock:
            self.obs.gauge(
                "repro_service_granted_pages",
                self.admission.granted_pages,
                "Buffer pages currently granted to running queries.",
            )
            self.obs.gauge(
                "repro_service_queued_pages",
                self.admission.queued_pages,
                "Buffer pages currently queued for admission.",
            )

    def _gauge_breaker(self) -> None:
        with self._metrics_lock:
            self.obs.gauge(
                "repro_service_lane_breaker_state",
                float(self.lane_breaker.state_index),
                "Lane circuit breaker state (0=closed, 1=open, 2=half-open).",
            )
            self.obs.gauge(
                "repro_service_lane_breaker_trips",
                float(self.lane_breaker.trips),
                "Times the lane circuit breaker has tripped open.",
            )

    def _gauge_queue_depth(self) -> None:
        with self._metrics_lock:
            self.obs.gauge(
                "repro_service_run_queue_depth",
                self.executor.queued,
                "Queries waiting in the executor's bounded run queue.",
            )

    def metrics_snapshot(self) -> Dict:
        """Stable snapshot of every ``repro_service_*`` family."""
        self._gauge_pool()
        self._gauge_queue_depth()
        return self.obs.metrics_snapshot()

    def report(self) -> Dict:
        """A human-sized serving summary (caches, admission, sessions)."""
        summary: Dict = {
            "active_sessions": self.active_sessions,
            "admission": {
                "capacity_pages": self.admission.capacity_pages,
                "granted_pages": self.admission.granted_pages,
                "peak_granted_pages": self.admission.peak_granted_pages,
                "grants": self.admission.grants,
                "degraded_grants": self.admission.degraded_grants,
                "timeouts": self.admission.timeouts,
                "clamped_requests": self.admission.clamped_requests,
                "policy": self.admission.policy,
                "per_session_peak_pages": self.admission.owner_peak_pages(),
            },
            "lane_breaker": {
                "state": self.lane_breaker.state,
                "trips": self.lane_breaker.trips,
                "threshold": self.lane_breaker.threshold,
                "window_seconds": self.lane_breaker.window_seconds,
                "cooldown_seconds": self.lane_breaker.cooldown_seconds,
            },
        }
        for label, cache in (
            ("plan_cache", self.plan_cache),
            ("result_cache", self.result_cache),
        ):
            if cache is not None:
                summary[label] = {
                    "entries": len(cache),
                    "hits": cache.stats.hits,
                    "misses": cache.stats.misses,
                    "hit_ratio": round(cache.stats.hit_ratio, 4),
                    "evictions": cache.stats.evictions,
                    "invalidations": cache.stats.invalidations,
                }
        return summary
