"""Sessions: per-client lifecycle and configuration overrides.

A :class:`Session` is one client's handle on the
:class:`~repro.service.service.QueryService`: it carries that client's
configuration overrides (execution mode, memory ask, cache opt-outs,
admission timeout), submits queries and writes, and must be closed --
every operation on a closed session raises
:class:`~repro.model.errors.SessionClosedError`.  Sessions are cheap; the
service caps how many may be open at once.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple, Union

from repro.model.errors import SessionClosedError
from repro.model.vtuple import VTTuple

#: Rows a write accepts: prepared VTTuples or ``(attrs..., vs, ve)`` rows.
Rows = Union[Iterable[VTTuple], Iterable[Tuple]]


@dataclass(frozen=True)
class SessionConfig:
    """Per-session overrides of the service defaults (None = inherit).

    Attributes:
        memory_pages: buffer-page ask per query (the admission request is
            still capped by the planner's grant estimate).
        execution: partition-join execution mode override.
        method: default join method for this session (``"auto"``,
            ``"partition"``, ``"sweep"``, ``"sort_merge"``,
            ``"nested_loop"``).
        predicate: Allen-algebra join predicate
            (:func:`repro.algebra.predicates.predicate_names`; None = the
            natural join's ``"intersects"``).  Any other predicate is
            evaluated by the forward-scan sweep, so it requires ``method``
            ``"auto"`` or ``"sweep"``.
        use_plan_cache: serve/populate the shared plan cache.
        use_result_cache: serve/populate the shared result cache.
        admission_timeout: seconds this session's queries may queue.
        deadline_seconds: whole-query deadline budget -- admission wait
            *plus* execution, measured from submission.  A query past its
            deadline raises
            :class:`~repro.model.errors.QueryDeadlineError` at its next
            deadline check (admission waits are capped to the remaining
            budget).  None disables the budget.
        label: diagnostic name (metrics and grant labels).
    """

    memory_pages: Optional[int] = None
    execution: Optional[str] = None
    method: str = "auto"
    predicate: Optional[str] = None
    use_plan_cache: bool = True
    use_result_cache: bool = True
    admission_timeout: Optional[float] = None
    deadline_seconds: Optional[float] = None
    label: str = ""


class Session:
    """One client's connection to the query service."""

    def __init__(self, service, session_id: int, config: SessionConfig) -> None:
        self._service = service
        self.session_id = session_id
        self.config = config
        self._lock = threading.Lock()
        self._closed = False
        self.queries_submitted = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the session (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._service._session_closed(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError(
                f"session {self.session_id} ({self.config.label or 'unlabeled'}) "
                f"is closed"
            )

    # -- queries -------------------------------------------------------------

    def submit_join(
        self,
        outer: str,
        inner: str,
        *,
        method: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        """Queue a join; returns its :class:`~repro.service.executor.QueryHandle`."""
        self._check_open()
        with self._lock:
            self.queries_submitted += 1
        return self._service._submit_join(
            self, outer, inner, method=method, timeout=timeout
        )

    def join(
        self,
        outer: str,
        inner: str,
        *,
        method: Optional[str] = None,
        timeout: Optional[float] = None,
        result_timeout: Optional[float] = 300.0,
    ):
        """Run a join synchronously; returns a
        :class:`~repro.service.service.ServiceQueryResult`."""
        return self.submit_join(outer, inner, method=method, timeout=timeout).result(
            result_timeout
        )

    # -- writes --------------------------------------------------------------

    def append(self, name: str, rows: Rows) -> int:
        """Append rows to a relation; returns the new catalog epoch."""
        self._check_open()
        return self._service._append(self, name, rows)

    def delete(self, name: str, rows: Rows) -> int:
        """Delete rows from a relation; returns the new catalog epoch."""
        self._check_open()
        return self._service._delete(self, name, rows)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Session(id={self.session_id}, {state}, label={self.config.label!r})"


def coerce_rows(schema, rows: Rows) -> Sequence[VTTuple]:
    """Accept VTTuples as-is; convert ``(attrs..., vs, ve)`` rows via schema."""
    from repro.model.relation import ValidTimeRelation

    materialized = list(rows)
    if all(isinstance(row, VTTuple) for row in materialized):
        return materialized
    return list(ValidTimeRelation.from_rows(schema, materialized))
