"""Seeded tuple generators implementing the paper's database recipes.

Section 4.2: "The tuples in the database were randomly distributed over the
lifespan of the relation ... each tuple's valid-time interval [is] exactly
one chronon long."

Section 4.3: "Non-long-lived tuples were randomly distributed throughout
the relation lifespan with a one chronon long validity interval.
Long-lived tuples had their starting chronon randomly distributed over the
first 1/2 of the relation lifespan, and their ending chronon equal to the
starting chronon plus 1/2 of the relation lifespan."

Every generator takes an explicit seed, so experiments are exactly
repeatable, and ``r``/``s`` use distinct derived streams so the two
relations are independent samples of the same distribution (the planner's
similar-distribution assumption, Section 3.4).
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval
from repro.workloads.specs import DatabaseSpec


def _schema(name: str, tuple_bytes: int) -> RelationSchema:
    return RelationSchema(
        name=name,
        join_attributes=("object_id",),
        payload_attributes=(f"{name}_value",),
        tuple_bytes=tuple_bytes,
    )


def generate_relation(
    spec: DatabaseSpec,
    role: str,
    *,
    seed_offset: int = 0,
) -> ValidTimeRelation:
    """Generate one input relation (``role`` is ``"r"`` or ``"s"``).

    Long-lived tuples come first in the key/payload numbering but are
    shuffled into the relation body, matching the paper's unordered-input
    assumption ("we do not assume any sort ordering of input tuples").
    """
    if role not in ("r", "s"):
        raise ValueError(f"role must be 'r' or 's', got {role!r}")
    rng = random.Random(f"{spec.seed}/{role}/{seed_offset}")
    schema = _schema(role, spec.tuple_bytes)
    relation = ValidTimeRelation(schema)

    lifespan = spec.lifespan_chronons
    half = lifespan // 2
    n_long = spec.long_lived_per_relation

    tuples = []
    for number in range(spec.relation_tuples):
        key = (rng.randrange(spec.n_objects),)
        payload = (number,)
        if number < n_long:
            start = rng.randrange(half)
            valid = Interval(start, min(start + half, lifespan - 1))
        else:
            instant = rng.randrange(lifespan)
            valid = Interval(instant, instant)
        tuples.append(VTTuple(key, payload, valid))
    rng.shuffle(tuples)
    relation.extend(tuples)
    return relation


def generate_pair(spec: DatabaseSpec) -> Tuple[ValidTimeRelation, ValidTimeRelation]:
    """Generate the database: independent relations ``r`` and ``s``."""
    return generate_relation(spec, "r"), generate_relation(spec, "s")


def skewed_relation(
    spec: DatabaseSpec,
    role: str,
    *,
    hot_fraction: float = 0.8,
    hot_window: float = 0.1,
) -> ValidTimeRelation:
    """A temporally skewed relation for the partitioning ablation.

    A *hot_fraction* of the tuples land inside a window covering only
    *hot_window* of the lifespan; the rest are uniform.  Equal-width
    partitioning packs the hot window into one overflowing partition, while
    the sampled equi-depth partitioning of Section 3.4 adapts -- the
    contrast the ablation bench measures.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must lie in [0, 1]")
    if not 0.0 < hot_window <= 1.0:
        raise ValueError("hot_window must lie in (0, 1]")
    rng = random.Random(f"{spec.seed}/{role}/skew")
    schema = _schema(role, spec.tuple_bytes)
    relation = ValidTimeRelation(schema)

    lifespan = spec.lifespan_chronons
    window_len = max(1, int(lifespan * hot_window))
    window_start = lifespan // 4

    for number in range(spec.relation_tuples):
        key = (rng.randrange(spec.n_objects),)
        if rng.random() < hot_fraction:
            instant = window_start + rng.randrange(window_len)
        else:
            instant = rng.randrange(lifespan)
        relation.add(VTTuple(key, (number,), Interval(instant, instant)))
    return relation
