"""Database specifications for the paper's experiments.

The Figure 5 "Global Parameter Values" table is unreadable in the source
scan, so the values here are documented reconstructions chosen to make the
paper's quoted facts self-consistent (see DESIGN.md):

* "Each database contained 32 megabytes (262144 tuples)" -- so a tuple is
  128 bytes; the database (both input relations together) holds 262 144
  tuples, 131 072 per relation.
* "If ten tuples are present for each object ... the database contains
  approximately 26,000 objects" -- so keys are drawn from ~26 214 objects.
* Pages are 1 KiB (8 tuples per page); relations are 16 MiB / 16 384 pages
  each; main memory sweeps 1-32 MiB.
* The relation lifespan is 2^20 chronons.

The paper itself notes "we are concerned more with ratios of certain
parameters as opposed to their absolute values"; the :meth:`DatabaseSpec.scaled`
method shrinks a specification uniformly (tuples, long-lived counts,
objects, and memory all divide by the same factor) so experiments preserve
every ratio the paper varies while running at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

#: Reconstructed Figure 5 global parameters (see module docstring).
PAPER_PARAMETERS: Dict[str, object] = {
    "page_bytes": 1024,
    "tuple_bytes": 128,
    "tuples_per_page": 8,
    "database_tuples": 262_144,
    "relation_tuples": 131_072,
    "relation_pages": 16_384,
    "n_objects": 26_214,
    "lifespan_chronons": 2**20,
    "memory_sweep_mb": (1, 2, 4, 8, 16, 32),
    "cost_ratios": (2, 5, 10),
}


@dataclass(frozen=True)
class DatabaseSpec:
    """A declarative description of one experimental database.

    A database consists of two relations, ``r`` and ``s``, each with
    ``relation_tuples`` tuples of which ``long_lived_per_relation`` follow
    the Section 4.3 long-lived recipe (start uniform over the first half of
    the lifespan, duration half the lifespan) and the rest are instantaneous
    (one chronon) at a uniform position.

    Attributes:
        name: label used in extents and reports.
        relation_tuples: tuples per input relation.
        long_lived_per_relation: long-lived tuples per input relation.
        n_objects: size of the join-key domain.
        lifespan_chronons: length of the relation lifespan.
        tuple_bytes: physical tuple size.
        seed: base RNG seed; ``r`` and ``s`` derive distinct streams.
    """

    name: str
    relation_tuples: int = 131_072
    long_lived_per_relation: int = 0
    n_objects: int = 26_214
    lifespan_chronons: int = 2**20
    tuple_bytes: int = 128
    seed: int = 1994

    def __post_init__(self) -> None:
        if self.relation_tuples < 1:
            raise ValueError("relation_tuples must be positive")
        if not 0 <= self.long_lived_per_relation <= self.relation_tuples:
            raise ValueError(
                "long_lived_per_relation must lie in [0, relation_tuples]"
            )
        if self.n_objects < 1:
            raise ValueError("n_objects must be positive")
        if self.lifespan_chronons < 2:
            raise ValueError("lifespan must span at least two chronons")

    def scaled(self, scale: int) -> "DatabaseSpec":
        """Shrink the database by an integer factor, preserving ratios."""
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        return replace(
            self,
            name=f"{self.name}_s{scale}",
            relation_tuples=max(1, self.relation_tuples // scale),
            long_lived_per_relation=self.long_lived_per_relation // scale,
            n_objects=max(1, self.n_objects // scale),
        )

    @property
    def database_tuples(self) -> int:
        """Tuples in the whole database (both relations)."""
        return 2 * self.relation_tuples

    @property
    def long_lived_total(self) -> int:
        """Long-lived tuples in the whole database (the Figure 7/8 x-axis)."""
        return 2 * self.long_lived_per_relation


def fig6_spec() -> DatabaseSpec:
    """Section 4.2's database: all tuples instantaneous, uniform over the
    lifespan ("we eliminated the possibility of long-lived tuples by having
    each tuple's valid-time interval be exactly one chronon long")."""
    return DatabaseSpec(name="fig6", long_lived_per_relation=0)


def fig7_spec(long_lived_total: int) -> DatabaseSpec:
    """A Section 4.3 database with *long_lived_total* long-lived tuples.

    The paper varies the total from 8 000 to 128 000 in 8 000-tuple steps at
    a fixed database size; the long-lived tuples are split evenly between
    the two relations.
    """
    if long_lived_total % 2:
        raise ValueError("long_lived_total must be even (split across r and s)")
    return DatabaseSpec(
        name=f"fig7_ll{long_lived_total}",
        long_lived_per_relation=long_lived_total // 2,
    )


def fig8_spec(long_lived_total: int) -> DatabaseSpec:
    """A Section 4.4 database (same generator as Figure 7, 16k-128k range)."""
    spec = fig7_spec(long_lived_total)
    return replace(spec, name=f"fig8_ll{long_lived_total}")


def memory_pages(memory_mb: float, page_bytes: int = 1024) -> int:
    """Buffer pages corresponding to *memory_mb* mebibytes."""
    pages = int(memory_mb * 1024 * 1024) // page_bytes
    if pages < 4:
        raise ValueError(f"memory of {memory_mb} MiB is below the 4-page minimum")
    return pages
