"""Synthetic workloads matching the paper's experimental databases.

* :mod:`repro.workloads.specs` -- declarative database specifications,
  including the documented stand-ins for the unreadable Figure 5 parameter
  table, and uniform scaling.
* :mod:`repro.workloads.generator` -- seeded generators implementing the
  Section 4.2-4.4 recipes (uniform instantaneous tuples; long-lived tuples
  starting in the first half of the lifespan and lasting half of it) plus a
  skewed generator for the partitioning ablation.
"""

from repro.workloads.specs import (
    PAPER_PARAMETERS,
    DatabaseSpec,
    fig6_spec,
    fig7_spec,
    fig8_spec,
)
from repro.workloads.generator import (
    generate_pair,
    generate_relation,
    skewed_relation,
)
from repro.workloads.builders import random_join_pair, random_valid_time_relation

__all__ = [
    "random_join_pair",
    "random_valid_time_relation",
    "PAPER_PARAMETERS",
    "DatabaseSpec",
    "fig6_spec",
    "fig7_spec",
    "fig8_spec",
    "generate_pair",
    "generate_relation",
    "skewed_relation",
]
