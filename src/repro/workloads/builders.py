"""Public workload builders for users of the library.

The experiment generators (:mod:`repro.workloads.generator`) reproduce the
paper's exact recipes; these builders cover the shapes a *user* of the
library wants when trying it on synthetic data: a seeded random valid-time
relation with a controllable long-lived mix, and a pair of join-compatible
relations sharing a key domain.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval


def random_valid_time_relation(
    schema: RelationSchema,
    n_tuples: int,
    *,
    seed: int = 0,
    n_keys: int = 16,
    lifespan: int = 1024,
    long_lived_fraction: float = 0.25,
    max_long_duration: Optional[int] = None,
    payload_tag: str = "v",
) -> ValidTimeRelation:
    """A seeded random relation with a long-lived/instantaneous mixture.

    Args:
        schema: target schema; keys are ``k0..k{n_keys-1}`` (or tuples of
            them for composite keys), payloads are tagged sequence numbers.
        n_tuples: relation cardinality.
        seed: RNG seed; equal seeds give equal relations.
        n_keys: size of the join-key domain.
        lifespan: chronons in the relation lifespan.
        long_lived_fraction: share of tuples with multi-chronon intervals.
        max_long_duration: duration cap for long-lived tuples (defaults to
            half the lifespan, the paper's recipe).
        payload_tag: prefix for generated payload values.

    Raises:
        ValueError: on an out-of-range fraction or empty domain.
    """
    if not 0.0 <= long_lived_fraction <= 1.0:
        raise ValueError("long_lived_fraction must lie in [0, 1]")
    if n_keys < 1 or lifespan < 1:
        raise ValueError("n_keys and lifespan must be positive")
    cap = max_long_duration if max_long_duration is not None else max(1, lifespan // 2)
    rng = random.Random(seed)
    relation = ValidTimeRelation(schema)
    n_key_attrs = len(schema.join_attributes)
    n_payload = len(schema.payload_attributes)
    for number in range(n_tuples):
        key = tuple(f"k{rng.randrange(n_keys)}" for _ in range(n_key_attrs))
        payload = tuple(f"{payload_tag}{number}_{i}" for i in range(n_payload))
        start = rng.randrange(lifespan)
        if rng.random() < long_lived_fraction:
            end = min(lifespan - 1, start + rng.randrange(1, cap + 1))
        else:
            end = start
        relation.add(VTTuple(key, payload, Interval(start, end)))
    return relation


def random_join_pair(
    n_tuples: int = 500,
    *,
    seed: int = 0,
    n_keys: int = 16,
    lifespan: int = 1024,
    long_lived_fraction: float = 0.25,
) -> Tuple[ValidTimeRelation, ValidTimeRelation]:
    """Two join-compatible relations over a shared key domain.

    Convenient for trying any of the join evaluators:

        r, s = random_join_pair(1000, seed=7)
        run = partition_join(r, s, PartitionJoinConfig(memory_pages=32))
    """
    schema_r = RelationSchema("r", ("key",), ("r_value",))
    schema_s = RelationSchema("s", ("key",), ("s_value",))
    r = random_valid_time_relation(
        schema_r,
        n_tuples,
        seed=seed,
        n_keys=n_keys,
        lifespan=lifespan,
        long_lived_fraction=long_lived_fraction,
        payload_tag="r",
    )
    s = random_valid_time_relation(
        schema_s,
        n_tuples,
        seed=seed + 1,
        n_keys=n_keys,
        lifespan=lifespan,
        long_lived_fraction=long_lived_fraction,
        payload_tag="s",
    )
    return r, s
