"""repro: Efficient Evaluation of the Valid-Time Natural Join (ICDE 1994).

A from-scratch reproduction of Soo, Snodgrass & Jensen's partition-based
valid-time natural join, together with the storage substrate, baseline
algorithms (nested-loop and sort-merge with backing-up), other valid-time
join variants, a small temporal algebra, incremental view maintenance, the
paper's synthetic workloads, and the full Figure 4/6/7/8 experiment
harness.

Quickstart::

    from repro import (
        Interval, RelationSchema, ValidTimeRelation, VTTuple,
        PartitionJoinConfig, partition_join,
    )

    schema_r = RelationSchema("works_on", join_attributes=("emp",),
                              payload_attributes=("project",))
    schema_s = RelationSchema("earns", join_attributes=("emp",),
                              payload_attributes=("salary",))
    r = ValidTimeRelation.from_rows(schema_r, [("alice", "db", 0, 9)])
    s = ValidTimeRelation.from_rows(schema_s, [("alice", 100, 5, 19)])
    joined = partition_join(r, s, PartitionJoinConfig(memory_pages=16))
    print(joined.result.tuples)
    # (VTTuple(key=('alice',), payload=('db', 100), valid=Interval(5, 9)),)
"""

from repro.time import AllenRelation, Interval, Lifespan, overlap, relate
from repro.model import (
    RelationSchema,
    ValidTimeRelation,
    VTTuple,
    join_tuples,
    ReproError,
    SchemaError,
    StorageError,
    BufferOverflowError,
    PlanError,
)
from repro.storage import CostModel, DiskLayout, IOStatistics, PageSpec
from repro.core import (
    PartitionJoinConfig,
    PartitionPlan,
    choose_intervals,
    determine_part_intervals,
    partition_join,
    replicating_partition_join,
)
from repro.baselines import (
    nested_loop_cost,
    nested_loop_join,
    reference_join,
    sort_merge_join,
)
from repro.aggregate import AggregationTree, temporal_aggregate
from repro.bitemporal import BitemporalRelation, bitemporal_join
from repro.engine import TemporalDatabase
from repro.exec import HAVE_NUMPY, backend_name, get_kernels

__version__ = "1.0.0"

__all__ = [
    "AllenRelation",
    "Interval",
    "Lifespan",
    "overlap",
    "relate",
    "RelationSchema",
    "ValidTimeRelation",
    "VTTuple",
    "join_tuples",
    "ReproError",
    "SchemaError",
    "StorageError",
    "BufferOverflowError",
    "PlanError",
    "CostModel",
    "DiskLayout",
    "IOStatistics",
    "PageSpec",
    "PartitionJoinConfig",
    "PartitionPlan",
    "choose_intervals",
    "determine_part_intervals",
    "partition_join",
    "replicating_partition_join",
    "nested_loop_cost",
    "nested_loop_join",
    "reference_join",
    "sort_merge_join",
    "AggregationTree",
    "temporal_aggregate",
    "BitemporalRelation",
    "bitemporal_join",
    "TemporalDatabase",
    "HAVE_NUMPY",
    "backend_name",
    "get_kernels",
    "__version__",
]
