"""Valid-time relation schemas.

Section 2 of the paper fixes the schema shape used throughout:

    R = (A1, ..., An, B1, ..., Bk | Vs, Ve)
    S = (A1, ..., An, C1, ..., Cm | Vs, Ve)

``A`` are the explicit join attributes shared by both operands of the
valid-time natural join, ``B``/``C`` are additional non-joining attributes,
and ``Vs``/``Ve`` are the implicit valid-time start and end attributes.

A schema also carries the physical tuple size so the storage layer can
compute page capacities; the paper's cost model is defined entirely in
pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.model.errors import SchemaError

#: Default physical tuple size.  Figure 5's parameter table is unreadable in
#: the source scan; we document 128-byte tuples, which with 1 KiB pages gives
#: 8 tuples per page and makes the quoted "32 megabytes (262144 tuples)"
#: database self-consistent.
DEFAULT_TUPLE_BYTES = 128

_RESERVED_NAMES = frozenset({"vs", "ve", "v"})


@dataclass(frozen=True)
class RelationSchema:
    """Schema of a valid-time relation.

    Attributes:
        name: relation name, used in error messages and extent labels.
        join_attributes: names of the explicit join attributes ``A1..An``.
        payload_attributes: names of the non-joining attributes.
        tuple_bytes: physical size of one stored tuple, in bytes.
    """

    name: str
    join_attributes: Tuple[str, ...]
    payload_attributes: Tuple[str, ...] = field(default=())
    tuple_bytes: int = DEFAULT_TUPLE_BYTES

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if not self.join_attributes:
            raise SchemaError(f"relation {self.name!r} needs at least one join attribute")
        object.__setattr__(self, "join_attributes", tuple(self.join_attributes))
        object.__setattr__(self, "payload_attributes", tuple(self.payload_attributes))
        seen: set[str] = set()
        for attr in self.join_attributes + self.payload_attributes:
            if not attr:
                raise SchemaError(f"relation {self.name!r} has an empty attribute name")
            if attr.lower() in _RESERVED_NAMES:
                raise SchemaError(
                    f"attribute {attr!r} collides with the implicit valid-time attributes"
                )
            if attr in seen:
                raise SchemaError(f"duplicate attribute {attr!r} in relation {self.name!r}")
            seen.add(attr)
        if self.tuple_bytes <= 0:
            raise SchemaError(f"tuple_bytes must be positive, got {self.tuple_bytes}")

    @property
    def attributes(self) -> Tuple[str, ...]:
        """All explicit attribute names, join attributes first."""
        return self.join_attributes + self.payload_attributes

    def joins_with(self, other: "RelationSchema") -> None:
        """Validate that *other* is join-compatible with this schema.

        The valid-time natural join requires both operands to share the
        explicit join attributes and to have disjoint payload attributes
        (the result schema concatenates them).

        Raises:
            SchemaError: if the schemas are incompatible.
        """
        if self.join_attributes != other.join_attributes:
            raise SchemaError(
                f"join attributes differ: {self.name!r} has {self.join_attributes}, "
                f"{other.name!r} has {other.join_attributes}"
            )
        overlap_names = set(self.payload_attributes) & set(other.payload_attributes)
        if overlap_names:
            raise SchemaError(
                f"payload attributes {sorted(overlap_names)} appear in both "
                f"{self.name!r} and {other.name!r}"
            )

    def join_result_schema(self, other: "RelationSchema") -> "RelationSchema":
        """Schema of ``self JOIN_V other`` (paper: z of arity n+k+m, plus V)."""
        self.joins_with(other)
        return RelationSchema(
            name=f"{self.name}_join_{other.name}",
            join_attributes=self.join_attributes,
            payload_attributes=self.payload_attributes + other.payload_attributes,
            tuple_bytes=self.tuple_bytes + other.tuple_bytes,
        )

    def project(self, name: str, attributes: Tuple[str, ...]) -> "RelationSchema":
        """Schema after projecting onto *attributes* (join attrs retained).

        Used by the normalization helpers: a vertical decomposition keeps the
        join attributes in every fragment so the original can be rebuilt with
        the valid-time natural join [JSS92a].
        """
        unknown = [a for a in attributes if a not in self.attributes]
        if unknown:
            raise SchemaError(f"unknown attributes {unknown} in projection of {self.name!r}")
        payload = tuple(a for a in attributes if a not in self.join_attributes)
        return RelationSchema(
            name=name,
            join_attributes=self.join_attributes,
            payload_attributes=payload,
            tuple_bytes=self.tuple_bytes,
        )
