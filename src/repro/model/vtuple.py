"""The valid-time tuple.

A :class:`VTTuple` is the unit every algorithm in the library moves around:
a key (the values of the explicit join attributes), a payload (the values of
the non-joining attributes), and a validity interval.  Instances are
immutable, hashable, and deliberately tiny -- the paper-scale experiments
materialize hundreds of thousands of them.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.time.interval import Interval


class VTTuple:
    """A tuple of a valid-time relation.

    Attributes:
        key: values of the explicit join attributes, in schema order.
        payload: values of the non-joining attributes, in schema order.
        valid: the validity interval ``[Vs, Ve]``.
    """

    __slots__ = ("key", "payload", "valid")

    key: Tuple
    payload: Tuple
    valid: Interval

    def __init__(self, key: Tuple, payload: Tuple, valid: Interval) -> None:
        object.__setattr__(self, "key", tuple(key))
        object.__setattr__(self, "payload", tuple(payload))
        object.__setattr__(self, "valid", valid)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("VTTuple is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VTTuple):
            return NotImplemented
        return (
            self.key == other.key
            and self.payload == other.payload
            and self.valid == other.valid
        )

    def __hash__(self) -> int:
        return hash((self.key, self.payload, self.valid))

    def __repr__(self) -> str:
        return f"VTTuple(key={self.key!r}, payload={self.payload!r}, valid={self.valid!r})"

    # -- temporal accessors -------------------------------------------------

    @property
    def vs(self) -> int:
        """Valid-time start chronon."""
        return self.valid.start

    @property
    def ve(self) -> int:
        """Valid-time end chronon."""
        return self.valid.end

    def overlaps(self, interval: Interval) -> bool:
        """True when the tuple is valid during some chronon of *interval*."""
        return self.valid.overlaps(interval)

    def value_equivalent(self, other: "VTTuple") -> bool:
        """True when key and payload match (timestamps may differ).

        Value-equivalence is the grouping used by coalescing [JSS92a].
        """
        return self.key == other.key and self.payload == other.payload

    def with_valid(self, valid: Interval) -> "VTTuple":
        """Copy of this tuple restamped with *valid*."""
        return VTTuple(self.key, self.payload, valid)


def join_tuples(x: VTTuple, y: VTTuple) -> Optional[VTTuple]:
    """Join two tuples per the Section 2 definition of the VT natural join.

    Returns the result tuple ``z`` with ``z[A] = x[A] = y[A]``, payload the
    concatenation of both payloads, and validity ``overlap(x[V], y[V])`` --
    or None when the keys differ or the intervals are disjoint (the paper's
    condition ``z[V] != bottom``).
    """
    if x.key != y.key:
        return None
    common = x.valid.intersect(y.valid)
    if common is None:
        return None
    return VTTuple(x.key, x.payload + y.payload, common)
