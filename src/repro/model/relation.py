"""In-memory valid-time relations.

A :class:`ValidTimeRelation` is an ordered multiset of :class:`VTTuple`
conforming to a :class:`RelationSchema`.  It is the logical-level
representation; the storage layer (:mod:`repro.storage.heapfile`) holds the
physical, paged representation the cost experiments run against.

Relations are multisets: the paper's 1NF tuple-timestamped model permits
duplicate snapshot tuples with different timestamps (and the join algorithms
are compared by result *multiset* in the test-suite).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.model.errors import SchemaError
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval
from repro.time.lifespan import Lifespan, lifespan_of


class ValidTimeRelation:
    """An instance of a valid-time relation schema.

    Args:
        schema: the relation's schema.
        tuples: optional initial contents (validated against the schema).
    """

    def __init__(self, schema: RelationSchema, tuples: Optional[Iterable[VTTuple]] = None):
        self.schema = schema
        self._tuples: List[VTTuple] = []
        if tuples is not None:
            for tup in tuples:
                self.add(tup)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        schema: RelationSchema,
        rows: Iterable[Tuple],
    ) -> "ValidTimeRelation":
        """Build a relation from ``(attr..., vs, ve)`` rows.

        Each row supplies the explicit attributes in schema order followed by
        the inclusive valid-time start and end chronons.
        """
        relation = cls(schema)
        n_join = len(schema.join_attributes)
        n_attrs = len(schema.attributes)
        for row in rows:
            if len(row) != n_attrs + 2:
                raise SchemaError(
                    f"row of arity {len(row)} does not match schema "
                    f"{schema.name!r} (expected {n_attrs} attributes + vs, ve)"
                )
            key = tuple(row[:n_join])
            payload = tuple(row[n_join:n_attrs])
            relation.add(VTTuple(key, payload, Interval(row[-2], row[-1])))
        return relation

    @classmethod
    def from_columns(
        cls,
        schema: RelationSchema,
        keys: Iterable[Tuple],
        payloads: Iterable[Tuple],
        starts: Iterable[int],
        ends: Iterable[int],
    ) -> "ValidTimeRelation":
        """Build a relation from parallel columns (the batch decomposition).

        Inverse of :meth:`to_columns`; the columnar serialization format and
        the execution layer's :class:`~repro.exec.batch.PageBatch` share
        this representation.
        """
        relation = cls(schema)
        for key, payload, vs, ve in zip(keys, payloads, starts, ends):
            relation.add(VTTuple(tuple(key), tuple(payload), Interval(int(vs), int(ve))))
        return relation

    def to_columns(self) -> Tuple[List[Tuple], List[Tuple], List[int], List[int]]:
        """Decompose into ``(keys, payloads, starts, ends)`` parallel columns."""
        keys: List[Tuple] = []
        payloads: List[Tuple] = []
        starts: List[int] = []
        ends: List[int] = []
        for tup in self._tuples:
            keys.append(tup.key)
            payloads.append(tup.payload)
            starts.append(tup.valid.start)
            ends.append(tup.valid.end)
        return keys, payloads, starts, ends

    def add(self, tup: VTTuple) -> None:
        """Append *tup* after validating its arity against the schema."""
        if len(tup.key) != len(self.schema.join_attributes):
            raise SchemaError(
                f"tuple key arity {len(tup.key)} does not match schema "
                f"{self.schema.name!r} join attributes {self.schema.join_attributes}"
            )
        if len(tup.payload) != len(self.schema.payload_attributes):
            raise SchemaError(
                f"tuple payload arity {len(tup.payload)} does not match schema "
                f"{self.schema.name!r} payload attributes {self.schema.payload_attributes}"
            )
        self._tuples.append(tup)

    def extend(self, tuples: Iterable[VTTuple]) -> None:
        """Append every tuple in *tuples* with validation."""
        for tup in tuples:
            self.add(tup)

    # -- container protocol --------------------------------------------------

    def __iter__(self) -> Iterator[VTTuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, tup: object) -> bool:
        return tup in self._tuples

    def __repr__(self) -> str:
        return f"ValidTimeRelation({self.schema.name!r}, {len(self)} tuples)"

    @property
    def tuples(self) -> Tuple[VTTuple, ...]:
        """Immutable snapshot of the current contents."""
        return tuple(self._tuples)

    # -- temporal queries -----------------------------------------------------

    def lifespan(self) -> Optional[Lifespan]:
        """The relation lifespan: hull of all tuple timestamps (None if empty)."""
        return lifespan_of(tup.valid for tup in self._tuples)

    def endpoint_sorted(self) -> bool:
        """True when tuples iterate in ``(start, end)`` order.

        The forward-scan sweep (:mod:`repro.exec.forward_sweep`) consumes
        endpoint-sorted inputs without a sort pass; bulk-loading this
        relation preserves the property as heap-file metadata
        (:attr:`~repro.storage.heapfile.HeapFile.endpoint_sorted`).  An
        empty relation is trivially sorted.
        """
        last: Optional[Tuple[int, int]] = None
        for tup in self._tuples:
            span = (tup.vs, tup.ve)
            if last is not None and span < last:
                return False
            last = span
        return True

    def overlapping(self, interval: Interval) -> Iterator[VTTuple]:
        """Iterate over tuples whose validity overlaps *interval*."""
        return (tup for tup in self._tuples if tup.valid.overlaps(interval))

    def timeslice(self, chronon: int) -> List[Tuple]:
        """The snapshot state at *chronon*: explicit attribute rows, no timestamps.

        This is the timeslice operator ``tau_t``; the snapshot-reducibility
        property tests use it to check that timeslice commutes with the join.
        """
        return [
            tup.key + tup.payload
            for tup in self._tuples
            if tup.valid.contains_chronon(chronon)
        ]

    # -- grouping helpers ------------------------------------------------------

    def group_by_key(self) -> Dict[Tuple, List[VTTuple]]:
        """Group tuples by their explicit join-attribute values."""
        groups: Dict[Tuple, List[VTTuple]] = {}
        for tup in self._tuples:
            groups.setdefault(tup.key, []).append(tup)
        return groups

    def sorted_by(self, sort_key: Callable[[VTTuple], Tuple]) -> "ValidTimeRelation":
        """A copy of this relation with tuples ordered by *sort_key*."""
        ordered = sorted(self._tuples, key=sort_key)
        result = ValidTimeRelation(self.schema)
        result._tuples = ordered
        return result

    def sorted_by_vs(self) -> "ValidTimeRelation":
        """A copy sorted on valid-time start (the sort-merge baseline order)."""
        return self.sorted_by(lambda tup: (tup.vs, tup.ve, tup.key))

    # -- multiset comparison ----------------------------------------------------

    def as_multiset(self) -> Dict[VTTuple, int]:
        """Contents as a tuple -> multiplicity map (order-insensitive equality)."""
        counts: Dict[VTTuple, int] = {}
        for tup in self._tuples:
            counts[tup] = counts.get(tup, 0) + 1
        return counts

    def multiset_equal(self, other: "ValidTimeRelation") -> bool:
        """True when both relations hold the same tuples with the same counts."""
        return self.as_multiset() == other.as_multiset()
