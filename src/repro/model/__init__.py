"""Tuple-timestamped data model for valid-time relations (paper Section 2).

A valid-time relation schema ``R = (A1..An, B1..Bk | Vs, Ve)`` consists of
explicit join attributes ``A``, additional non-joining attributes ``B``, and
the implicit valid-time start and end attributes.  Tuples are stamped with a
single inclusive interval ``[Vs, Ve]``.

* :mod:`repro.model.errors` -- the library's exception hierarchy.
* :mod:`repro.model.schema` -- relation schemas and physical tuple sizes.
* :mod:`repro.model.vtuple` -- the valid-time tuple.
* :mod:`repro.model.relation` -- in-memory valid-time relations.
"""

from repro.model.errors import (
    BufferOverflowError,
    PlanError,
    ReproError,
    SchemaError,
    StorageError,
)
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple, join_tuples
from repro.model.relation import ValidTimeRelation

__all__ = [
    "BufferOverflowError",
    "PlanError",
    "ReproError",
    "SchemaError",
    "StorageError",
    "RelationSchema",
    "VTTuple",
    "join_tuples",
    "ValidTimeRelation",
]
