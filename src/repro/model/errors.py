"""Exception hierarchy for the valid-time join library.

Every exception raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.

:class:`ReproError` carries optional *structured context* -- the extent,
device, and page index an error refers to, plus arbitrary further keys --
so fault-handling code (retry loops, degradation fallbacks, chaos-test
assertions) can dispatch on *where* a failure happened instead of parsing
the message.  Context keys are rendered into ``str(error)`` after the
message, e.g. ``page read failed [extent='r_part3', device=1, page_index=7]``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base class for all library-specific errors.

    Args:
        message: human-readable description.
        extent: name of the extent the error refers to, when applicable.
        device: device number the error refers to, when applicable.
        page_index: page index within the extent, when applicable.
        context: any further structured keys worth preserving.
    """

    def __init__(
        self,
        message: str = "",
        *,
        extent: Optional[str] = None,
        device: Optional[int] = None,
        page_index: Optional[int] = None,
        **context: Any,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.context: Dict[str, Any] = {}
        if extent is not None:
            self.context["extent"] = extent
        if device is not None:
            self.context["device"] = device
        if page_index is not None:
            self.context["page_index"] = page_index
        self.context.update(context)

    @property
    def extent(self) -> Optional[str]:
        return self.context.get("extent")

    @property
    def device(self) -> Optional[int]:
        return self.context.get("device")

    @property
    def page_index(self) -> Optional[int]:
        return self.context.get("page_index")

    def __str__(self) -> str:
        if not self.context:
            return self.message
        rendered = ", ".join(f"{key}={value!r}" for key, value in self.context.items())
        return f"{self.message} [{rendered}]"


class SchemaError(ReproError):
    """A relation schema is malformed or two schemas are incompatible."""


class StorageError(ReproError):
    """Invalid operation against the simulated storage layer."""


class BufferOverflowError(StorageError):
    """A buffer-pool reservation exceeded the configured memory size."""


class IOFaultError(StorageError):
    """An injected I/O fault surfaced from the simulated disk."""


class TransientIOFaultError(IOFaultError):
    """A single failed access attempt; the retry policy may recover it."""


class PermanentIOFaultError(IOFaultError):
    """An access kept failing after the retry policy was exhausted."""


class ChecksumError(StorageError):
    """Stored or serialized data failed checksum verification."""


class SimulatedCrashError(ReproError):
    """The fault injector killed the run at a scheduled operation count.

    Models whole-process death: nothing that lives only in simulated main
    memory survives it.  Durable state -- extents already written, committed
    checkpoints -- does, and ``resume_join`` restarts from there.
    """


class CheckpointError(ReproError):
    """A sweep checkpoint could not be written, committed, or restored."""


class LaneFailureError(ReproError):
    """A supervised worker lane crashed, hung, or raised mid-dispatch.

    Carries ``kind`` context (``"death"``/``"hang"``/``"error"``) so the
    :class:`~repro.resilience.supervisor.LaneSupervisor` can account the
    failure before re-dispatching the lost work deterministically.
    """


class SlabCorruptionError(LaneFailureError):
    """A lane's shared-memory result slab failed CRC/sequence validation."""


class PlanError(ReproError):
    """The partition planner could not produce a usable plan."""


class ServiceError(ReproError):
    """Base class for the concurrent query service (``repro.service``)."""


class AdmissionTimeoutError(ServiceError):
    """A memory-grant request waited past its admission timeout."""


class QueryCancelledError(ServiceError):
    """A submitted query was cancelled before it produced a result."""


class SessionClosedError(ServiceError):
    """An operation was issued on a closed (or never-opened) session."""


class CatalogError(ServiceError):
    """A versioned-catalog operation was invalid (unknown name, live view)."""


class QueryDeadlineError(ServiceError):
    """A query exceeded its per-query deadline budget (admission + execution)."""
