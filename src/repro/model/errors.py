"""Exception hierarchy for the valid-time join library.

Every exception raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class SchemaError(ReproError):
    """A relation schema is malformed or two schemas are incompatible."""


class StorageError(ReproError):
    """Invalid operation against the simulated storage layer."""


class BufferOverflowError(StorageError):
    """A buffer-pool reservation exceeded the configured memory size."""


class PlanError(ReproError):
    """The partition planner could not produce a usable plan."""
