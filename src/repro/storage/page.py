"""Page geometry and checksummed page frames.

Every cost in the paper is expressed in pages, so the only physical fact the
simulator needs about a page is its tuple capacity.  A :class:`PageSpec`
derives that capacity from the page and tuple sizes and provides the
page-count arithmetic used by planners and cost formulas.

For the resilience layer a page can additionally be wrapped in a
:class:`PageFrame`: the payload plus a CRC-32 over its canonical
representation.  A disk running with checksums enabled stores frames and
verifies them on every read, so torn or corrupted pages are *detected at
read time* (and retried) instead of silently joining garbage.  Framing is a
storage-internal concern -- callers of the disk API never see frames.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

from repro.model.errors import StorageError

#: Default page size (bytes).  See the DESIGN.md substitution table: 1 KiB
#: pages with 128-byte tuples give 8 tuples per page.
DEFAULT_PAGE_BYTES = 1024


@dataclass(frozen=True)
class PageSpec:
    """Geometry of fixed-size pages holding fixed-size tuples.

    Attributes:
        page_bytes: size of one disk page.
        tuple_bytes: size of one stored tuple.
    """

    page_bytes: int = DEFAULT_PAGE_BYTES
    tuple_bytes: int = 128

    def __post_init__(self) -> None:
        if self.page_bytes <= 0:
            raise StorageError(f"page_bytes must be positive, got {self.page_bytes}")
        if self.tuple_bytes <= 0:
            raise StorageError(f"tuple_bytes must be positive, got {self.tuple_bytes}")
        if self.tuple_bytes > self.page_bytes:
            raise StorageError(
                f"tuple of {self.tuple_bytes} bytes does not fit a "
                f"{self.page_bytes}-byte page"
            )

    @property
    def capacity(self) -> int:
        """Tuples per page."""
        return self.page_bytes // self.tuple_bytes

    def pages_for_tuples(self, n_tuples: int) -> int:
        """Pages needed to store *n_tuples* (0 tuples -> 0 pages)."""
        if n_tuples < 0:
            raise StorageError(f"negative tuple count {n_tuples}")
        return math.ceil(n_tuples / self.capacity)

    def pages_for_bytes(self, n_bytes: int) -> int:
        """Pages spanned by *n_bytes* of storage (e.g. a memory budget)."""
        if n_bytes < 0:
            raise StorageError(f"negative byte count {n_bytes}")
        return n_bytes // self.page_bytes

    def tuples_for_pages(self, n_pages: int) -> int:
        """Maximum tuples storable in *n_pages*."""
        if n_pages < 0:
            raise StorageError(f"negative page count {n_pages}")
        return n_pages * self.capacity


# -- checksummed page frames ---------------------------------------------------


def page_checksum(payload: object) -> int:
    """CRC-32 of a page payload's canonical representation.

    Payloads are arbitrary Python objects (normally lists of ``VTTuple``);
    ``repr`` is deterministic for them within a process, which is the only
    scope a simulated disk needs.
    """
    return zlib.crc32(repr(payload).encode("utf-8"))


@dataclass(frozen=True)
class PageFrame:
    """A stored page: payload plus the checksum computed when it was written."""

    payload: object
    checksum: int

    def verify(self) -> bool:
        """True when the payload still matches its stored checksum."""
        return page_checksum(self.payload) == self.checksum


def frame_page(payload: object) -> PageFrame:
    """Wrap *payload* in a frame carrying its current checksum."""
    return PageFrame(payload, page_checksum(payload))


def torn_copy(payload: object) -> object:
    """A torn-write image of *payload*: the trailing part is lost.

    Used by the fault injector to model partially transferred pages.  For
    sequence payloads the last element is dropped; anything else is replaced
    by a recognizable marker.
    """
    if isinstance(payload, (list, tuple)) and len(payload) > 0:
        return payload[:-1]
    return ["<torn page>"]
