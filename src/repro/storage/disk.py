"""The simulated disk: contiguous extents and head-position cost accounting.

The reproduction's equivalent of the paper's "main-memory simulations"
(Section 4.1).  Pages live in Python lists; what is simulated is the *cost*
of moving them:

* The address space is divided into **devices**, each with its own
  independent head.  Placing base relations, temporary partitions, the tuple
  cache, and the result on separate devices reproduces the paper's
  accounting, where e.g. reading an inner-partition page and appending to
  the tuple cache do not destroy each other's sequentiality, while two
  interleaved streams on the *same* device do (the paper: in-memory
  partition buckets "must be flushed more often, requiring more random
  I/O").
* An **extent** is a named, contiguous run of pages on one device ("if
  partitions are stored on consecutive disk pages then, after an initial
  disk seek to the first page of a partition, its remaining pages are read
  sequentially").
* Every :meth:`SimulatedDisk.read` / :meth:`SimulatedDisk.write` records one
  I/O operation: sequential when the target page is at or immediately after
  the device head, random otherwise.

Loading pre-existing base relations uses :meth:`SimulatedDisk.load`, which
bypasses accounting -- the paper's measurements start with the inputs
already on disk.

**Resilience.**  A disk can carry a
:class:`~repro.resilience.faults.FaultInjector` (consulted on every charged
access), a :class:`~repro.resilience.retry.RetryPolicy` (bounded retries
with deterministic backoff, every attempt and penalty charged as real I/O),
and checksummed page frames (``checksums=True``: pages are stored wrapped
in :class:`~repro.storage.page.PageFrame` and verified on every read, so
torn or corrupted deliveries are detected and retried).  What happened is
recorded on :attr:`SimulatedDisk.report`.  A fault-free disk behaves and
charges exactly as before.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.model.errors import PermanentIOFaultError, StorageError
from repro.resilience.faults import FaultInjector
from repro.resilience.report import ResilienceReport
from repro.resilience.retry import RetryPolicy
from repro.storage.iostats import IOStatistics
from repro.storage.page import PageFrame, frame_page, torn_copy


class Extent:
    """A named run of pages on one device, contiguous per segment.

    An extent normally occupies a single physically contiguous segment of
    its device, reserved at allocation time.  If an extent outgrows its
    reservation a new contiguous segment is chained on; crossing a segment
    boundary costs a seek, exactly as a physical file fragment would.

    Page contents are arbitrary Python objects (the library stores lists of
    tuples); the simulator never inspects them.
    """

    __slots__ = ("name", "device", "_segments", "_pages", "_disk")

    def __init__(self, name: str, device: int, disk: "SimulatedDisk") -> None:
        self.name = name
        self.device = device
        self._segments: List[Tuple[int, int]] = []  # (physical base, capacity)
        self._pages: List[object] = []
        self._disk = disk

    @property
    def n_pages(self) -> int:
        """Number of pages currently stored in the extent."""
        return len(self._pages)

    @property
    def capacity(self) -> int:
        """Total reserved pages across all segments."""
        return sum(cap for _, cap in self._segments)

    def physical_address(self, index: int) -> int:
        """Physical device address of page *index*."""
        if index < 0:
            raise StorageError(
                f"negative page index {index} in extent {self.name!r}",
                extent=self.name,
                device=self.device,
                page_index=index,
            )
        remaining = index
        for base, cap in self._segments:
            if remaining < cap:
                return base + remaining
            remaining -= cap
        raise StorageError(
            f"page index {index} beyond capacity {self.capacity} of extent {self.name!r}",
            extent=self.name,
            device=self.device,
            page_index=index,
        )

    def __repr__(self) -> str:
        return (
            f"Extent({self.name!r}, device={self.device}, pages={self.n_pages}, "
            f"capacity={self.capacity})"
        )


class SimulatedDisk:
    """Multi-device disk simulator with per-device head tracking.

    Args:
        stats: the I/O counter stream every charged access is recorded to.
            Callers typically pass ``PhaseTracker().stats`` so phase-level
            accounting composes on top.
        fault_injector: consulted on every charged access when set.
        retry_policy: bounds of the fault-retry loop (defaults to
            ``RetryPolicy()``; irrelevant while no faults occur).
        checksums: store checksummed page frames and verify them on read.
    """

    def __init__(
        self,
        stats: Optional[IOStatistics] = None,
        *,
        fault_injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        checksums: bool = False,
    ) -> None:
        self.stats = stats if stats is not None else IOStatistics()
        #: Per-device breakdown of the same operations counted in ``stats``.
        self.device_stats: Dict[int, IOStatistics] = {}
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.checksums = checksums
        #: What the resilience machinery observed and did on this disk.
        self.report = ResilienceReport()
        self._heads: Dict[int, Optional[int]] = {}
        self._alloc_pointer: Dict[int, int] = {}
        self._extents: List[Extent] = []
        self._pipeline_reads = False
        self._pipeline_writes = False
        # Optional observability runtime (repro.obs.Observability).  Kept as
        # a plain attribute checked with one `is None` per charge so an
        # unobserved disk pays nothing.
        self._obs = None

    # -- allocation ----------------------------------------------------------

    def allocate(self, name: str, device: int = 0, capacity: int = 1) -> Extent:
        """Reserve a contiguous extent of *capacity* pages on *device*."""
        if capacity < 1:
            raise StorageError(
                f"extent capacity must be >= 1, got {capacity}",
                extent=name,
                device=device,
            )
        extent = Extent(name, device, self)
        self._reserve_segment(extent, capacity)
        self._extents.append(extent)
        return extent

    def _reserve_segment(self, extent: Extent, capacity: int) -> None:
        pointer = self._alloc_pointer.get(extent.device, 0)
        extent._segments.append((pointer, capacity))
        # A one-page guard gap between reservations: two distinct files are
        # never treated as physically adjacent, so finishing one extent and
        # starting the next always costs a seek.
        self._alloc_pointer[extent.device] = pointer + capacity + 1

    def _ensure_capacity(self, extent: Extent, index: int) -> None:
        while index >= extent.capacity:
            # Chain a new segment at least as large as the current extent so
            # repeated growth stays amortized; the segment boundary itself
            # costs a seek via the head model.
            self._reserve_segment(extent, max(extent.capacity, 1))

    # -- charged page access ---------------------------------------------------

    def read(self, extent: Extent, index: int) -> object:
        """Read page *index* of *extent*, charging one I/O operation.

        With a fault injector attached the access may be retried under the
        retry policy; every attempt and backoff penalty is charged.  Raises
        :class:`PermanentIOFaultError` when the policy is exhausted.
        """
        if index >= extent.n_pages:
            raise StorageError(
                f"read past end of extent {extent.name!r}: "
                f"page {index} of {extent.n_pages}",
                extent=extent.name,
                device=extent.device,
                page_index=index,
            )
        injector = self.fault_injector
        if injector is not None:
            injector.tick()
        attempts = 0
        while True:
            self._charge(extent, index, write=False, retry=attempts > 0)
            fault = (
                injector.on_access(extent.name, extent.device, index, write=False)
                if injector is not None
                else None
            )
            failed_attempt = False
            if fault is not None and fault.kind == "io":
                self.report.transient_read_faults += 1
                failed_attempt = True
            else:
                stored = extent._pages[index]
                if self.checksums:
                    frame = stored
                    if fault is not None and fault.kind == "corrupt":
                        # Delivery-time damage: the stored page is intact,
                        # the copy handed over is torn.
                        frame = PageFrame(torn_copy(frame.payload), frame.checksum)
                    if isinstance(frame, PageFrame) and frame.verify():
                        return frame.payload
                    self.report.corruptions_detected += 1
                    failed_attempt = True
                else:
                    if fault is not None and fault.kind == "corrupt":
                        # No checksums: the torn page is returned as if good.
                        self.report.corruptions_undetected += 1
                        return torn_copy(stored)
                    return stored
            if failed_attempt:
                attempts += 1
                if attempts > self.retry_policy.max_retries:
                    self.report.permanent_failures.append(
                        f"read {extent.name!r} page {index} "
                        f"(device {extent.device}, {attempts} attempts)"
                    )
                    raise PermanentIOFaultError(
                        f"page read failed permanently after {attempts} attempts",
                        extent=extent.name,
                        device=extent.device,
                        page_index=index,
                        attempts=attempts,
                    )
                self.report.retries += 1
                self._charge_backoff(extent, attempts, write=False)

    def write(self, extent: Extent, index: int, page: object) -> None:
        """Write *page* at *index* (appending when ``index == n_pages``).

        Transient write faults are retried like reads; a permanently failing
        write raises :class:`PermanentIOFaultError`.
        """
        if index > extent.n_pages:
            raise StorageError(
                f"write would leave a hole in extent {extent.name!r}: "
                f"page {index}, current length {extent.n_pages}",
                extent=extent.name,
                device=extent.device,
                page_index=index,
            )
        self._ensure_capacity(extent, index)
        injector = self.fault_injector
        if injector is not None:
            injector.tick()
        attempts = 0
        while True:
            self._charge(extent, index, write=True, retry=attempts > 0)
            fault = (
                injector.on_access(extent.name, extent.device, index, write=True)
                if injector is not None
                else None
            )
            if fault is None:
                stored = frame_page(page) if self.checksums else page
                if index == extent.n_pages:
                    extent._pages.append(stored)
                else:
                    extent._pages[index] = stored
                return
            self.report.transient_write_faults += 1
            attempts += 1
            if attempts > self.retry_policy.max_retries:
                self.report.permanent_failures.append(
                    f"write {extent.name!r} page {index} "
                    f"(device {extent.device}, {attempts} attempts)"
                )
                raise PermanentIOFaultError(
                    f"page write failed permanently after {attempts} attempts",
                    extent=extent.name,
                    device=extent.device,
                    page_index=index,
                    attempts=attempts,
                )
            self.report.retries += 1
            self._charge_backoff(extent, attempts, write=True)

    def append(self, extent: Extent, page: object) -> int:
        """Append *page* to *extent*; returns its page index."""
        index = extent.n_pages
        self.write(extent, index, page)
        return index

    def attach_observer(self, obs) -> None:
        """Attach (or with ``None``, detach) an observability runtime.

        The observer's :meth:`~repro.obs.Observability.on_io` is called for
        every *charged* access after it is recorded -- observation only;
        accounting and behavior are unchanged (property-tested).
        """
        self._obs = obs

    def pipeline_tag(
        self, *, reads: bool = False, writes: bool = False
    ) -> "_PipelineTagContext":
        """Context manager tagging enclosed charges as pipeline traffic.

        The prefetcher wraps its read-ahead in ``pipeline_tag(reads=True)``
        and the write-behind buffer wraps its barrier flush in
        ``pipeline_tag(writes=True)``: every operation charged inside is
        counted normally *and* tagged ``prefetch_reads`` /
        ``writeback_writes``, mirroring how fault retries are tagged.  The
        tags therefore never add to ``total_ops`` or :meth:`IOStatistics.cost`.
        """
        return _PipelineTagContext(self, reads=reads, writes=writes)

    def _charge(
        self, extent: Extent, index: int, *, write: bool, retry: bool = False
    ) -> None:
        physical = extent.physical_address(index)
        head = self._heads.get(extent.device)
        sequential = head is not None and (physical == head + 1 or physical == head)
        self._heads[extent.device] = physical
        self.stats.record(write=write, sequential=sequential, count=1)
        per_device = self.device_stats.setdefault(extent.device, IOStatistics())
        per_device.record(write=write, sequential=sequential, count=1)
        if retry:
            self.stats.record_retry(write=write, count=1)
            per_device.record_retry(write=write, count=1)
        pipelined = self._pipeline_writes if write else self._pipeline_reads
        if pipelined:
            self.stats.record_pipeline(write=write, count=1)
            per_device.record_pipeline(write=write, count=1)
        obs = self._obs
        if obs is not None:
            obs.on_io(
                extent.device,
                write=write,
                sequential=sequential,
                retry=retry,
                pipeline=pipelined,
            )

    def _charge_backoff(self, extent: Extent, attempt: int, *, write: bool) -> None:
        """Charge the deterministic backoff penalty before a retry attempt.

        Penalty operations are random accesses (the head settles, nothing
        transfers usefully), charged to the same streams as the access they
        precede and tagged as retries.
        """
        penalty = self.retry_policy.penalty(attempt)
        if penalty <= 0:
            return
        self.stats.record(write=write, sequential=False, count=penalty)
        self.stats.record_retry(write=write, count=penalty)
        per_device = self.device_stats.setdefault(extent.device, IOStatistics())
        per_device.record(write=write, sequential=False, count=penalty)
        per_device.record_retry(write=write, count=penalty)
        self.report.backoff_ops += penalty
        obs = self._obs
        if obs is not None:
            obs.on_io(
                extent.device,
                write=write,
                sequential=False,
                retry=True,
                count=penalty,
            )

    # -- uncharged access ---------------------------------------------------------

    def load(self, extent: Extent, pages: List[object]) -> None:
        """Install *pages* into *extent* without charging I/O.

        Used to place pre-existing base relations on disk before an
        experiment starts measuring.
        """
        self._ensure_capacity(extent, max(len(pages) - 1, 0))
        if self.checksums:
            extent._pages = [frame_page(page) for page in pages]
        else:
            extent._pages = list(pages)

    def find_extent(self, name: str) -> Optional[Extent]:
        """The extent allocated under *name*, if any.

        Chaos tests use this to target a specific file -- e.g. damaging a
        stored partition page between a crash and the resume.
        """
        for extent in self._extents:
            if extent.name == name:
                return extent
        return None

    def peek(self, extent: Extent, index: int) -> object:
        """Read a page without charging (test and verification use only)."""
        if index >= extent.n_pages:
            raise StorageError(
                f"peek past end of extent {extent.name!r}: "
                f"page {index} of {extent.n_pages}",
                extent=extent.name,
                device=extent.device,
                page_index=index,
            )
        stored = extent._pages[index]
        if isinstance(stored, PageFrame):
            return stored.payload
        return stored

    def truncate(self, extent: Extent, keep: int = 0) -> None:
        """Drop the contents of *extent* beyond the first *keep* pages.

        The reservation is kept.  ``keep=0`` (the default) empties the
        extent; a positive *keep* rolls a file back to a watermark, which is
        how resume discards the partial work of an interrupted sweep.
        """
        if keep < 0:
            raise StorageError(
                f"cannot keep {keep} pages of extent {extent.name!r}",
                extent=extent.name,
                device=extent.device,
            )
        if keep > extent.n_pages:
            raise StorageError(
                f"cannot keep {keep} pages of extent {extent.name!r}: "
                f"only {extent.n_pages} stored",
                extent=extent.name,
                device=extent.device,
            )
        del extent._pages[keep:]

    def corrupt_stored(self, extent: Extent, index: int) -> None:
        """Damage the *stored* copy of a page (chaos-test hook, uncharged).

        Unlike delivery-time corruption from the fault injector, this damage
        is persistent: retries re-read the same bad page, so with checksums
        enabled the access exhausts its retry policy and fails permanently
        -- the trigger for the joiner's graceful-degradation path.
        """
        if index >= extent.n_pages:
            raise StorageError(
                f"corrupt past end of extent {extent.name!r}",
                extent=extent.name,
                device=extent.device,
                page_index=index,
            )
        stored = extent._pages[index]
        if isinstance(stored, PageFrame):
            extent._pages[index] = PageFrame(torn_copy(stored.payload), stored.checksum)
        else:
            extent._pages[index] = torn_copy(stored)

    # -- head control ----------------------------------------------------------------

    def park_heads(self) -> None:
        """Forget all head positions: the next access on every device is random.

        Experiments call this between phases that a real system would not run
        back-to-back, so a lucky head position cannot leak sequentiality
        across phase boundaries.
        """
        self._heads = {}

    def head_position(self, device: int) -> Optional[int]:
        """Current head position of *device* (None if never accessed)."""
        return self._heads.get(device)


class _PipelineTagContext:
    """Context manager returned by :meth:`SimulatedDisk.pipeline_tag`.

    Nesting composes: each context sets its flags on entry and restores the
    previous values on exit, so tagging is scoped exactly to the pipeline
    stage that issued the I/O.
    """

    __slots__ = ("_disk", "_reads", "_writes", "_saved")

    def __init__(self, disk: SimulatedDisk, *, reads: bool, writes: bool) -> None:
        self._disk = disk
        self._reads = reads
        self._writes = writes
        self._saved: Tuple[bool, bool] = (False, False)

    def __enter__(self) -> SimulatedDisk:
        self._saved = (self._disk._pipeline_reads, self._disk._pipeline_writes)
        if self._reads:
            self._disk._pipeline_reads = True
        if self._writes:
            self._disk._pipeline_writes = True
        return self._disk

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self._disk._pipeline_reads, self._disk._pipeline_writes = self._saved
