"""The simulated disk: contiguous extents and head-position cost accounting.

The reproduction's equivalent of the paper's "main-memory simulations"
(Section 4.1).  Pages live in Python lists; what is simulated is the *cost*
of moving them:

* The address space is divided into **devices**, each with its own
  independent head.  Placing base relations, temporary partitions, the tuple
  cache, and the result on separate devices reproduces the paper's
  accounting, where e.g. reading an inner-partition page and appending to
  the tuple cache do not destroy each other's sequentiality, while two
  interleaved streams on the *same* device do (the paper: in-memory
  partition buckets "must be flushed more often, requiring more random
  I/O").
* An **extent** is a named, contiguous run of pages on one device ("if
  partitions are stored on consecutive disk pages then, after an initial
  disk seek to the first page of a partition, its remaining pages are read
  sequentially").
* Every :meth:`SimulatedDisk.read` / :meth:`SimulatedDisk.write` records one
  I/O operation: sequential when the target page is at or immediately after
  the device head, random otherwise.

Loading pre-existing base relations uses :meth:`SimulatedDisk.load`, which
bypasses accounting -- the paper's measurements start with the inputs
already on disk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.model.errors import StorageError
from repro.storage.iostats import IOStatistics


class Extent:
    """A named run of pages on one device, contiguous per segment.

    An extent normally occupies a single physically contiguous segment of
    its device, reserved at allocation time.  If an extent outgrows its
    reservation a new contiguous segment is chained on; crossing a segment
    boundary costs a seek, exactly as a physical file fragment would.

    Page contents are arbitrary Python objects (the library stores lists of
    tuples); the simulator never inspects them.
    """

    __slots__ = ("name", "device", "_segments", "_pages", "_disk")

    def __init__(self, name: str, device: int, disk: "SimulatedDisk") -> None:
        self.name = name
        self.device = device
        self._segments: List[Tuple[int, int]] = []  # (physical base, capacity)
        self._pages: List[object] = []
        self._disk = disk

    @property
    def n_pages(self) -> int:
        """Number of pages currently stored in the extent."""
        return len(self._pages)

    @property
    def capacity(self) -> int:
        """Total reserved pages across all segments."""
        return sum(cap for _, cap in self._segments)

    def physical_address(self, index: int) -> int:
        """Physical device address of page *index*."""
        if index < 0:
            raise StorageError(f"negative page index {index} in extent {self.name!r}")
        remaining = index
        for base, cap in self._segments:
            if remaining < cap:
                return base + remaining
            remaining -= cap
        raise StorageError(
            f"page index {index} beyond capacity {self.capacity} of extent {self.name!r}"
        )

    def __repr__(self) -> str:
        return (
            f"Extent({self.name!r}, device={self.device}, pages={self.n_pages}, "
            f"capacity={self.capacity})"
        )


class SimulatedDisk:
    """Multi-device disk simulator with per-device head tracking.

    Args:
        stats: the I/O counter stream every charged access is recorded to.
            Callers typically pass ``PhaseTracker().stats`` so phase-level
            accounting composes on top.
    """

    def __init__(self, stats: Optional[IOStatistics] = None) -> None:
        self.stats = stats if stats is not None else IOStatistics()
        #: Per-device breakdown of the same operations counted in ``stats``.
        self.device_stats: Dict[int, IOStatistics] = {}
        self._heads: Dict[int, Optional[int]] = {}
        self._alloc_pointer: Dict[int, int] = {}
        self._extents: List[Extent] = []

    # -- allocation ----------------------------------------------------------

    def allocate(self, name: str, device: int = 0, capacity: int = 1) -> Extent:
        """Reserve a contiguous extent of *capacity* pages on *device*."""
        if capacity < 1:
            raise StorageError(f"extent capacity must be >= 1, got {capacity}")
        extent = Extent(name, device, self)
        self._reserve_segment(extent, capacity)
        self._extents.append(extent)
        return extent

    def _reserve_segment(self, extent: Extent, capacity: int) -> None:
        pointer = self._alloc_pointer.get(extent.device, 0)
        extent._segments.append((pointer, capacity))
        # A one-page guard gap between reservations: two distinct files are
        # never treated as physically adjacent, so finishing one extent and
        # starting the next always costs a seek.
        self._alloc_pointer[extent.device] = pointer + capacity + 1

    def _ensure_capacity(self, extent: Extent, index: int) -> None:
        while index >= extent.capacity:
            # Chain a new segment at least as large as the current extent so
            # repeated growth stays amortized; the segment boundary itself
            # costs a seek via the head model.
            self._reserve_segment(extent, max(extent.capacity, 1))

    # -- charged page access ---------------------------------------------------

    def read(self, extent: Extent, index: int) -> object:
        """Read page *index* of *extent*, charging one I/O operation."""
        if index >= extent.n_pages:
            raise StorageError(
                f"read past end of extent {extent.name!r}: "
                f"page {index} of {extent.n_pages}"
            )
        self._charge(extent, index, write=False)
        return extent._pages[index]

    def write(self, extent: Extent, index: int, page: object) -> None:
        """Write *page* at *index* (appending when ``index == n_pages``)."""
        if index > extent.n_pages:
            raise StorageError(
                f"write would leave a hole in extent {extent.name!r}: "
                f"page {index}, current length {extent.n_pages}"
            )
        self._ensure_capacity(extent, index)
        self._charge(extent, index, write=True)
        if index == extent.n_pages:
            extent._pages.append(page)
        else:
            extent._pages[index] = page

    def append(self, extent: Extent, page: object) -> int:
        """Append *page* to *extent*; returns its page index."""
        index = extent.n_pages
        self.write(extent, index, page)
        return index

    def _charge(self, extent: Extent, index: int, *, write: bool) -> None:
        physical = extent.physical_address(index)
        head = self._heads.get(extent.device)
        sequential = head is not None and (physical == head + 1 or physical == head)
        self._heads[extent.device] = physical
        self.stats.record(write=write, sequential=sequential, count=1)
        per_device = self.device_stats.setdefault(extent.device, IOStatistics())
        per_device.record(write=write, sequential=sequential, count=1)

    # -- uncharged access ---------------------------------------------------------

    def load(self, extent: Extent, pages: List[object]) -> None:
        """Install *pages* into *extent* without charging I/O.

        Used to place pre-existing base relations on disk before an
        experiment starts measuring.
        """
        self._ensure_capacity(extent, max(len(pages) - 1, 0))
        extent._pages = list(pages)

    def peek(self, extent: Extent, index: int) -> object:
        """Read a page without charging (test and verification use only)."""
        if index >= extent.n_pages:
            raise StorageError(
                f"peek past end of extent {extent.name!r}: "
                f"page {index} of {extent.n_pages}"
            )
        return extent._pages[index]

    def truncate(self, extent: Extent) -> None:
        """Drop the contents of *extent* (reservation is kept)."""
        extent._pages = []

    # -- head control ----------------------------------------------------------------

    def park_heads(self) -> None:
        """Forget all head positions: the next access on every device is random.

        Experiments call this between phases that a real system would not run
        back-to-back, so a lucky head position cannot leak sequentiality
        across phase boundaries.
        """
        self._heads = {}

    def head_position(self, device: int) -> Optional[int]:
        """Current head position of *device* (None if never accessed)."""
        return self._heads.get(device)
