"""Heap files: paged storage of valid-time relations over one extent.

A :class:`HeapFile` is the physical representation of a relation (or of a
partition, or of a sort run -- anything tuple-shaped) as a sequence of
fixed-capacity pages inside a single extent.  All reads and writes are
charged through the owning :class:`SimulatedDisk`.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.model.vtuple import VTTuple
from repro.storage.columnar_page import ColumnarPage, KeyDictionary, page_view
from repro.storage.disk import Extent, SimulatedDisk
from repro.storage.page import PageSpec


class HeapFile:
    """A paged file of tuples.

    Args:
        disk: the simulated disk holding the file.
        extent: the extent the pages live in.
        spec: page geometry.
        columnar: store pages in the packed zero-copy column layout
            (:class:`~repro.storage.columnar_page.ColumnarPage`) instead of
            tuple lists.  The logical content is identical -- a columnar
            page is a Sequence of the same tuples -- but batch consumers
            get ``np.frombuffer`` column views instead of re-decomposing
            each page tuple by tuple.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        extent: Extent,
        spec: PageSpec,
        *,
        columnar: bool = False,
    ) -> None:
        self.disk = disk
        self.extent = extent
        self.spec = spec
        self.columnar = columnar
        self.dictionary: Optional[KeyDictionary] = KeyDictionary() if columnar else None
        self._write_page: List[VTTuple] = []
        self._n_tuples = 0
        # Endpoint-sortedness metadata: True while every tuple has arrived
        # in (start, end) order.  The planner uses it to skip the forward
        # sweep's external-sort charge; one out-of-order append invalidates
        # it permanently (cheap incremental check, never a re-scan).
        self._endpoint_sorted = True
        self._last_span: Optional[Tuple[int, int]] = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(
        cls,
        disk: SimulatedDisk,
        name: str,
        spec: PageSpec,
        *,
        device: int = 0,
        capacity_tuples: int = 0,
        columnar: bool = False,
    ) -> "HeapFile":
        """Allocate a fresh heap file sized for *capacity_tuples*."""
        capacity_pages = max(1, spec.pages_for_tuples(capacity_tuples))
        extent = disk.allocate(name, device=device, capacity=capacity_pages)
        return cls(disk, extent, spec, columnar=columnar)

    @classmethod
    def bulk_load(
        cls,
        disk: SimulatedDisk,
        name: str,
        spec: PageSpec,
        tuples: Iterable[VTTuple],
        *,
        device: int = 0,
        columnar: bool = False,
    ) -> "HeapFile":
        """Create a file already containing *tuples*, without charging I/O.

        This is how base relations enter an experiment: the paper's
        measurements assume the inputs are on disk before evaluation begins.
        """
        tuple_list = list(tuples)
        heap = cls.create(
            disk,
            name,
            spec,
            device=device,
            capacity_tuples=max(1, len(tuple_list)),
            columnar=columnar,
        )
        capacity = spec.capacity
        chunks = [
            tuple_list[i : i + capacity] for i in range(0, len(tuple_list), capacity)
        ]
        pages: List[object]
        if columnar:
            pages = [
                ColumnarPage.from_tuples(chunk, heap.dictionary) for chunk in chunks
            ]
        else:
            pages = list(chunks)
        disk.load(heap.extent, pages)
        heap._n_tuples = len(tuple_list)
        last: Optional[Tuple[int, int]] = None
        sorted_so_far = True
        for tup in tuple_list:
            span = (tup.vs, tup.ve)
            if last is not None and span < last:
                sorted_so_far = False
                break
            last = span
        heap._endpoint_sorted = sorted_so_far
        heap._last_span = (
            (tuple_list[-1].vs, tuple_list[-1].ve) if tuple_list else None
        )
        return heap

    # -- geometry -----------------------------------------------------------------

    @property
    def n_pages(self) -> int:
        """Pages currently on disk (excludes the unflushed write buffer)."""
        return self.extent.n_pages

    @property
    def n_tuples(self) -> int:
        """Tuples stored, including any still in the write buffer."""
        return self._n_tuples

    @property
    def endpoint_sorted(self) -> bool:
        """True while every tuple arrived in ``(start, end)`` order.

        An empty file is trivially sorted.  The flag is maintained
        incrementally by :meth:`bulk_load`, :meth:`append` and
        :meth:`append_coded_run` (the columnar bulk path), and is
        conservative: rewinds and abandoned buffers clear it rather than
        re-scanning.
        """
        return self._endpoint_sorted

    def _note_span(self, start: int, end: int) -> None:
        span = (start, end)
        if self._last_span is not None and span < self._last_span:
            self._endpoint_sorted = False
        self._last_span = span

    # -- writing --------------------------------------------------------------------

    def append(self, tup: VTTuple) -> None:
        """Buffer *tup*; a full page is flushed to disk automatically."""
        if hasattr(tup, "vs"):
            self._note_span(tup.vs, tup.ve)
        else:
            # Opaque payloads (some harnesses store bare rows) carry no
            # timestamps; without spans the flag cannot be maintained.
            self._endpoint_sorted = False
            self._last_span = None
        self._write_page.append(tup)
        self._n_tuples += 1
        if len(self._write_page) >= self.spec.capacity:
            self.flush()

    def append_many(self, tuples: Iterable[VTTuple]) -> None:
        """Append every tuple of *tuples*."""
        for tup in tuples:
            self.append(tup)

    def flush(self) -> None:
        """Write the partial page buffer to disk (no-op when empty)."""
        if self._write_page:
            payload: object = self._write_page
            if self.columnar:
                payload = ColumnarPage.from_tuples(self._write_page, self.dictionary)
            self.disk.append(self.extent, payload)
            self._write_page = []

    def append_coded_run(
        self,
        starts: Sequence[int],
        ends: Sequence[int],
        codes: Sequence[int],
        payloads: Sequence[Tuple],
    ) -> None:
        """Append pre-coded columnar rows, packing pages directly.

        The zero-copy partitioner routes the source pages' columns here
        without ever materializing tuple objects; the caller guarantees
        *codes* are valid in this file's dictionary (the partitioner shares
        the source relation's dictionary with its partitions, so source
        codes pass through untranslated).  Writes exactly the page sequence
        ``append_many`` + ``flush`` would: one full page per
        ``spec.capacity`` rows and a final partial page, each charged as
        one append.
        """
        if not self.columnar or self.dictionary is None:
            raise ValueError("append_coded_run requires a columnar heap file")
        if self._write_page:
            self.flush()
        capacity = self.spec.capacity
        n = len(starts)
        for k in range(n):
            self._note_span(int(starts[k]), int(ends[k]))
        for i in range(0, n, capacity):
            j = min(i + capacity, n)
            packed = array("q")
            packed.extend(starts[i:j])
            packed.extend(ends[i:j])
            packed.extend(codes[i:j])
            page = ColumnarPage(
                packed.tobytes(), j - i, self.dictionary, tuple(payloads[i:j])
            )
            self.disk.append(self.extent, page)
        self._n_tuples += n

    def abandon(self) -> None:
        """Drop the unflushed write buffer without charging any I/O.

        Models losing volatile state in a crash: tuples that never reached a
        disk page simply disappear.  Used by the exception path of the sweep,
        where a charged flush would be I/O issued by a dead process.
        """
        self._n_tuples -= len(self._write_page)
        self._write_page = []
        if self._n_tuples > 0:
            # The dropped buffer may have carried the watermark span; without
            # re-scanning we can no longer vouch for the ordering.
            self._endpoint_sorted = False
        else:
            self._endpoint_sorted = True
            self._last_span = None

    def rewind_to(self, n_pages: int, n_tuples: int) -> None:
        """Roll the file back to a recorded watermark (uncharged).

        Discards every page beyond *n_pages*, any buffered partial page, and
        resets the tuple count to *n_tuples* -- how resume truncates the
        partial output of an interrupted sweep before replaying from the
        last checkpoint.
        """
        self.disk.truncate(self.extent, keep=n_pages)
        self._write_page = []
        self._n_tuples = n_tuples
        if n_tuples == 0:
            self._endpoint_sorted = True
            self._last_span = None
        else:
            # Conservative: the watermark span of the surviving prefix is
            # unknown without a re-scan.
            self._endpoint_sorted = False

    # -- reading --------------------------------------------------------------------

    def read_page(self, index: int):
        """Read page *index*, charging one I/O.

        List pages are handed out as defensive copies; columnar pages are
        immutable and handed out as-is (that unshared copy is exactly the
        per-read cost the columnar layout removes).
        """
        return page_view(self.disk.read(self.extent, index))

    def scan_pages(self) -> Iterator[List[VTTuple]]:
        """Scan the file page by page, charging one I/O each.

        Over a freshly allocated extent this costs one random access plus
        ``n_pages - 1`` sequential accesses, matching the paper's accounting
        for a linear relation scan.
        """
        for index in range(self.extent.n_pages):
            yield page_view(self.disk.read(self.extent, index))

    def scan(self) -> Iterator[VTTuple]:
        """Scan the file tuple by tuple (page I/O charged underneath)."""
        for page in self.scan_pages():
            yield from page

    # -- verification (uncharged) -------------------------------------------------------

    def all_tuples(self) -> List[VTTuple]:
        """Every stored tuple, *without* charging I/O (tests and setup only)."""
        tuples: List[VTTuple] = []
        for index in range(self.extent.n_pages):
            tuples.extend(self.disk.peek(self.extent, index))
        tuples.extend(self._write_page)
        return tuples

    def page_of_tuple(self, position: int) -> int:
        """Page index holding the tuple at flat *position* (for sampling cost)."""
        return position // self.spec.capacity

    def read_tuple(self, position: int) -> Optional[VTTuple]:
        """Random-read the tuple at flat *position*, charging one page I/O."""
        page_index = self.page_of_tuple(position)
        page = self.read_page(page_index)
        offset = position - page_index * self.spec.capacity
        if offset >= len(page):
            return None
        return page[offset]
