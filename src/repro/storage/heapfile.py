"""Heap files: paged storage of valid-time relations over one extent.

A :class:`HeapFile` is the physical representation of a relation (or of a
partition, or of a sort run -- anything tuple-shaped) as a sequence of
fixed-capacity pages inside a single extent.  All reads and writes are
charged through the owning :class:`SimulatedDisk`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.model.vtuple import VTTuple
from repro.storage.disk import Extent, SimulatedDisk
from repro.storage.page import PageSpec


class HeapFile:
    """A paged file of tuples.

    Args:
        disk: the simulated disk holding the file.
        extent: the extent the pages live in.
        spec: page geometry.
    """

    def __init__(self, disk: SimulatedDisk, extent: Extent, spec: PageSpec) -> None:
        self.disk = disk
        self.extent = extent
        self.spec = spec
        self._write_page: List[VTTuple] = []
        self._n_tuples = 0

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(
        cls,
        disk: SimulatedDisk,
        name: str,
        spec: PageSpec,
        *,
        device: int = 0,
        capacity_tuples: int = 0,
    ) -> "HeapFile":
        """Allocate a fresh heap file sized for *capacity_tuples*."""
        capacity_pages = max(1, spec.pages_for_tuples(capacity_tuples))
        extent = disk.allocate(name, device=device, capacity=capacity_pages)
        return cls(disk, extent, spec)

    @classmethod
    def bulk_load(
        cls,
        disk: SimulatedDisk,
        name: str,
        spec: PageSpec,
        tuples: Iterable[VTTuple],
        *,
        device: int = 0,
    ) -> "HeapFile":
        """Create a file already containing *tuples*, without charging I/O.

        This is how base relations enter an experiment: the paper's
        measurements assume the inputs are on disk before evaluation begins.
        """
        tuple_list = list(tuples)
        heap = cls.create(
            disk, name, spec, device=device, capacity_tuples=max(1, len(tuple_list))
        )
        capacity = spec.capacity
        pages: List[object] = [
            tuple_list[i : i + capacity] for i in range(0, len(tuple_list), capacity)
        ]
        disk.load(heap.extent, pages)
        heap._n_tuples = len(tuple_list)
        return heap

    # -- geometry -----------------------------------------------------------------

    @property
    def n_pages(self) -> int:
        """Pages currently on disk (excludes the unflushed write buffer)."""
        return self.extent.n_pages

    @property
    def n_tuples(self) -> int:
        """Tuples stored, including any still in the write buffer."""
        return self._n_tuples

    # -- writing --------------------------------------------------------------------

    def append(self, tup: VTTuple) -> None:
        """Buffer *tup*; a full page is flushed to disk automatically."""
        self._write_page.append(tup)
        self._n_tuples += 1
        if len(self._write_page) >= self.spec.capacity:
            self.flush()

    def append_many(self, tuples: Iterable[VTTuple]) -> None:
        """Append every tuple of *tuples*."""
        for tup in tuples:
            self.append(tup)

    def flush(self) -> None:
        """Write the partial page buffer to disk (no-op when empty)."""
        if self._write_page:
            self.disk.append(self.extent, self._write_page)
            self._write_page = []

    def abandon(self) -> None:
        """Drop the unflushed write buffer without charging any I/O.

        Models losing volatile state in a crash: tuples that never reached a
        disk page simply disappear.  Used by the exception path of the sweep,
        where a charged flush would be I/O issued by a dead process.
        """
        self._n_tuples -= len(self._write_page)
        self._write_page = []

    def rewind_to(self, n_pages: int, n_tuples: int) -> None:
        """Roll the file back to a recorded watermark (uncharged).

        Discards every page beyond *n_pages*, any buffered partial page, and
        resets the tuple count to *n_tuples* -- how resume truncates the
        partial output of an interrupted sweep before replaying from the
        last checkpoint.
        """
        self.disk.truncate(self.extent, keep=n_pages)
        self._write_page = []
        self._n_tuples = n_tuples

    # -- reading --------------------------------------------------------------------

    def read_page(self, index: int) -> List[VTTuple]:
        """Read page *index*, charging one I/O."""
        return list(self.disk.read(self.extent, index))

    def scan_pages(self) -> Iterator[List[VTTuple]]:
        """Scan the file page by page, charging one I/O each.

        Over a freshly allocated extent this costs one random access plus
        ``n_pages - 1`` sequential accesses, matching the paper's accounting
        for a linear relation scan.
        """
        for index in range(self.extent.n_pages):
            yield list(self.disk.read(self.extent, index))

    def scan(self) -> Iterator[VTTuple]:
        """Scan the file tuple by tuple (page I/O charged underneath)."""
        for page in self.scan_pages():
            yield from page

    # -- verification (uncharged) -------------------------------------------------------

    def all_tuples(self) -> List[VTTuple]:
        """Every stored tuple, *without* charging I/O (tests and setup only)."""
        tuples: List[VTTuple] = []
        for index in range(self.extent.n_pages):
            tuples.extend(self.disk.peek(self.extent, index))
        tuples.extend(self._write_page)
        return tuples

    def page_of_tuple(self, position: int) -> int:
        """Page index holding the tuple at flat *position* (for sampling cost)."""
        return position // self.spec.capacity

    def read_tuple(self, position: int) -> Optional[VTTuple]:
        """Random-read the tuple at flat *position*, charging one page I/O."""
        page_index = self.page_of_tuple(position)
        page = self.read_page(page_index)
        offset = position - page_index * self.spec.capacity
        if offset >= len(page):
            return None
        return page[offset]
