"""I/O statistics and the weighted random/sequential cost model.

The unit of measurement throughout the reproduction is the paper's: one
sequential page transfer costs ``io_seq`` and one random access (a seek plus
a transfer) costs ``io_ran``.  The experiments vary the ratio
``io_ran : io_seq`` over 2:1, 5:1, and 10:1 (Section 4.2) with ``io_seq``
normalized to 1.

Statistics are additive so phase-level accounting (sampling, partitioning,
joining -- the three components of ``C_total`` in Section 3.4) composes into
relation-level and experiment-level totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


@dataclass(frozen=True)
class CostModel:
    """Weights for random and sequential I/O operations.

    Attributes:
        io_ran: cost of one random access (``IO_ran`` in Appendix A.2).
        io_seq: cost of one sequential access (``IO_seq``).
    """

    io_ran: float = 5.0
    io_seq: float = 1.0

    def __post_init__(self) -> None:
        if self.io_ran <= 0 or self.io_seq <= 0:
            raise ValueError("I/O costs must be positive")
        if self.io_ran < self.io_seq:
            raise ValueError("random access cannot be cheaper than sequential")

    @classmethod
    def with_ratio(cls, ratio: float) -> "CostModel":
        """Cost model with ``io_ran = ratio`` and ``io_seq = 1`` (paper style)."""
        return cls(io_ran=float(ratio), io_seq=1.0)

    @property
    def ratio(self) -> float:
        """The random:sequential cost ratio."""
        return self.io_ran / self.io_seq

    def cost_of_run(self, pages: int) -> float:
        """Cost of touching *pages* contiguous pages: 1 random + rest sequential.

        This is the paper's recurring accounting unit: "a single random seek
        followed by i-1 sequential reads".  Zero pages cost nothing.
        """
        if pages <= 0:
            return 0.0
        return self.io_ran + (pages - 1) * self.io_seq


@dataclass
class IOStatistics:
    """Mutable counters of I/O operations, split by kind and direction.

    ``retry_reads``/``retry_writes`` count access *re-attempts* forced by
    injected faults or checksum failures.  Every retried attempt is charged
    into the four main buckets exactly like a first attempt (so retries
    appear in ``total_ops`` and :meth:`cost`); the retry counters exist so
    fault overhead stays separately visible.

    ``prefetch_reads``/``writeback_writes`` are the analogous tags for the
    pipelined sweep (see :mod:`repro.storage.prefetch`): reads issued ahead
    of demand and writes deferred to a barrier are charged into the four
    main buckets like any other access, then tagged here so the pipeline's
    share of the bill stays auditable and can never be double-counted.
    """

    random_reads: int = 0
    sequential_reads: int = 0
    random_writes: int = 0
    sequential_writes: int = 0
    retry_reads: int = 0
    retry_writes: int = 0
    prefetch_reads: int = 0
    writeback_writes: int = 0

    #: The label-tag fields: counters that annotate already-charged
    #: operations without ever adding to ``total_ops`` or :meth:`cost`.
    TAG_FIELDS = ("retry_reads", "retry_writes", "prefetch_reads", "writeback_writes")

    # -- recording ----------------------------------------------------------

    def record(self, *, write: bool, sequential: bool, count: int = 1) -> None:
        """Record *count* operations of the given kind."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if write:
            if sequential:
                self.sequential_writes += count
            else:
                self.random_writes += count
        else:
            if sequential:
                self.sequential_reads += count
            else:
                self.random_reads += count

    def record_retry(self, *, write: bool, count: int = 1) -> None:
        """Tag *count* already-recorded operations as fault retries."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if write:
            self.retry_writes += count
        else:
            self.retry_reads += count

    def record_pipeline(self, *, write: bool, count: int = 1) -> None:
        """Tag *count* already-recorded operations as pipeline traffic.

        Reads tagged this way were issued by the prefetcher ahead of demand;
        writes were deferred by the write-behind buffer.  Like
        :meth:`record_retry`, this never touches the four main buckets.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if write:
            self.writeback_writes += count
        else:
            self.prefetch_reads += count

    def record_tag(self, tag: str, count: int = 1) -> None:
        """Tag *count* already-recorded operations under a named tag field.

        The generic entry point the metrics bridge uses: ``tag`` must be one
        of :attr:`TAG_FIELDS` (``retry_reads``, ``retry_writes``,
        ``prefetch_reads``, ``writeback_writes``).  An unknown tag raises
        instead of silently minting a counter nothing will ever read.
        """
        if tag not in self.TAG_FIELDS:
            raise ValueError(
                f"unknown I/O tag {tag!r}; valid tags are {self.TAG_FIELDS}"
            )
        if count < 0:
            raise ValueError("count must be non-negative")
        setattr(self, tag, getattr(self, tag) + count)

    def add(self, other: "IOStatistics") -> None:
        """Accumulate *other* into this object."""
        self.random_reads += other.random_reads
        self.sequential_reads += other.sequential_reads
        self.random_writes += other.random_writes
        self.sequential_writes += other.sequential_writes
        self.retry_reads += other.retry_reads
        self.retry_writes += other.retry_writes
        self.prefetch_reads += other.prefetch_reads
        self.writeback_writes += other.writeback_writes

    def merge(self, other: "IOStatistics") -> "IOStatistics":
        """Accumulate *other* into this object and return ``self``.

        The explicit merge point for per-worker / per-stage counters: each
        contributing :class:`IOStatistics` is an independent ledger, and the
        caller folds them together exactly once.  Merging an object into
        itself would double every counter, so it is rejected.
        """
        if other is self:
            raise ValueError("cannot merge IOStatistics into itself")
        self.add(other)
        return self

    def __iadd__(self, other: "IOStatistics") -> "IOStatistics":
        return self.merge(other)

    # -- derived quantities ---------------------------------------------------

    @property
    def random_ops(self) -> int:
        return self.random_reads + self.random_writes

    @property
    def sequential_ops(self) -> int:
        return self.sequential_reads + self.sequential_writes

    @property
    def total_ops(self) -> int:
        """Total pages touched, regardless of access kind."""
        return self.random_ops + self.sequential_ops

    @property
    def reads(self) -> int:
        return self.random_reads + self.sequential_reads

    @property
    def writes(self) -> int:
        return self.random_writes + self.sequential_writes

    @property
    def retry_ops(self) -> int:
        """Access attempts that were fault-forced retries."""
        return self.retry_reads + self.retry_writes

    @property
    def pipeline_ops(self) -> int:
        """Operations that went through the prefetch/write-behind pipeline."""
        return self.prefetch_reads + self.writeback_writes

    def cost(self, model: CostModel) -> float:
        """Weighted evaluation cost under *model* (the paper's y-axis)."""
        return self.random_ops * model.io_ran + self.sequential_ops * model.io_seq

    def as_dict(self) -> Dict[str, int]:
        """Every counter field as a plain dict (the metrics-bridge shape)."""
        return {
            "random_reads": self.random_reads,
            "sequential_reads": self.sequential_reads,
            "random_writes": self.random_writes,
            "sequential_writes": self.sequential_writes,
            "retry_reads": self.retry_reads,
            "retry_writes": self.retry_writes,
            "prefetch_reads": self.prefetch_reads,
            "writeback_writes": self.writeback_writes,
        }

    def copy(self) -> "IOStatistics":
        return IOStatistics(
            self.random_reads,
            self.sequential_reads,
            self.random_writes,
            self.sequential_writes,
            self.retry_reads,
            self.retry_writes,
            self.prefetch_reads,
            self.writeback_writes,
        )

    def diff(self, earlier: "IOStatistics") -> "IOStatistics":
        """Operations performed since the *earlier* snapshot."""
        return IOStatistics(
            self.random_reads - earlier.random_reads,
            self.sequential_reads - earlier.sequential_reads,
            self.random_writes - earlier.random_writes,
            self.sequential_writes - earlier.sequential_writes,
            self.retry_reads - earlier.retry_reads,
            self.retry_writes - earlier.retry_writes,
            self.prefetch_reads - earlier.prefetch_reads,
            self.writeback_writes - earlier.writeback_writes,
        )

    def __repr__(self) -> str:
        base = (
            f"IOStatistics(ran_r={self.random_reads}, seq_r={self.sequential_reads}, "
            f"ran_w={self.random_writes}, seq_w={self.sequential_writes}"
        )
        if self.retry_ops:
            base += f", retry_r={self.retry_reads}, retry_w={self.retry_writes}"
        if self.pipeline_ops:
            base += (
                f", prefetch_r={self.prefetch_reads}, "
                f"writeback_w={self.writeback_writes}"
            )
        return base + ")"


@dataclass
class PhaseTracker:
    """Per-phase I/O accounting over a shared :class:`IOStatistics` stream.

    ``C_total = C_sample + C_partition + C_join`` (Section 3.4): algorithms
    wrap each phase in :meth:`phase` and the tracker attributes the I/O the
    disk records in between to that phase.
    """

    stats: IOStatistics = field(default_factory=IOStatistics)
    phases: Dict[str, IOStatistics] = field(default_factory=dict)
    _current: Optional[str] = None
    _mark: IOStatistics = field(default_factory=IOStatistics)

    def phase(self, name: str) -> "_PhaseContext":
        """Context manager attributing enclosed I/O to phase *name*."""
        return _PhaseContext(self, name)

    def _enter(self, name: str) -> None:
        if self._current is not None:
            raise RuntimeError(f"phase {self._current!r} already active")
        self._current = name
        self._mark = self.stats.copy()

    def _exit(self) -> None:
        if self._current is None:
            raise RuntimeError("no active phase")
        delta = self.stats.diff(self._mark)
        bucket = self.phases.setdefault(self._current, IOStatistics())
        bucket.add(delta)
        self._current = None

    def recover(self) -> Optional[str]:
        """Close a phase left open by an exception (e.g. a simulated crash).

        I/O recorded between the phase entry and the interruption is
        attributed to that phase, exactly as a normal exit would have; a
        subsequent :meth:`phase` with the same name then accumulates the
        resumed work on top -- "correctly merged" statistics across a
        crash/resume boundary.  Returns the name of the recovered phase, or
        None when no phase was open.
        """
        if self._current is None:
            return None
        name = self._current
        self._exit()
        return name

    def phase_cost(self, name: str, model: CostModel) -> float:
        """Weighted cost of phase *name* (0 when the phase never ran)."""
        phase_stats = self.phases.get(name)
        return phase_stats.cost(model) if phase_stats is not None else 0.0

    def breakdown(self, model: CostModel) -> Dict[str, float]:
        """Weighted cost of every recorded phase."""
        return {name: stats.cost(model) for name, stats in self.phases.items()}


class _PhaseContext:
    """Context manager returned by :meth:`PhaseTracker.phase`."""

    def __init__(self, tracker: PhaseTracker, name: str) -> None:
        self._tracker = tracker
        self._name = name

    def __enter__(self) -> PhaseTracker:
        self._tracker._enter(self._name)
        return self._tracker

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self._tracker._exit()


def iter_phases(tracker: PhaseTracker) -> Iterator[str]:
    """Names of the phases recorded so far, in insertion order."""
    return iter(tracker.phases)
