"""Saving and loading valid-time relations as portable files.

The simulator keeps relations in memory; a usable library also needs them
to survive a process.  Two formats:

* **CSV** -- one row per tuple, explicit attributes in schema order plus
  ``vs``/``ve`` columns; human-editable, loses non-string payload types
  unless column converters are supplied.
* **JSON lines** -- schema header record followed by one record per tuple;
  round-trips every JSON-representable payload exactly.
* **Columnar JSON** -- schema header plus four parallel columns (keys,
  payloads, starts, ends): the batch decomposition the execution layer
  works in, written and parsed in whole-column operations instead of one
  record per tuple.  Same round-trip guarantees as JSON lines, markedly
  faster to load for large relations.

The JSON formats carry end-to-end **checksums**: JSON lines appends a
trailer record with the CRC-32 of every tuple record's bytes, and columnar
files embed the CRC-32 of their column data.  Loading verifies the checksum
when present (:class:`~repro.model.errors.ChecksumError` on mismatch) and
accepts files without one, so pre-existing files keep loading.
"""

from __future__ import annotations

import csv
import json
import zlib
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.model.errors import ChecksumError, SchemaError
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval

PathLike = Union[str, Path]

#: Per-column converters applied when loading CSV (e.g. ``int``).
Converters = Optional[Sequence[Callable[[str], object]]]


def save_csv(relation: ValidTimeRelation, path: PathLike) -> int:
    """Write *relation* to CSV; returns the number of tuples written."""
    schema = relation.schema
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(schema.attributes) + ["vs", "ve"])
        count = 0
        for tup in relation:
            writer.writerow(list(tup.key) + list(tup.payload) + [tup.vs, tup.ve])
            count += 1
    return count


def load_csv(
    schema: RelationSchema,
    path: PathLike,
    *,
    converters: Converters = None,
) -> ValidTimeRelation:
    """Read a CSV written by :func:`save_csv` into a relation.

    Args:
        schema: the target schema; the file's header must match its
            attribute names.
        path: the CSV file.
        converters: optional one-per-explicit-attribute converters applied
            to the string cells (CSV is untyped).
    """
    expected_header = list(schema.attributes) + ["vs", "ve"]
    if converters is not None and len(converters) != len(schema.attributes):
        raise SchemaError(
            f"need {len(schema.attributes)} converters, got {len(converters)}"
        )
    relation = ValidTimeRelation(schema)
    n_join = len(schema.join_attributes)
    n_attrs = len(schema.attributes)
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != expected_header:
            raise SchemaError(
                f"CSV header {header} does not match schema columns {expected_header}"
            )
        for row in reader:
            if len(row) != n_attrs + 2:
                raise SchemaError(f"malformed CSV row: {row}")
            values = list(row[:n_attrs])
            if converters is not None:
                values = [convert(cell) for convert, cell in zip(converters, values)]
            relation.add(
                VTTuple(
                    tuple(values[:n_join]),
                    tuple(values[n_join:]),
                    Interval(int(row[-2]), int(row[-1])),
                )
            )
    return relation


def save_jsonl(relation: ValidTimeRelation, path: PathLike) -> int:
    """Write *relation* as JSON lines (schema header + one record per tuple).

    A trailer record ``{"checksum": <crc32>}`` over the tuple records' bytes
    closes the file, so a truncated or bit-flipped file is detected at load
    time.
    """
    schema = relation.schema
    with open(path, "w") as handle:
        header = {
            "name": schema.name,
            "join_attributes": list(schema.join_attributes),
            "payload_attributes": list(schema.payload_attributes),
            "tuple_bytes": schema.tuple_bytes,
        }
        handle.write(json.dumps(header) + "\n")
        count = 0
        crc = 0
        for tup in relation:
            record = {
                "key": list(tup.key),
                "payload": list(tup.payload),
                "vs": tup.vs,
                "ve": tup.ve,
            }
            line = json.dumps(record) + "\n"
            crc = zlib.crc32(line.encode("utf-8"), crc)
            handle.write(line)
            count += 1
        handle.write(json.dumps({"checksum": crc}) + "\n")
    return count


def save_columnar(relation: ValidTimeRelation, path: PathLike) -> int:
    """Write *relation* in columnar form; returns the number of tuples.

    The file is one JSON document: the schema header plus the
    ``(keys, payloads, starts, ends)`` columns of
    :meth:`~repro.model.relation.ValidTimeRelation.to_columns`.  Batch
    (de)serialization: the whole relation is decomposed and emitted in four
    column passes, with no per-tuple record framing.
    """
    schema = relation.schema
    keys, payloads, starts, ends = relation.to_columns()
    document = {
        "schema": {
            "name": schema.name,
            "join_attributes": list(schema.join_attributes),
            "payload_attributes": list(schema.payload_attributes),
            "tuple_bytes": schema.tuple_bytes,
        },
        "keys": [list(key) for key in keys],
        "payloads": [list(payload) for payload in payloads],
        "starts": starts,
        "ends": ends,
    }
    document["checksum"] = _columnar_checksum(document)
    with open(path, "w") as handle:
        json.dump(document, handle)
    return len(starts)


def _columnar_checksum(document: dict) -> int:
    """CRC-32 over the canonical JSON encoding of the four columns."""
    columns = [document["keys"], document["payloads"], document["starts"], document["ends"]]
    encoded = json.dumps(columns, separators=(",", ":"), sort_keys=True)
    return zlib.crc32(encoded.encode("utf-8"))


def load_columnar(path: PathLike) -> ValidTimeRelation:
    """Read a columnar file written by :func:`save_columnar`.

    Verifies the embedded column checksum when present; files written before
    checksums existed load unchanged.
    """
    with open(path) as handle:
        document = json.load(handle)
    header = document.get("schema")
    if header is None:
        raise SchemaError(f"{path} has no schema header; not a columnar file")
    stored_crc = document.get("checksum")
    if stored_crc is not None and stored_crc != _columnar_checksum(document):
        raise ChecksumError(f"columnar file {path} failed its checksum")
    schema = RelationSchema(
        name=header["name"],
        join_attributes=tuple(header["join_attributes"]),
        payload_attributes=tuple(header["payload_attributes"]),
        tuple_bytes=header["tuple_bytes"],
    )
    columns = (document["keys"], document["payloads"], document["starts"], document["ends"])
    if len({len(column) for column in columns}) > 1:
        raise SchemaError(f"{path} has ragged columns")
    return ValidTimeRelation.from_columns(schema, *columns)


def load_jsonl(path: PathLike) -> ValidTimeRelation:
    """Read a JSON-lines file written by :func:`save_jsonl`.

    The schema is reconstructed from the header record, so no schema
    argument is needed.
    """
    with open(path) as handle:
        header_line = handle.readline()
        if not header_line:
            raise SchemaError(f"{path} is empty; expected a schema header")
        header = json.loads(header_line)
        schema = RelationSchema(
            name=header["name"],
            join_attributes=tuple(header["join_attributes"]),
            payload_attributes=tuple(header["payload_attributes"]),
            tuple_bytes=header["tuple_bytes"],
        )
        relation = ValidTimeRelation(schema)
        crc = 0
        trailer_crc = None
        for line in handle:
            record = json.loads(line)
            if set(record) == {"checksum"}:
                trailer_crc = record["checksum"]
                continue
            if trailer_crc is not None:
                raise SchemaError(f"{path} has records after its checksum trailer")
            crc = zlib.crc32(line.encode("utf-8"), crc)
            relation.add(
                VTTuple(
                    tuple(record["key"]),
                    tuple(record["payload"]),
                    Interval(record["vs"], record["ve"]),
                )
            )
        if trailer_crc is not None and trailer_crc != crc:
            raise ChecksumError(f"JSON-lines file {path} failed its checksum")
    return relation
