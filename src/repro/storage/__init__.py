"""Simulated paged storage with random/sequential I/O cost accounting.

The paper evaluates join algorithms by "the number of I/O operations
performed by an algorithm, distinguishing between the higher cost of random
access and the lower cost of sequential access" (Section 4.1).  This package
is the substrate that makes those measurements possible:

* :mod:`repro.storage.iostats` -- I/O counters and the weighted cost model
  (random:sequential ratios 2:1, 5:1, 10:1 in the experiments).
* :mod:`repro.storage.page` -- fixed-capacity pages and page geometry.
* :mod:`repro.storage.disk` -- the simulated multi-device disk: contiguous
  extents, per-device head position, an access is sequential exactly when it
  hits the page under or immediately after the head.
* :mod:`repro.storage.heapfile` -- paged relation files over an extent.
* :mod:`repro.storage.buffer` -- main-memory budget bookkeeping (Figure 3's
  buffer allocation).
* :mod:`repro.storage.layout` -- the canonical device layout used by every
  experiment (base relations, temp, tuple cache, result).

The disk optionally runs with checksummed page frames, a fault injector,
and a retry policy (see :mod:`repro.resilience` and ``docs/RESILIENCE.md``).
"""

from repro.storage.iostats import CostModel, IOStatistics, PhaseTracker
from repro.storage.page import PageFrame, PageSpec, frame_page, page_checksum
from repro.storage.disk import Extent, SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.storage.buffer import BufferPool, Reservation
from repro.storage.layout import Device, DiskLayout

__all__ = [
    "CostModel",
    "IOStatistics",
    "PhaseTracker",
    "PageFrame",
    "PageSpec",
    "frame_page",
    "page_checksum",
    "Extent",
    "SimulatedDisk",
    "HeapFile",
    "BufferPool",
    "Reservation",
    "Device",
    "DiskLayout",
]
