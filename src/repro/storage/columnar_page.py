"""Zero-copy columnar pages: a fixed binary column layout for heap pages.

The PR-3 profile showed the sweep's wall-clock dominated not by charged I/O
(already optimal at 1.0x) but by per-tuple Python work the paper never
models: every page read re-decomposes its tuples into
:class:`~repro.exec.batch.PageBatch` columns through list comprehensions.
A :class:`ColumnarPage` removes that loop from the read path by storing the
page *already decomposed*:

* the start and end chronons live in one packed little-endian ``int64``
  buffer, so the batch columns become ``np.frombuffer`` views over the page
  bytes -- zero copies, zero per-tuple work;
* the join keys (arbitrary Python tuples, unpackable into a numeric
  column) are stored as **relation-local codes** against the owning file's
  :class:`KeyDictionary`; the probe side translates codes to join-wide
  interner ids with one vectorized gather through a per-dictionary table
  (see :class:`~repro.exec.batch.CodeTranslator`) instead of a dict lookup
  per tuple;
* payloads stay as Python tuples, untouched until a row is *emitted* --
  tuple materialization is deferred to result emission, and materialized
  rows are memoized so a row matched many times is built once.

A columnar page is an immutable :class:`~typing.Sequence` of
:class:`~repro.model.vtuple.VTTuple`, so every tuple-at-a-time consumer
(the oracle engine, migration, ``all_tuples``) sees exactly the tuples a
list page would hold -- bit-identical results are a structural property,
not a re-derivation.  ``repr`` is content-based and deterministic, which is
all the checksumming disk (``page_checksum``) needs.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exec.backend import np
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval


class KeyDictionary:
    """Dense key <-> code map owned by one heap file (relation-local).

    Codes are assigned in first-seen order at *write* time, so a file's
    dictionary is a pure function of its tuple sequence -- two identically
    loaded files build identical dictionaries, keeping every downstream
    computation deterministic.
    """

    __slots__ = ("keys", "_codes")

    def __init__(self) -> None:
        self.keys: List[Tuple] = []
        self._codes: Dict[Tuple, int] = {}

    def __len__(self) -> int:
        return len(self.keys)

    def code(self, key: Tuple) -> int:
        """Code of *key*, assigning the next dense code on first sight."""
        found = self._codes.get(key)
        if found is None:
            found = len(self.keys)
            self._codes[key] = found
            self.keys.append(key)
        return found

    def key(self, code: int) -> Tuple:
        """The key stored under *code*."""
        return self.keys[code]


def trusted_interval(start: int, end: int) -> Interval:
    """Build an :class:`Interval` without re-validating.

    For values coming back out of a packed column buffer only: they were
    validated by the real constructor at pack time.
    """
    valid = Interval.__new__(Interval)
    object.__setattr__(valid, "start", start)
    object.__setattr__(valid, "end", end)
    return valid


class ColumnarPage(Sequence):
    """One heap page in packed columnar form.

    The binary layout is three little-endian ``int64`` runs -- starts, ends,
    key codes, each ``n`` values -- in one ``bytes`` buffer, plus the Python
    payload tuples.  The buffer is immutable, so column views can be handed
    out without defensive copies and the page can be shared freely between
    the disk, the prefetch cache, and the probe engines.
    """

    __slots__ = ("_buf", "_n", "dictionary", "payloads", "_materialized", "_view")

    def __init__(
        self,
        buf: bytes,
        n: int,
        dictionary: KeyDictionary,
        payloads: Tuple[Tuple, ...],
    ) -> None:
        self._buf = buf
        self._n = n
        self.dictionary = dictionary
        self.payloads = payloads
        self._materialized: Optional[List[Optional[VTTuple]]] = None
        self._view = None

    # -- construction -------------------------------------------------------

    @classmethod
    def from_tuples(
        cls, tuples: Sequence[VTTuple], dictionary: KeyDictionary
    ) -> "ColumnarPage":
        """Pack *tuples* into the binary column layout.

        The per-tuple work happens here, once, on the write path; every
        later read gets the columns for free.
        """
        code = dictionary.code
        intervals = [tup.valid for tup in tuples]
        columns = array("q")
        columns.extend([valid.start for valid in intervals])
        columns.extend([valid.end for valid in intervals])
        columns.extend([code(tup.key) for tup in tuples])
        return cls(
            columns.tobytes(),
            len(tuples),
            dictionary,
            tuple(tup.payload for tup in tuples),
        )

    # -- column views (zero-copy) -------------------------------------------

    @property
    def n_rows(self) -> int:
        return self._n

    def starts_view(self):
        """``np.int64`` view of the start chronons over the page buffer."""
        return np.frombuffer(self._buf, dtype="<i8", count=self._n)

    def ends_view(self):
        """``np.int64`` view of the end chronons over the page buffer."""
        return np.frombuffer(self._buf, dtype="<i8", count=self._n, offset=8 * self._n)

    def codes_view(self):
        """``np.int64`` view of the relation-local key codes."""
        return np.frombuffer(
            self._buf, dtype="<i8", count=self._n, offset=16 * self._n
        )

    def starts_list(self) -> List[int]:
        """Start chronons as a plain list (pure-Python backend)."""
        return memoryview(self._buf).cast("q")[: self._n].tolist()

    def ends_list(self) -> List[int]:
        """End chronons as a plain list (pure-Python backend)."""
        return memoryview(self._buf).cast("q")[self._n : 2 * self._n].tolist()

    def codes_list(self) -> List[int]:
        """Key codes as a plain list (pure-Python backend)."""
        return memoryview(self._buf).cast("q")[2 * self._n : 3 * self._n].tolist()

    @property
    def nbytes(self) -> int:
        """Size of the packed column buffer (payloads excluded)."""
        return len(self._buf)

    # -- deferred tuple materialization ---------------------------------------

    def _cast(self):
        """The buffer as one cached ``int64`` memoryview (starts|ends|codes)."""
        view = self._view
        if view is None:
            view = self._view = memoryview(self._buf).cast("q")
        return view

    @staticmethod
    def _trusted_row(key: Tuple, payload: Tuple, start: int, end: int) -> VTTuple:
        """Build a row without re-validating: every value in the buffer was
        validated by :class:`Interval`/:class:`VTTuple` at pack time, so the
        read path may construct through ``__new__`` (about 2.5x faster than
        the validating constructors, measured per row)."""
        valid = trusted_interval(start, end)
        tup = VTTuple.__new__(VTTuple)
        object.__setattr__(tup, "key", key)
        object.__setattr__(tup, "payload", payload)
        object.__setattr__(tup, "valid", valid)
        return tup

    def span(self, index: int) -> Interval:
        """The valid-time interval of row *index*, without the tuple.

        For consumers that never look at keys or payloads (the planner's
        sampling); cheaper than :meth:`row` by the whole tuple build.
        """
        view = self._cast()
        return trusted_interval(view[index], view[self._n + index])

    def row(self, index: int) -> VTTuple:
        """Materialize row *index* (memoized: matched-many rows build once)."""
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError(f"row {index} out of range for {self._n}-row page")
        cache = self._materialized
        if cache is None:
            cache = self._materialized = [None] * self._n
        tup = cache[index]
        if tup is None:
            view = self._cast()
            tup = self._trusted_row(
                self.dictionary.key(view[2 * self._n + index]),
                self.payloads[index],
                view[index],
                view[self._n + index],
            )
            cache[index] = tup
        return tup

    def tuples(self) -> List[VTTuple]:
        """Every row materialized, in page order (memoized like :meth:`row`).

        Decodes the three columns in bulk (one cached cast, three C-level
        ``tolist`` slices) instead of touching the memoryview per row -- the
        full-page path every scan loop hits.
        """
        n = self._n
        if n == 0:
            return []
        cache = self._materialized
        if cache is not None and cache[-1] is not None and None not in cache:
            return list(cache)
        view = self._cast()
        starts = view[:n].tolist()
        ends = view[n : 2 * n].tolist()
        codes = view[2 * n : 3 * n].tolist()
        keys = self.dictionary.keys
        build = self._trusted_row
        if cache is None:
            rows = [
                build(keys[c], p, s, e)
                for s, e, c, p in zip(starts, ends, codes, self.payloads)
            ]
        else:
            rows = [
                cached
                if cached is not None
                else build(keys[c], p, s, e)
                for cached, s, e, c, p in zip(
                    cache, starts, ends, codes, self.payloads
                )
            ]
        self._materialized = rows
        return list(rows)

    # -- sequence protocol ----------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self.row(i) for i in range(*index.indices(self._n))]
        return self.row(index)

    def __iter__(self) -> Iterator[VTTuple]:
        if self._n == 0:
            return iter(())
        cache = self._materialized
        if cache is None or cache[-1] is None or None in cache:
            self.tuples()
            cache = self._materialized
        return iter(cache)

    def __repr__(self) -> str:
        # Content-based and deterministic: the checksumming disk hashes
        # ``repr(payload)``, so this must be a pure function of the rows.
        return f"ColumnarPage({self.tuples()!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ColumnarPage):
            return self.tuples() == other.tuples()
        if isinstance(other, (list, tuple)):
            return self.tuples() == list(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # mutable memoization cache; never used as a dict key


def page_view(payload: object):
    """A safe caller-facing view of a stored page payload.

    List payloads are copied (callers may extend/mutate their copy);
    columnar pages are immutable and handed out as-is -- that unshared
    ``list(...)`` copy is exactly the per-read cost this layout removes.
    """
    if isinstance(payload, ColumnarPage):
        return payload
    return list(payload)


__all__ = ["ColumnarPage", "KeyDictionary", "page_view", "trusted_interval"]
