"""Canonical device layout for all experiments.

Section 4.1's simulation counts the I/O streams of each algorithm
independently -- reading the outer partition, reading the inner partition,
and paging the tuple cache each cost "a single random seek followed by i-1
sequential reads", and result writes are excluded from every algorithm's
reported cost.  Mapping each stream class to its own simulated device (its
own head) reproduces that accounting, while streams that genuinely contend
(e.g. the partition buckets being flushed during Grace partitioning, or the
runs being merged during external sort) share the TEMP device and pay
random accesses when they interleave -- exactly the effects the paper
describes.

Result I/O is tracked on a *separate statistics stream* so it exists (the
algorithms really produce paged output) but is excluded from the reported
evaluation cost, matching "the cost of writing the result relation is
omitted since this cost is incurred by all evaluation algorithms"
(Appendix A.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import VTTuple
from repro.resilience.faults import FaultInjector
from repro.resilience.report import ResilienceReport
from repro.resilience.retry import RetryPolicy
from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.storage.iostats import IOStatistics, PhaseTracker
from repro.storage.page import PageSpec


class Device(enum.IntEnum):
    """The canonical device classes of the layout.

    Algorithms may also use device numbers beyond the enum (the external
    sort alternates between scratch devices per merge pass, as a real system
    alternates sort areas); the enum names the ones with fixed roles.
    """

    BASE = 0  # input relations r and s
    TEMP = 1  # partitions, sort runs
    CACHE = 2  # the long-lived tuple cache
    RESULT = 3  # join output (cost excluded from reports)
    SCRATCH_A = 4  # sort areas: merge passes alternate between these
    SCRATCH_B = 5
    SCRATCH_C = 6
    SCRATCH_D = 7
    CHECKPOINT = 8  # sweep checkpoints (resilience metadata)


@dataclass
class DiskLayout:
    """A configured disk plus the bookkeeping every algorithm needs.

    Attributes:
        spec: page geometry shared by all files.
        tracker: phase-aware counters for the *reported* cost.
        result_stats: counters for result writes (kept separate, see module
            docstring).
        fault_injector: optional fault source attached to the main disk.
            The result disk never carries faults -- its cost stream is
            excluded from every algorithm's report, so failing it would
            perturb nothing the paper measures.
        retry_policy: retry bounds of the main disk (None = defaults).
        checksums: store checksummed page frames on the main disk.
        columnar: store heap pages in the packed zero-copy column layout
            (see :mod:`repro.storage.columnar_page`).  Result files stay
            row-oriented -- results are emitted tuple-at-a-time and their
            cost stream is excluded from reports anyway.
    """

    spec: PageSpec = field(default_factory=PageSpec)
    tracker: PhaseTracker = field(default_factory=PhaseTracker)
    result_stats: IOStatistics = field(default_factory=IOStatistics)
    fault_injector: Optional[FaultInjector] = None
    retry_policy: Optional[RetryPolicy] = None
    checksums: bool = False
    columnar: bool = False

    def __post_init__(self) -> None:
        self.disk = SimulatedDisk(
            self.tracker.stats,
            fault_injector=self.fault_injector,
            retry_policy=self.retry_policy,
            checksums=self.checksums,
        )
        self._result_disk = SimulatedDisk(self.result_stats)

    @property
    def resilience_report(self) -> ResilienceReport:
        """What the resilience machinery observed and did on the main disk."""
        return self.disk.report

    # -- relation placement -----------------------------------------------------

    def place_relation(self, relation: ValidTimeRelation) -> HeapFile:
        """Store *relation* on the BASE device without charging I/O."""
        return HeapFile.bulk_load(
            self.disk,
            relation.schema.name,
            self.spec,
            relation.tuples,
            device=Device.BASE,
            columnar=self.columnar,
        )

    def temp_file(self, name: str, capacity_tuples: int = 0) -> HeapFile:
        """A fresh charged heap file on the TEMP device."""
        return HeapFile.create(
            self.disk,
            name,
            self.spec,
            device=Device.TEMP,
            capacity_tuples=capacity_tuples,
            columnar=self.columnar,
        )

    def file_on(self, device: int, name: str, capacity_tuples: int = 0) -> HeapFile:
        """A fresh charged heap file on an arbitrary device."""
        return HeapFile.create(
            self.disk,
            name,
            self.spec,
            device=device,
            capacity_tuples=capacity_tuples,
            columnar=self.columnar,
        )

    def cache_file(self, name: str, capacity_tuples: int = 0) -> HeapFile:
        """A fresh charged heap file on the CACHE device."""
        return HeapFile.create(
            self.disk,
            name,
            self.spec,
            device=Device.CACHE,
            capacity_tuples=capacity_tuples,
            columnar=self.columnar,
        )

    def result_file(self, name: str, result_spec: Optional[PageSpec] = None) -> HeapFile:
        """A result file whose I/O is recorded on the excluded stream."""
        return HeapFile.create(
            self._result_disk,
            name,
            result_spec if result_spec is not None else self.spec,
            device=Device.RESULT,
        )

    # -- convenience ----------------------------------------------------------------

    def pages_of(self, relation: ValidTimeRelation) -> int:
        """Pages *relation* occupies under this layout's page geometry."""
        return self.spec.pages_for_tuples(len(relation))

    def collect_result(self, result_file: HeapFile, schema) -> ValidTimeRelation:
        """Drain a result heap file into an in-memory relation (uncharged)."""
        relation = ValidTimeRelation(schema)
        for tup in result_file.all_tuples():
            relation.add(tup)
        return relation

    def write_result(self, result_file: HeapFile, tup: VTTuple) -> None:
        """Append a result tuple through the excluded-cost stream."""
        result_file.append(tup)
