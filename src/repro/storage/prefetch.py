"""The I/O pipeline of the ``"batch-parallel-sweep"`` mode: double-buffered
page prefetch plus write-behind for tuple-cache flushes.

The partition sweep's disk traffic per partition is a fixed, predictable
sequence: the outer partition's pages, then (per block) the tuple-cache
spill pages and the inner partition's pages.  A real evaluator overlaps
that I/O with the probe compute of the *previous* partition; this module
models the overlap while keeping the simulated charge sequence honest:

* :meth:`PrefetchPipeline.prefetch` reads a **prefix of the next
  partition's serial page sequence** (outer pages first, then inner pages,
  up to ``depth`` pages) at the partition barrier, pinning the pages into a
  :class:`~repro.storage.buffer.PageCache`.  Because the prefix is read in
  the exact order the demand loop would read it, and nothing else touches
  the TEMP device between the barrier and the next partition, every
  prefetched access is charged with the *same* random/sequential
  classification as its demand-time counterpart -- the per-device charge
  sequence is bit-identical to the serial sweep.
* :meth:`PrefetchPipeline.scan_pages` is the demand path: cached pages are
  consumed without touching the disk (their read was already charged at
  prefetch time); pages past the prefetch horizon fall through to ordinary
  charged reads, which continue sequentially from where the prefetcher's
  head stopped.
* :meth:`PrefetchPipeline.writeback` wraps the barrier flush of deferred
  tuple-cache writes.  Deferring the spill writes to the barrier turns the
  CACHE device's interleaved read/write pattern into one read run followed
  by one write run -- the same operations on the same pages, never *more*
  random accesses than the serial order.

Every pipelined operation is charged into the normal
:class:`~repro.storage.iostats.IOStatistics` buckets **and** tagged
``prefetch_reads`` / ``writeback_writes`` (via
:meth:`~repro.storage.disk.SimulatedDisk.pipeline_tag`), exactly like fault
retries are tagged: the tags make the pipeline's share of the bill
auditable without ever double-counting an operation.  The pipeline also
keeps per-stage :class:`IOStatistics` ledgers, folded from charge deltas
with :meth:`IOStatistics.merge`, so tests can reconcile
``stage ledgers == tag counters`` exactly.
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.storage.buffer import PageCache
from repro.storage.columnar_page import page_view
from repro.storage.heapfile import HeapFile
from repro.storage.iostats import IOStatistics
from repro.storage.layout import DiskLayout


def page_key(heap: HeapFile, index: int) -> Tuple[str, int]:
    """Cache key of page *index* of *heap* (extent names are unique)."""
    return (heap.extent.name, index)


class PrefetchPipeline:
    """Double-buffered read-ahead and write-behind over one disk layout.

    Args:
        layout: the layout whose main disk the pipeline reads and writes
            (charges land on ``layout.tracker.stats`` as usual).
        depth: maximum pages read ahead per barrier.  0 disables read-ahead
            (the write-behind path still works); the demand path then
            behaves exactly like plain ``scan_pages``.

    Attributes:
        prefetch_stats: ledger of every charge issued by :meth:`prefetch`.
        writeback_stats: ledger of every charge issued under
            :meth:`writeback`.
        demand_stats: ledger of every charge issued by the cache-miss side
            of :meth:`scan_pages`.
    """

    def __init__(self, layout: DiskLayout, depth: int) -> None:
        if depth < 0:
            raise ValueError(f"prefetch depth must be >= 0, got {depth}")
        self._layout = layout
        self._disk = layout.disk
        self.depth = depth
        self.cache: Optional[PageCache] = PageCache(depth) if depth > 0 else None
        self.prefetch_stats = IOStatistics()
        self.writeback_stats = IOStatistics()
        self.demand_stats = IOStatistics()

    # -- read-ahead ---------------------------------------------------------

    def prefetch(self, files: Sequence[HeapFile]) -> int:
        """Read ahead up to ``depth`` pages of *files*, in serial scan order.

        *files* must be given in the order the demand loop will scan them
        (outer partition first, then inner partition); the prefix property
        -- and with it the bit-identical charge classification -- holds
        only for that order.  Returns the number of pages read ahead.
        """
        if self.cache is None:
            return 0
        budget = self.depth
        fetched = 0
        mark = self._disk.stats.copy()
        try:
            with self._disk.pipeline_tag(reads=True):
                for heap in files:
                    for index in range(heap.extent.n_pages):
                        if fetched >= budget:
                            return fetched
                        key = page_key(heap, index)
                        if key in self.cache:
                            continue
                        page = page_view(self._disk.read(heap.extent, index))
                        self.cache.put(key, page, pin=True)
                        fetched += 1
        finally:
            self.prefetch_stats.merge(self._disk.stats.diff(mark))
        return fetched

    def scan_pages(self, heap: HeapFile) -> Iterator[List[object]]:
        """Scan *heap* page by page, consuming prefetched pages for free.

        A cache hit hands over the page read ahead at the barrier -- that
        read is already on the bill, so nothing is charged again.  A miss
        charges a normal demand read, which continues the device's serial
        sequence exactly where the prefetcher stopped.
        """
        for index in range(heap.extent.n_pages):
            page: Optional[object] = None
            if self.cache is not None:
                page = self.cache.take(page_key(heap, index))
            if page is None:
                mark = self._disk.stats.copy()
                page = heap.read_page(index)
                self.demand_stats.merge(self._disk.stats.diff(mark))
            yield page

    # -- write-behind -------------------------------------------------------

    def writeback(self) -> "_WritebackContext":
        """Context manager for a barrier flush of deferred writes.

        Charges issued inside are tagged ``writeback_writes`` and folded
        into :attr:`writeback_stats`.
        """
        return _WritebackContext(self)

    # -- teardown -----------------------------------------------------------

    def discard(self) -> int:
        """Drop every cached page (sweep teardown or crash unwinding).

        The reads that filled the cache stay on the bill -- a dead
        evaluator cannot uncharge I/O -- but the pages themselves are
        volatile state and vanish.  Returns how many pages were dropped.
        """
        if self.cache is None:
            return 0
        dropped = len(self.cache)
        self.cache.clear()
        return dropped

    # -- reconciliation -----------------------------------------------------

    def stage_stats(self) -> IOStatistics:
        """All three stage ledgers merged into one fresh object."""
        total = IOStatistics()
        total.merge(self.prefetch_stats)
        total.merge(self.writeback_stats)
        total.merge(self.demand_stats)
        return total


class _WritebackContext:
    """Context manager returned by :meth:`PrefetchPipeline.writeback`."""

    def __init__(self, pipeline: PrefetchPipeline) -> None:
        self._pipeline = pipeline
        self._mark: Optional[IOStatistics] = None
        self._tag = None

    def __enter__(self) -> PrefetchPipeline:
        pipeline = self._pipeline
        self._mark = pipeline._disk.stats.copy()
        self._tag = pipeline._disk.pipeline_tag(writes=True)
        self._tag.__enter__()
        return pipeline

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        pipeline = self._pipeline
        self._tag.__exit__(exc_type, exc, tb)
        pipeline.writeback_stats.merge(pipeline._disk.stats.diff(self._mark))
