"""Main-memory budget bookkeeping and the Figure 3 buffer allocation.

The simulator does not emulate page replacement -- the algorithms under
study explicitly manage their own buffers, as 1994 join implementations did.
What this module enforces is the *budget*: every algorithm declares the
regions it uses, and a region that would exceed the configured memory size
raises :class:`BufferOverflowError`.  That keeps the implementations honest:
the partition join genuinely holds at most ``buffSize`` pages of the outer
relation plus one page each of the inner relation, tuple cache, and result
(Figure 3), and the sort-merge baseline genuinely forms runs no larger than
memory.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.model.errors import BufferOverflowError


@dataclass
class Reservation:
    """A named region of buffer pages inside a :class:`BufferPool`."""

    pool: "BufferPool"
    label: str
    pages: int

    def release(self) -> None:
        """Return the region's pages to the pool."""
        self.pool._release(self)

    def resize(self, pages: int) -> None:
        """Grow or shrink the region in place."""
        self.pool._resize(self, pages)


class BufferPool:
    """A fixed budget of main-memory buffer pages.

    Reserve/release/resize are serialized under a single lock, so a pool can
    be shared by concurrent queries (the service layer's admission controller
    accounts its memory grants on one; see ``docs/SERVICE.md``).  The lock
    makes the check-then-charge of every operation atomic: two racing
    reservations can never both pass the free-space check, and a release
    can never be double-counted.

    Args:
        total_pages: the memory size in pages (``buffSize`` plus the fixed
            single-page areas, i.e. the whole allocation of Figure 3).
    """

    def __init__(self, total_pages: int) -> None:
        if total_pages < 1:
            raise BufferOverflowError(f"buffer pool needs >= 1 page, got {total_pages}")
        self.total_pages = total_pages
        self._reservations: Dict[int, Reservation] = {}
        self._used = 0
        self._lock = threading.Lock()

    @property
    def used_pages(self) -> int:
        """Pages currently reserved."""
        with self._lock:
            return self._used

    @property
    def free_pages(self) -> int:
        """Pages still available."""
        with self._lock:
            return self.total_pages - self._used

    def reserve(self, label: str, pages: int) -> Reservation:
        """Reserve *pages* pages under *label*.

        Raises:
            BufferOverflowError: if the pool cannot satisfy the request.
        """
        if pages < 0:
            raise BufferOverflowError(f"cannot reserve {pages} pages")
        with self._lock:
            if pages > self.total_pages - self._used:
                raise BufferOverflowError(
                    f"reservation {label!r} of {pages} pages exceeds free space "
                    f"({self.total_pages - self._used} of {self.total_pages})"
                )
            reservation = Reservation(self, label, pages)
            self._reservations[id(reservation)] = reservation
            self._used += pages
            return reservation

    def _release(self, reservation: Reservation) -> None:
        with self._lock:
            if id(reservation) not in self._reservations:
                raise BufferOverflowError(
                    f"reservation {reservation.label!r} already released"
                )
            del self._reservations[id(reservation)]
            self._used -= reservation.pages
            reservation.pages = 0

    def _resize(self, reservation: Reservation, pages: int) -> None:
        with self._lock:
            if id(reservation) not in self._reservations:
                raise BufferOverflowError(
                    f"reservation {reservation.label!r} already released"
                )
            if pages < 0:
                raise BufferOverflowError(
                    f"cannot resize {reservation.label!r} to {pages} pages"
                )
            delta = pages - reservation.pages
            if delta > self.total_pages - self._used:
                raise BufferOverflowError(
                    f"resize of {reservation.label!r} to {pages} pages exceeds free space"
                )
            self._used += delta
            reservation.pages = pages


class PageCache:
    """A bounded LRU cache of pages with pin/unpin, for the I/O pipeline.

    Keys are ``(extent_name, page_index)`` pairs (any hashable works).  The
    prefetcher *pins* each page it reads ahead so eviction can never throw
    away a page whose demand read was already charged; the consumer unpins
    (or :meth:`take`s) the page when the demand access arrives.  Eviction is
    least-recently-used over the unpinned entries only.

    The cache holds page *references*; it charges no I/O itself -- whoever
    fills it pays the disk, which is what keeps the prefetch accounting
    honest.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise BufferOverflowError(f"page cache needs >= 1 page, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Hashable, Tuple[object, int]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def pinned_pages(self) -> int:
        """Number of entries with a nonzero pin count."""
        return sum(1 for _, pins in self._entries.values() if pins > 0)

    def put(self, key: Hashable, page: object, *, pin: bool = False) -> None:
        """Insert (or refresh) *page* under *key*, evicting LRU if needed.

        Raises:
            BufferOverflowError: when every resident page is pinned and
                there is no room -- the pipeline sized its prefetch depth
                beyond the cache, which is a configuration bug.
        """
        if key in self._entries:
            _, pins = self._entries.pop(key)
            self._entries[key] = (page, pins + (1 if pin else 0))
            return
        while len(self._entries) >= self.capacity:
            victim = self._find_victim()
            if victim is None:
                raise BufferOverflowError(
                    f"page cache of {self.capacity} pages is fully pinned; "
                    f"cannot admit {key!r}"
                )
            del self._entries[victim]
            self.evictions += 1
        self._entries[key] = (page, 1 if pin else 0)

    def _find_victim(self) -> Optional[Hashable]:
        for key, (_, pins) in self._entries.items():
            if pins == 0:
                return key
        return None

    def get(self, key: Hashable) -> Optional[object]:
        """The page under *key* (refreshed to most-recent), or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def take(self, key: Hashable) -> Optional[object]:
        """Remove and return the page under *key* regardless of pins.

        The consume path of the prefetcher: the demand access arrives, the
        page leaves the cache, and its pin dies with it.
        """
        entry = self._entries.pop(key, None)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry[0]

    def pin(self, key: Hashable) -> None:
        """Protect the page under *key* from eviction (counts nest)."""
        try:
            page, pins = self._entries[key]
        except KeyError:
            raise BufferOverflowError(f"cannot pin absent page {key!r}") from None
        self._entries[key] = (page, pins + 1)

    def unpin(self, key: Hashable) -> None:
        """Drop one pin from the page under *key*."""
        try:
            page, pins = self._entries[key]
        except KeyError:
            raise BufferOverflowError(f"cannot unpin absent page {key!r}") from None
        if pins <= 0:
            raise BufferOverflowError(f"page {key!r} is not pinned")
        self._entries[key] = (page, pins - 1)

    def clear(self) -> None:
        """Drop every entry, pinned or not (end-of-sweep teardown)."""
        self._entries.clear()


@dataclass(frozen=True)
class JoinBufferAllocation:
    """The Figure 3 buffer split for partition-join evaluation.

    One page each is dedicated to the inner relation, the tuple cache, and
    the result; everything else (``buffSize``) holds the current outer
    relation partition.
    """

    total_pages: int

    #: Pages outside the outer-partition area (inner + cache + result).
    FIXED_PAGES = 3

    def __post_init__(self) -> None:
        if self.total_pages < self.FIXED_PAGES + 1:
            raise BufferOverflowError(
                f"partition join needs >= {self.FIXED_PAGES + 1} buffer pages, "
                f"got {self.total_pages}"
            )

    @property
    def buff_size(self) -> int:
        """Pages available for the outer relation partition (``buffSize``)."""
        return self.total_pages - self.FIXED_PAGES

    def open(self, pool: BufferPool) -> Dict[str, Reservation]:
        """Materialize the allocation in *pool*; returns the named regions."""
        return {
            "outer_partition": pool.reserve("outer_partition", self.buff_size),
            "inner_page": pool.reserve("inner_page", 1),
            "tuple_cache_page": pool.reserve("tuple_cache_page", 1),
            "result_page": pool.reserve("result_page", 1),
        }
