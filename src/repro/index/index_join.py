"""Index-nested-loop valid-time join over the AP-tree.

The related-work alternative the paper compares itself against in spirit:
instead of partitioning both relations, index the inner relation's
timestamps (legal under the append-only assumption) and, for every outer
tuple, probe the index for temporal matches, then filter on the join
attributes.

I/O accounting: the outer relation streams through the page buffer
(charged); every index probe charges the visited node pages on a dedicated
index device (the root level is assumed resident, as a real system would
pin it).  The qualifying inner tuples are then at hand in the leaf pages
already read.  The per-probe cost is what the paper's "additional update
costs" remark trades against: the index makes probes cheap but must be
maintained on every insertion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.index.ap_tree import AppendOnlyTree, build_ap_tree
from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import join_tuples
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec

#: Device the index pages live on (beyond the canonical layout's classes).
INDEX_DEVICE = 8


@dataclass
class IndexJoinResult:
    """Result and bookkeeping of an index-nested-loop join run."""

    result: Optional[ValidTimeRelation]
    n_result_tuples: int
    n_probes: int
    index_pages_read: int
    layout: DiskLayout


def index_nested_loop_join(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    *,
    page_spec: Optional[PageSpec] = None,
    fanout: int = 32,
    layout: Optional[DiskLayout] = None,
    collect_result: bool = True,
) -> IndexJoinResult:
    """Evaluate ``r JOIN_V s`` by probing an AP-tree on *s*.

    The inner relation is indexed in Vs order (its tuples are sorted first;
    an append-only system would have the index already).  Index
    construction is not charged -- the paper's point is precisely that the
    maintenance cost is paid outside the query.
    """
    result_schema = r.schema.join_result_schema(s.schema)
    if layout is None:
        layout = DiskLayout(spec=page_spec if page_spec is not None else PageSpec())

    r_file = layout.place_relation(r)
    tree: AppendOnlyTree = build_ap_tree(s.sorted_by_vs(), fanout)
    index_extent = layout.disk.allocate(
        "ap_tree", device=INDEX_DEVICE, capacity=max(1, tree.n_nodes)
    )
    layout.disk.load(index_extent, [None] * tree.n_nodes)

    result_file = layout.result_file("ix_result")
    collected = ValidTimeRelation(result_schema) if collect_result else None
    n_result = 0
    n_probes = 0
    pages_read = 0

    with layout.tracker.phase("probe"):
        for page in r_file.scan_pages():
            for outer_tup in page:
                n_probes += 1
                matches, visited = tree.probe(outer_tup.valid)
                for page_no in visited:
                    layout.disk.read(index_extent, page_no)
                    pages_read += 1
                for inner_tup in matches:
                    joined = join_tuples(outer_tup, inner_tup)
                    if joined is None:
                        continue
                    n_result += 1
                    layout.write_result(result_file, joined)
                    if collected is not None:
                        collected.add(joined)
    result_file.flush()
    return IndexJoinResult(
        result=collected,
        n_result_tuples=n_result,
        n_probes=n_probes,
        index_pages_read=pages_read,
        layout=layout,
    )
