"""The append-only tree: a temporal index for timestamp-ordered insertion.

Gunadhi and Segev's access path [SG89] exploits the append-only
assumption -- "tuples are inserted in timestamp order into a relation, and
once inserted into a relation are never deleted" -- to keep a fully packed
search tree whose inserts only ever touch the rightmost path.  This
implementation realizes that as an *implicit* packed tree: level 0 is the
sequence of leaves (filled left to right, so the structure never
rebalances), and each higher level summarizes groups of ``fanout`` nodes
with their minimum valid-time start and -- the nested-index refinement of
[GS91] -- their maximum valid-time end, which lets interval queries prune
subtrees whose tuples all expired before the query starts.

Every node carries a page number, so evaluation algorithms can charge
index probes through the simulated disk (one page per node).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.model.vtuple import VTTuple
from repro.time.interval import Interval


class _Summary:
    """Aggregates of one node: the Vs lower bound and Ve upper bound."""

    __slots__ = ("min_vs", "max_ve", "page_no")

    def __init__(self, min_vs: int, max_ve: int, page_no: int) -> None:
        self.min_vs = min_vs
        self.max_ve = max_ve
        self.page_no = page_no


class AppendOnlyTree:
    """A right-growing temporal index over append-only insertions.

    Args:
        fanout: tuples per leaf and children per internal node.

    Raises:
        ValueError: on a fanout below 2, or (at insert time) on a tuple
            whose start chronon precedes the last inserted one -- the
            append-only assumption is enforced, not trusted.
    """

    def __init__(self, fanout: int = 8) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        self.fanout = fanout
        self._leaves: List[List[VTTuple]] = []
        #: ``_levels[k]`` summarizes groups of fanout^(k+1) leaves.
        self._levels: List[List[_Summary]] = [[]]  # level 0: one per leaf
        self._last_vs: Optional[int] = None
        self._n_tuples = 0
        self._n_pages = 0

    # -- construction ---------------------------------------------------------

    def insert(self, tup: VTTuple) -> None:
        """Append *tup*; its start chronon must not precede the previous one."""
        if self._last_vs is not None and tup.vs < self._last_vs:
            raise ValueError(
                f"append-only violation: Vs {tup.vs} after {self._last_vs}"
            )
        self._last_vs = tup.vs
        self._n_tuples += 1

        if not self._leaves or len(self._leaves[-1]) >= self.fanout:
            self._leaves.append([])
            self._levels[0].append(_Summary(tup.vs, tup.ve, self._new_page()))
            self._extend_upper_levels()
        self._leaves[-1].append(tup)

        # Refresh aggregates up the rightmost path.
        for level in self._levels:
            if level:
                level[-1].max_ve = max(level[-1].max_ve, tup.ve)

    def _new_page(self) -> int:
        self._n_pages += 1
        return self._n_pages - 1

    def _extend_upper_levels(self) -> None:
        """Create summary entries so every level groups its child level."""
        child_level = 0
        while True:
            n_children = len(self._levels[child_level])
            if n_children <= self.fanout:
                # The level above would have a single node; the current top
                # level acts as the root's children.
                break
            if len(self._levels) == child_level + 1:
                self._levels.append([])
            parent_level = self._levels[child_level + 1]
            expected_parents = -(-n_children // self.fanout)  # ceil
            while len(parent_level) < expected_parents:
                # A parent may be created after several of its children (the
                # level above only materializes once this level outgrows the
                # fanout), so aggregate over every child already present.
                start = len(parent_level) * self.fanout
                children = self._levels[child_level][start : start + self.fanout]
                parent_level.append(
                    _Summary(
                        children[0].min_vs,
                        max(child.max_ve for child in children),
                        self._new_page(),
                    )
                )
            child_level += 1

    # -- queries --------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n_tuples

    @property
    def n_nodes(self) -> int:
        """Total nodes (== index pages) allocated."""
        return self._n_pages

    @property
    def height(self) -> int:
        """Summary levels plus the leaf level (empty tree has height 1)."""
        return len(self._levels) + 1

    def overlapping(self, interval: Interval) -> List[VTTuple]:
        """Tuples whose validity overlaps *interval*, in insertion order."""
        results, _ = self.probe(interval)
        return results

    def stab(self, chronon: int) -> List[VTTuple]:
        """Tuples valid at *chronon*."""
        return self.overlapping(Interval(chronon, chronon))

    def probe(self, interval: Interval) -> Tuple[List[VTTuple], List[int]]:
        """Search and also return the visited node pages.

        Evaluation algorithms use the page list to charge index I/O
        through the simulated disk.
        """
        if not self._leaves:
            return [], []
        visited: List[int] = []
        results: List[VTTuple] = []
        top = len(self._levels) - 1
        for node_index in range(len(self._levels[top])):
            self._search(top, node_index, interval, results, visited)
        return results, visited

    def _search(
        self,
        level: int,
        node_index: int,
        interval: Interval,
        results: List[VTTuple],
        visited: List[int],
    ) -> None:
        summary = self._levels[level][node_index]
        # Prune: every tuple below starts at or after min_vs (append order)
        # and none outlives max_ve.
        if summary.min_vs > interval.end or summary.max_ve < interval.start:
            return
        visited.append(summary.page_no)
        if level == 0:
            for tup in self._leaves[node_index]:
                if tup.valid.overlaps(interval):
                    results.append(tup)
            return
        first_child = node_index * self.fanout
        last_child = min(
            first_child + self.fanout, len(self._levels[level - 1])
        )
        for child_index in range(first_child, last_child):
            self._search(level - 1, child_index, interval, results, visited)


def build_ap_tree(tuples, fanout: int = 8) -> AppendOnlyTree:
    """Bulk-build an AP-tree from tuples already in Vs order."""
    tree = AppendOnlyTree(fanout)
    for tup in tuples:
        tree.insert(tup)
    return tree
