"""Temporal access paths (the related work's indexing substrate).

Section 4.1 recounts the competing line of work: "With the append-only
assumption, a new access path, the append-only tree, was developed that
provides a temporal index on the relation" [SG89, GS91].  The paper's own
algorithm deliberately avoids auxiliary access paths ("each with
additional update costs"); this package builds the access path anyway, so
the avoided alternative is concrete and comparable:

* :mod:`repro.index.ap_tree` -- the append-only tree: a right-growing
  search tree over timestamp-ordered insertions with interval-stabbing and
  range queries.
* :mod:`repro.index.index_join` -- an index-nested-loop valid-time join
  that probes the AP-tree, for comparison against the partition join on
  append-only data.
"""

from repro.index.ap_tree import AppendOnlyTree
from repro.index.index_join import index_nested_loop_join

__all__ = ["AppendOnlyTree", "index_nested_loop_join"]
