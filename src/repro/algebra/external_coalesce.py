"""External coalescing: the canonicalization operator, I/O-costed.

Coalescing (see :mod:`repro.algebra.coalesce`) is itself an expensive
operation on disk-resident relations -- value-equivalent tuples can be
scattered arbitrarily.  The standard evaluation reuses the external-sort
machinery: sort on (key, payload, Vs), then merge adjacent-or-overlapping
timestamps of each value-equivalence class in one streaming pass.  The
result is written through the layout's excluded result stream, matching
the join evaluators' convention, so the *coalescing* cost (sort plus one
scan) is what the tracker reports.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.external_sort import external_sort
from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import VTTuple
from repro.storage.layout import Device, DiskLayout
from repro.storage.page import PageSpec
from repro.time.interval import Interval


def external_coalesce(
    relation: ValidTimeRelation,
    memory_pages: int,
    *,
    page_spec: Optional[PageSpec] = None,
    layout: Optional[DiskLayout] = None,
) -> tuple[ValidTimeRelation, DiskLayout]:
    """Coalesce *relation* on the simulated disk.

    Returns the coalesced relation and the layout carrying the I/O cost
    (one external sort of the input plus the merging scan, which is fused
    into the sort's final read).
    """
    if layout is None:
        layout = DiskLayout(spec=page_spec if page_spec is not None else PageSpec())
    source = layout.place_relation(relation)

    with layout.tracker.phase("sort"):
        ordered = external_sort(
            source,
            layout,
            memory_pages,
            key=lambda tup: (repr(tup.key), repr(tup.payload), tup.vs, tup.ve),
            name="coalesce",
            devices=(Device.SCRATCH_A, Device.SCRATCH_B),
        )
    layout.disk.park_heads()

    result = ValidTimeRelation(relation.schema)
    result_file = layout.result_file("coalesced")
    pending: Optional[VTTuple] = None

    def flush(tup: VTTuple) -> None:
        layout.write_result(result_file, tup)
        result.add(tup)

    with layout.tracker.phase("merge"):
        for page in ordered.scan_pages():
            for tup in page:
                if (
                    pending is not None
                    and pending.key == tup.key
                    and pending.payload == tup.payload
                    and tup.vs <= pending.ve + 1
                ):
                    if tup.ve > pending.ve:
                        pending = pending.with_valid(Interval(pending.vs, tup.ve))
                    continue
                if pending is not None:
                    flush(pending)
                pending = tup
        if pending is not None:
            flush(pending)
    result_file.flush()
    return result, layout
