"""Timeslice: the bridge between valid-time and snapshot semantics.

``timeslice(r, t)`` yields the snapshot state of a valid-time relation at
chronon ``t`` -- the explicit attribute rows of every tuple valid at ``t``.
Snapshot reducibility, the key semantic property of the valid-time natural
join, states that for every chronon::

    timeslice(r JOIN_V s, t)  ==  timeslice(r, t) JOIN timeslice(s, t)

where the right-hand join is the ordinary snapshot natural join, also
provided here.  The property-based tests exercise this identity over
arbitrary generated relations.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema


def timeslice(relation: ValidTimeRelation, chronon: int) -> List[Tuple]:
    """Snapshot rows (key + payload, no timestamp) valid at *chronon*.

    The result is a sorted list so two timeslices compare as multisets.
    """
    rows = relation.timeslice(chronon)
    return sorted(rows, key=repr)


def snapshot_join(
    r_rows: List[Tuple],
    s_rows: List[Tuple],
    r_schema: RelationSchema,
    s_schema: RelationSchema,
) -> List[Tuple]:
    """Ordinary snapshot natural join of two timesliced row lists.

    Rows follow the schema layout: join attributes first, then payload.
    """
    n_join = len(r_schema.join_attributes)
    by_key: Dict[Tuple, List[Tuple]] = {}
    for row in r_rows:
        by_key.setdefault(row[:n_join], []).append(row[n_join:])
    joined: List[Tuple] = []
    for row in s_rows:
        key = row[:n_join]
        for r_payload in by_key.get(key, ()):
            joined.append(key + r_payload + row[n_join:])
    return sorted(joined, key=repr)
