"""External temporal set operations: union / difference / intersection, costed.

The in-memory operators of :mod:`repro.algebra.setops` have disk-resident
counterparts built on the same machinery as external coalescing: both
operands are externally sorted on (key, payload, Vs), and a single
synchronized merge pass computes the per-value-equivalence-class interval
algebra.  Costs are reported through the layout's tracker, with result
writes on the excluded stream, matching every other evaluator's
convention.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.algebra.setops import _check_union_compatible
from repro.baselines.external_sort import external_sort
from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import VTTuple
from repro.storage.heapfile import HeapFile
from repro.storage.layout import Device, DiskLayout
from repro.storage.page import PageSpec
from repro.time.interval import Interval
from repro.time.intervalset import normalize, subtract


def external_setop(
    op: str,
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    memory_pages: int,
    *,
    page_spec: Optional[PageSpec] = None,
    layout: Optional[DiskLayout] = None,
) -> Tuple[ValidTimeRelation, DiskLayout]:
    """Evaluate a temporal set operation on the simulated disk.

    Args:
        op: ``"union"``, ``"difference"``, or ``"intersection"``.
        r: left operand.
        s: right operand (schema-compatible with *r*).
        memory_pages: buffer budget for the external sorts.
        page_spec: page geometry.
        layout: pass to accumulate statistics across operations.

    Returns:
        The result relation and the layout carrying the I/O cost.
    """
    if op not in ("union", "difference", "intersection"):
        raise ValueError(f"unknown set operation {op!r}")
    _check_union_compatible(r, s)
    if layout is None:
        layout = DiskLayout(spec=page_spec if page_spec is not None else PageSpec())

    r_file = layout.place_relation(r)
    s_file = layout.place_relation(s)

    def value_key(tup: VTTuple):
        return (repr(tup.key), repr(tup.payload), tup.vs, tup.ve)

    with layout.tracker.phase("sort"):
        r_sorted = external_sort(
            r_file, layout, memory_pages, key=value_key, name="setop_r",
            devices=(Device.SCRATCH_A, Device.SCRATCH_B),
        )
        layout.disk.park_heads()
        s_sorted = external_sort(
            s_file, layout, memory_pages, key=value_key, name="setop_s",
            devices=(Device.SCRATCH_C, Device.SCRATCH_D),
        )
    layout.disk.park_heads()

    result = ValidTimeRelation(r.schema)
    result_file = layout.result_file(f"setop_{op}")

    with layout.tracker.phase("merge"):
        for value, r_intervals, s_intervals in _merge_groups(r_sorted, s_sorted):
            key, payload = value
            for interval in _combine(op, r_intervals, s_intervals):
                tup = VTTuple(key, payload, interval)
                layout.write_result(result_file, tup)
                result.add(tup)
    result_file.flush()
    return result, layout


def _combine(
    op: str, r_intervals: List[Interval], s_intervals: List[Interval]
) -> List[Interval]:
    if op == "union":
        return normalize(r_intervals + s_intervals)
    if op == "difference":
        kept: List[Interval] = []
        for interval in normalize(r_intervals):
            kept.extend(subtract(interval, s_intervals))
        return kept
    common: List[Interval] = []
    for a in normalize(r_intervals):
        for b in normalize(s_intervals):
            clipped = a.intersect(b)
            if clipped is not None:
                common.append(clipped)
    return normalize(common)


def _merge_groups(
    r_sorted: HeapFile, s_sorted: HeapFile
) -> Iterator[Tuple[Tuple, List[Interval], List[Interval]]]:
    """Synchronized group iteration over two value-sorted files.

    Yields ``((key, payload), r_intervals, s_intervals)`` for every value
    present in either input, in sorted value order.
    """
    r_groups = _grouped_stream(r_sorted)
    s_groups = _grouped_stream(s_sorted)
    r_current = next(r_groups, None)
    s_current = next(s_groups, None)
    while r_current is not None or s_current is not None:
        if s_current is None or (
            r_current is not None and r_current[0] <= s_current[0]
        ):
            tag = r_current[0]
        else:
            tag = s_current[0]
        r_intervals: List[Interval] = []
        s_intervals: List[Interval] = []
        value = None
        if r_current is not None and r_current[0] == tag:
            value = r_current[1]
            r_intervals = r_current[2]
            r_current = next(r_groups, None)
        if s_current is not None and s_current[0] == tag:
            value = s_current[1]
            s_intervals = s_current[2]
            s_current = next(s_groups, None)
        assert value is not None
        yield value, r_intervals, s_intervals


def _grouped_stream(
    source: HeapFile,
) -> Iterator[Tuple[Tuple[str, str], Tuple, List[Interval]]]:
    """Yield ``(sort_tag, (key, payload), intervals)`` per value group."""
    tag: Optional[Tuple[str, str]] = None
    value: Optional[Tuple] = None
    intervals: List[Interval] = []
    for page in source.scan_pages():
        for tup in page:
            this_tag = (repr(tup.key), repr(tup.payload))
            if this_tag != tag:
                if tag is not None:
                    yield tag, value, intervals
                tag = this_tag
                value = (tup.key, tup.payload)
                intervals = []
            intervals.append(tup.valid)
    if tag is not None:
        yield tag, value, intervals
