"""Temporal join predicates over Allen's interval algebra.

The partition join evaluates exactly one temporal predicate -- interval
intersection (the valid-time natural join).  The forward-scan sweep
operator (``repro.exec.forward_sweep``) generalizes this to *any* subset
of Allen's thirteen relations: a :class:`TemporalPredicate` names such a
subset plus the timestamp policy used to stamp emitted pairs, and
compiles the subset into the two probe shapes the sweep understands:

* **Sign-grid cells** for the nine *intersecting* relations.  When the
  sweep probes its active map, every candidate already intersects the
  probing interval (that is what the map maintains), so the exact Allen
  relation of the pair ``(r, s)`` collapses to the pair of comparisons
  ``(sign(r.start - s.start), sign(r.end - s.end))``:

  ========================  ==========================
  ``(ds, de)``              relation of ``(r, s)``
  ========================  ==========================
  ``(-1, -1)``              OVERLAPS
  ``(-1,  0)``              FINISHED_BY
  ``(-1, +1)``              CONTAINS
  ``( 0, -1)``              STARTS
  ``( 0,  0)``              EQUAL
  ``( 0, +1)``              STARTED_BY
  ``(+1, -1)``              DURING
  ``(+1,  0)``              FINISHES
  ``(+1, +1)``              OVERLAPPED_BY
  ========================  ==========================

  A predicate therefore becomes a 3x3 boolean table indexed by
  ``(ds + 1, de + 1)`` -- one vectorized gather per probe.

* **Scan windows** for the four *disjoint* relations (BEFORE, MEETS,
  MET_BY, AFTER).  Those pairs never meet in the active map; the sweep
  answers them with binary-searched windows over per-key endpoint-sorted
  row indexes (see :mod:`repro.exec.forward_sweep`).

Timestamp policies mirror :func:`repro.variants.allen_joins.allen_join`:
``"intersection"`` is only legal when every accepted relation
intersects; predicates containing a disjoint relation default to
``"left"`` stamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

from repro.time.allen import AllenRelation
from repro.variants.allen_joins import CONTAIN_RELATIONS, INTERSECTING_RELATIONS

__all__ = [
    "PREDICATES",
    "SIGN_GRID",
    "TemporalPredicate",
    "predicate_names",
    "resolve_predicate",
]

#: The natural-join predicate name; partition executions support only this.
NATURAL_PREDICATE = "intersects"

#: Sign-grid cell -> Allen relation, valid only for intersecting pairs.
SIGN_GRID: Dict[Tuple[int, int], AllenRelation] = {
    (-1, -1): AllenRelation.OVERLAPS,
    (-1, 0): AllenRelation.FINISHED_BY,
    (-1, 1): AllenRelation.CONTAINS,
    (0, -1): AllenRelation.STARTS,
    (0, 0): AllenRelation.EQUAL,
    (0, 1): AllenRelation.STARTED_BY,
    (1, -1): AllenRelation.DURING,
    (1, 0): AllenRelation.FINISHES,
    (1, 1): AllenRelation.OVERLAPPED_BY,
}

#: Relations whose pairs never share a chronon (handled by scan windows).
DISJOINT_RELATIONS: FrozenSet[AllenRelation] = frozenset(
    {
        AllenRelation.BEFORE,
        AllenRelation.MEETS,
        AllenRelation.MET_BY,
        AllenRelation.AFTER,
    }
)


@dataclass(frozen=True)
class TemporalPredicate:
    """A named subset of Allen relations plus its stamping policy.

    Attributes:
        name: registry key (``"overlaps"``, ``"intersects"``, ...).
        relations: accepted Allen relations for a pair ``(r, s)``.
        timestamp: ``"intersection"``, ``"left"`` or ``"right"`` -- the
            valid interval stamped onto emitted tuples.
    """

    name: str
    relations: FrozenSet[AllenRelation]
    timestamp: str = "intersection"
    #: 3x3 table indexed ``[ds + 1][de + 1]``; True cells accept the pair.
    sign_table: Tuple[Tuple[bool, bool, bool], ...] = field(init=False)

    def __post_init__(self) -> None:
        if not self.relations:
            raise ValueError(f"predicate {self.name!r} accepts no relations")
        unknown = self.relations - set(AllenRelation)
        if unknown:
            raise ValueError(f"unknown Allen relations: {sorted(unknown)}")
        if self.timestamp not in ("intersection", "left", "right"):
            raise ValueError(f"unknown timestamp policy {self.timestamp!r}")
        if self.timestamp == "intersection" and self.disjoint_relations:
            raise ValueError(
                "intersection timestamps undefined for "
                f"{sorted(rel.value for rel in self.disjoint_relations)}"
            )
        table = tuple(
            tuple(
                SIGN_GRID[(ds, de)] in self.relations for de in (-1, 0, 1)
            )
            for ds in (-1, 0, 1)
        )
        object.__setattr__(self, "sign_table", table)

    @property
    def intersecting_relations(self) -> FrozenSet[AllenRelation]:
        """The accepted relations answerable from the active map."""
        return self.relations & INTERSECTING_RELATIONS

    @property
    def disjoint_relations(self) -> FrozenSet[AllenRelation]:
        """The accepted relations requiring scan windows."""
        return self.relations & DISJOINT_RELATIONS

    @property
    def is_natural(self) -> bool:
        """True when this predicate *is* the valid-time natural join."""
        return (
            self.relations == INTERSECTING_RELATIONS
            and self.timestamp == "intersection"
        )

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        rels = ",".join(sorted(rel.value for rel in self.relations))
        return f"TemporalPredicate({self.name!r}, {{{rels}}}, {self.timestamp!r})"


def _single(relation: AllenRelation, name: str = "") -> TemporalPredicate:
    stamp = "left" if relation in DISJOINT_RELATIONS else "intersection"
    return TemporalPredicate(
        name or relation.value, frozenset({relation}), timestamp=stamp
    )


#: The registry: all thirteen single-relation predicates plus the two
#: disjunctions the planner and service expose.  ``"intersects"`` is the
#: valid-time natural join; ``"covers"`` accepts every relation where the
#: left interval contains the right one (including shared endpoints).
PREDICATES: Dict[str, TemporalPredicate] = {
    pred.name: pred
    for pred in (
        _single(AllenRelation.BEFORE),
        _single(AllenRelation.MEETS),
        _single(AllenRelation.OVERLAPS),
        _single(AllenRelation.STARTS),
        _single(AllenRelation.DURING),
        _single(AllenRelation.FINISHES),
        _single(AllenRelation.EQUAL, "equals"),
        _single(AllenRelation.AFTER),
        _single(AllenRelation.MET_BY),
        _single(AllenRelation.OVERLAPPED_BY),
        _single(AllenRelation.STARTED_BY),
        _single(AllenRelation.CONTAINS),
        _single(AllenRelation.FINISHED_BY),
        TemporalPredicate(NATURAL_PREDICATE, INTERSECTING_RELATIONS),
        TemporalPredicate("covers", frozenset(CONTAIN_RELATIONS)),
    )
}

#: Accepted spelling variants.
_ALIASES = {"equal": "equals", "natural": NATURAL_PREDICATE}


def predicate_names() -> Tuple[str, ...]:
    """Registry keys in deterministic (sorted) order."""
    return tuple(sorted(PREDICATES))


def resolve_predicate(name: str) -> TemporalPredicate:
    """Look up a predicate by name (accepting aliases); raise on unknown."""
    key = _ALIASES.get(name, name)
    try:
        return PREDICATES[key]
    except KeyError:
        raise ValueError(
            f"unknown temporal predicate {name!r}; expected one of "
            f"{', '.join(predicate_names())}"
        ) from None
