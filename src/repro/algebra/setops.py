"""Temporal set operations: union, difference, intersection.

These are the snapshot-reducible set operators over 1NF valid-time
relations: for every chronon ``t``, the timeslice of the result equals the
set operation applied to the operands' timeslices (on *sets* of rows --
the operators coalesce per value-equivalence class internally, so duplicate
representations of the same fact do not leak through).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.model.errors import SchemaError
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval
from repro.time.intervalset import normalize, subtract


def _check_union_compatible(r: ValidTimeRelation, s: ValidTimeRelation) -> None:
    if r.schema.attributes != s.schema.attributes:
        raise SchemaError(
            f"set operation requires identical attributes: "
            f"{r.schema.name!r} has {r.schema.attributes}, "
            f"{s.schema.name!r} has {s.schema.attributes}"
        )


def _grouped(relation: ValidTimeRelation) -> Dict[Tuple, List[Interval]]:
    groups: Dict[Tuple, List[Interval]] = {}
    for tup in relation:
        groups.setdefault((tup.key, tup.payload), []).append(tup.valid)
    return groups


def _emit(
    schema: RelationSchema, groups: Dict[Tuple, List[Interval]]
) -> ValidTimeRelation:
    result = ValidTimeRelation(schema)
    for (key, payload), intervals in sorted(groups.items(), key=lambda kv: repr(kv[0])):
        for interval in intervals:
            result.add(VTTuple(key, payload, interval))
    return result


def temporal_union(r: ValidTimeRelation, s: ValidTimeRelation) -> ValidTimeRelation:
    """Facts valid in either operand; timestamps merged and coalesced."""
    _check_union_compatible(r, s)
    groups = _grouped(r)
    for value, intervals in _grouped(s).items():
        groups.setdefault(value, []).extend(intervals)
    return _emit(r.schema, {value: normalize(iv) for value, iv in groups.items()})


def temporal_difference(r: ValidTimeRelation, s: ValidTimeRelation) -> ValidTimeRelation:
    """Facts of *r* restricted to the chronons where *s* does not assert them."""
    _check_union_compatible(r, s)
    s_groups = _grouped(s)
    out: Dict[Tuple, List[Interval]] = {}
    for value, intervals in _grouped(r).items():
        removed = s_groups.get(value, [])
        kept: List[Interval] = []
        for interval in normalize(intervals):
            kept.extend(subtract(interval, removed))
        if kept:
            out[value] = kept
    return _emit(r.schema, out)


def temporal_intersection(r: ValidTimeRelation, s: ValidTimeRelation) -> ValidTimeRelation:
    """Facts asserted by both operands, over the common chronons."""
    _check_union_compatible(r, s)
    s_groups = _grouped(s)
    out: Dict[Tuple, List[Interval]] = {}
    for value, intervals in _grouped(r).items():
        others = s_groups.get(value)
        if not others:
            continue
        common: List[Interval] = []
        for interval in normalize(intervals):
            for other in normalize(others):
                clipped = interval.intersect(other)
                if clipped is not None:
                    common.append(clipped)
        if common:
            out[value] = normalize(common)
    return _emit(r.schema, out)
