"""Vertical decomposition and reconstruction via the valid-time natural join.

The paper's motivation for the operator it studies: "Like its snapshot
counterpart, the valid-time natural join supports the reconstruction of
normalized data [JSS92a]."  A relation whose payload attributes describe
independent aspects of an entity is stored as fragments -- each keeping the
join attributes plus one payload group -- and queries reassemble them with
``JOIN_V``.

The round-trip law (tested property): for a coalesced relation ``u`` whose
key functionally determines each payload group at every chronon::

    coalesce(reconstruct(decompose(u, groups)))  ==  coalesce(u)

Reconstruction fragments timestamps wherever the other fragment's tuples
begin or end, which is why the comparison is after coalescing.
"""

from __future__ import annotations

from functools import reduce
from typing import List, Sequence, Tuple

from repro.algebra.coalesce import coalesce
from repro.algebra.select_project import project
from repro.baselines.reference import reference_join
from repro.model.errors import SchemaError
from repro.model.relation import ValidTimeRelation


def decompose(
    relation: ValidTimeRelation,
    groups: Sequence[Tuple[str, ...]],
) -> List[ValidTimeRelation]:
    """Split *relation* vertically into one fragment per payload group.

    Args:
        relation: the relation to decompose.
        groups: disjoint payload attribute groups covering every payload
            attribute; each fragment keeps the join attributes plus one
            group, and is coalesced.

    Raises:
        SchemaError: if the groups are not a disjoint cover of the payload.
    """
    payload = relation.schema.payload_attributes
    flat = [attr for group in groups for attr in group]
    if sorted(flat) != sorted(payload):
        raise SchemaError(
            f"groups {groups} must partition the payload attributes {payload}"
        )
    fragments = []
    for number, group in enumerate(groups):
        fragment = project(
            relation, tuple(group), name=f"{relation.schema.name}_frag{number}"
        )
        fragments.append(coalesce(fragment))
    return fragments


def reconstruct(fragments: Sequence[ValidTimeRelation]) -> ValidTimeRelation:
    """Reassemble fragments with the valid-time natural join.

    Joins left to right with the reference evaluation; use
    :func:`repro.core.partition_join` directly when measured evaluation of a
    single reconstruction step is wanted.
    """
    if not fragments:
        raise SchemaError("cannot reconstruct from zero fragments")
    return reduce(reference_join, fragments)
