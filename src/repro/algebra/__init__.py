"""A small valid-time relational algebra around the join operators.

The paper motivates the valid-time natural join as "the operator used to
reconstruct normalized valid-time databases" [JSS92a]; this package supplies
the surrounding algebra a user of the join actually needs:

* :mod:`repro.algebra.timeslice` -- the timeslice (snapshot) operator, the
  basis of the snapshot-reducibility property tests.
* :mod:`repro.algebra.coalesce` -- merging value-equivalent tuples with
  adjacent or overlapping timestamps into maximal intervals.
* :mod:`repro.algebra.select_project` -- temporal selection and projection.
* :mod:`repro.algebra.setops` -- temporal union, difference, intersection.
* :mod:`repro.algebra.normalize` -- vertical decomposition and its
  reconstruction via the valid-time natural join.
* :mod:`repro.algebra.predicates` -- the Allen interval-relation algebra
  of join predicates the forward-scan sweep evaluates.
"""

from repro.algebra.timeslice import snapshot_join, timeslice
from repro.algebra.coalesce import coalesce
from repro.algebra.select_project import (
    select,
    select_temporal,
    project,
)
from repro.algebra.setops import (
    temporal_difference,
    temporal_intersection,
    temporal_union,
)
from repro.algebra.normalize import decompose, reconstruct
from repro.algebra.external_coalesce import external_coalesce
from repro.algebra.external_setops import external_setop
from repro.algebra.predicates import (
    NATURAL_PREDICATE,
    PREDICATES,
    TemporalPredicate,
    predicate_names,
    resolve_predicate,
)

__all__ = [
    "NATURAL_PREDICATE",
    "PREDICATES",
    "TemporalPredicate",
    "predicate_names",
    "resolve_predicate",
    "external_coalesce",
    "external_setop",
    "snapshot_join",
    "timeslice",
    "coalesce",
    "select",
    "select_temporal",
    "project",
    "temporal_difference",
    "temporal_intersection",
    "temporal_union",
    "decompose",
    "reconstruct",
]
