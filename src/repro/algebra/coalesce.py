"""Coalescing: merging value-equivalent tuples into maximal intervals.

A 1NF valid-time relation may represent one continuous fact as several
tuples with identical explicit attributes and abutting or overlapping
timestamps.  Coalescing replaces each such group by tuples with maximal
timestamps, producing the canonical representation temporal normal forms
assume [JSS92a].  The normalization round-trip tests rely on it: joining
decomposed fragments back together fragments timestamps at the other
fragment's boundaries, and coalescing restores the original stamps.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import VTTuple
from repro.time.intervalset import normalize


def coalesce(relation: ValidTimeRelation) -> ValidTimeRelation:
    """Coalesce *relation*: maximal timestamps per value-equivalence class.

    The result contains, for each distinct (key, payload) combination, one
    tuple per maximal interval of the union of the group's timestamps.
    Output order is deterministic (sorted by value then interval) so results
    compare reproducibly.
    """
    groups: Dict[Tuple, List[VTTuple]] = {}
    for tup in relation:
        groups.setdefault((tup.key, tup.payload), []).append(tup)

    result = ValidTimeRelation(relation.schema)
    for (key, payload), members in sorted(groups.items(), key=lambda kv: repr(kv[0])):
        for interval in normalize(tup.valid for tup in members):
            result.add(VTTuple(key, payload, interval))
    return result


def is_coalesced(relation: ValidTimeRelation) -> bool:
    """True when no two value-equivalent tuples overlap or meet."""
    groups: Dict[Tuple, List[VTTuple]] = {}
    for tup in relation:
        groups.setdefault((tup.key, tup.payload), []).append(tup)
    for members in groups.values():
        ordered = sorted(members, key=lambda tup: tup.vs)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.vs <= earlier.ve + 1:
                return False
    return True
