"""Temporal selection and projection.

Selection comes in two flavours: ordinary selection on explicit attribute
values, and *temporal* selection restricting tuples to a query interval
(tuples are clipped to the window, the valid-time analogue of a range
predicate on the timestamp).

Projection keeps the explicit join attributes -- dropping them would leave
tuples unjoinable and breaks the decomposition/reconstruction contract of
:mod:`repro.algebra.normalize` -- and may be followed by coalescing, since
projecting payload attributes away typically creates value-equivalent
tuples with adjacent timestamps.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval


def select(
    relation: ValidTimeRelation,
    predicate: Callable[[VTTuple], bool],
) -> ValidTimeRelation:
    """Tuples of *relation* satisfying *predicate*, timestamps unchanged."""
    result = ValidTimeRelation(relation.schema)
    for tup in relation:
        if predicate(tup):
            result.add(tup)
    return result


def select_temporal(relation: ValidTimeRelation, window: Interval) -> ValidTimeRelation:
    """Tuples valid during *window*, clipped to it.

    A tuple overlapping the window appears with timestamp
    ``overlap(tup[V], window)``; tuples entirely outside are dropped.
    """
    result = ValidTimeRelation(relation.schema)
    for tup in relation:
        clipped = tup.valid.intersect(window)
        if clipped is not None:
            result.add(tup.with_valid(clipped))
    return result


def project(
    relation: ValidTimeRelation,
    attributes: Tuple[str, ...],
    *,
    name: str = "",
) -> ValidTimeRelation:
    """Project onto *attributes* (the join attributes are always retained).

    Args:
        relation: input relation.
        attributes: explicit attributes to keep; join attributes are added
            automatically if omitted.
        name: name of the result schema (defaults to ``<input>_proj``).
    """
    schema = relation.schema
    keep = tuple(dict.fromkeys(schema.join_attributes + tuple(attributes)))
    projected_schema = schema.project(name or f"{schema.name}_proj", keep)

    payload_positions = [
        schema.payload_attributes.index(attr)
        for attr in projected_schema.payload_attributes
    ]
    result = ValidTimeRelation(projected_schema)
    for tup in relation:
        payload = tuple(tup.payload[i] for i in payload_positions)
        result.add(VTTuple(tup.key, payload, tup.valid))
    return result
