"""Bitemporal tuples and append-only bitemporal relations.

A bitemporal tuple carries two timestamps: *valid time* (when the fact was
true in the modelled reality -- the dimension the paper's join operates on)
and *transaction time* (when the database believed it).  Transaction time
is append-only [JMR+92]: a fact enters with transaction interval
``[now, UC]`` ("until changed") and is never physically removed -- a
logical delete merely closes the interval at the deletion time, preserving
the ability to roll the database back to any past state.

``UC`` is represented by the library's ``FOREVER`` sentinel, so transaction
intervals are ordinary :class:`~repro.time.interval.Interval` values and
the whole valid-time toolbox applies to the transaction dimension too.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.model.errors import SchemaError
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.time.chronon import FOREVER
from repro.time.interval import Interval

#: "Until changed": the open end of a current tuple's transaction interval.
UC: int = FOREVER


class BitemporalTuple:
    """A fact with both valid-time and transaction-time intervals."""

    __slots__ = ("key", "payload", "valid", "transaction")

    def __init__(
        self,
        key: Tuple,
        payload: Tuple,
        valid: Interval,
        transaction: Interval,
    ) -> None:
        object.__setattr__(self, "key", tuple(key))
        object.__setattr__(self, "payload", tuple(payload))
        object.__setattr__(self, "valid", valid)
        object.__setattr__(self, "transaction", transaction)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("BitemporalTuple is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitemporalTuple):
            return NotImplemented
        return (
            self.key == other.key
            and self.payload == other.payload
            and self.valid == other.valid
            and self.transaction == other.transaction
        )

    def __hash__(self) -> int:
        return hash((self.key, self.payload, self.valid, self.transaction))

    def __repr__(self) -> str:
        return (
            f"BitemporalTuple(key={self.key!r}, payload={self.payload!r}, "
            f"valid={self.valid!r}, transaction={self.transaction!r})"
        )

    @property
    def is_current(self) -> bool:
        """True while the database still believes this fact."""
        return self.transaction.end == UC

    def known_at(self, tt: int) -> bool:
        """Was this fact in the database's belief state at transaction time *tt*?"""
        return self.transaction.contains_chronon(tt)

    def as_valid_time(self) -> VTTuple:
        """Project away the transaction dimension."""
        return VTTuple(self.key, self.payload, self.valid)


class BitemporalRelation:
    """An append-only bitemporal relation.

    Mutations happen at a supplied transaction chronon, which must not
    decrease across operations (transaction time moves forward only).
    """

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self._tuples: List[BitemporalTuple] = []
        self._clock: Optional[int] = None

    # -- mutation --------------------------------------------------------------

    def insert(self, key: Tuple, payload: Tuple, valid: Interval, *, tt: int) -> BitemporalTuple:
        """Record a fact at transaction time *tt*; believed until changed."""
        self._advance_clock(tt)
        if len(key) != len(self.schema.join_attributes) or len(payload) != len(
            self.schema.payload_attributes
        ):
            raise SchemaError(
                f"tuple arity does not match schema {self.schema.name!r}"
            )
        tup = BitemporalTuple(key, payload, valid, Interval(tt, UC))
        self._tuples.append(tup)
        return tup

    def logical_delete(self, tup: BitemporalTuple, *, tt: int) -> BitemporalTuple:
        """Stop believing *tup* at transaction time *tt*.

        The tuple's transaction interval is closed at ``tt - 1``; the fact
        remains visible to rollbacks before *tt*.

        Raises:
            KeyError: if *tup* is not a current tuple of this relation.
            ValueError: if *tt* does not exceed the tuple's insertion time.
        """
        self._advance_clock(tt)
        if tup not in self._tuples or not tup.is_current:
            raise KeyError(f"{tup!r} is not a current tuple of {self.schema.name!r}")
        if tt <= tup.transaction.start:
            raise ValueError("logical delete must happen after insertion")
        closed = BitemporalTuple(
            tup.key, tup.payload, tup.valid, Interval(tup.transaction.start, tt - 1)
        )
        self._tuples[self._tuples.index(tup)] = closed
        return closed

    def update(
        self,
        tup: BitemporalTuple,
        payload: Tuple,
        valid: Interval,
        *,
        tt: int,
    ) -> BitemporalTuple:
        """Logical delete plus re-insert: the bitemporal update idiom."""
        self.logical_delete(tup, tt=tt)
        return self.insert(tup.key, payload, valid, tt=tt)

    def _advance_clock(self, tt: int) -> None:
        if self._clock is not None and tt < self._clock:
            raise ValueError(
                f"transaction time moved backwards: {tt} after {self._clock}"
            )
        self._clock = tt

    # -- queries ---------------------------------------------------------------

    def __iter__(self) -> Iterator[BitemporalTuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def as_of(self, tt: int) -> ValidTimeRelation:
        """Roll back: the valid-time relation the database held at *tt*.

        The heart of transaction time -- every past belief state is
        reconstructible.  The result is an ordinary valid-time relation, so
        all of the library's operators (including the partition join) apply
        to it.
        """
        relation = ValidTimeRelation(self.schema)
        for tup in self._tuples:
            if tup.known_at(tt):
                relation.add(tup.as_valid_time())
        return relation

    def current(self) -> ValidTimeRelation:
        """The belief state now (tuples whose transaction interval is open)."""
        relation = ValidTimeRelation(self.schema)
        for tup in self._tuples:
            if tup.is_current:
                relation.add(tup.as_valid_time())
        return relation
