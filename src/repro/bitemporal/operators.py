"""Bitemporal operators: timeslices and the bitemporal natural join.

The bitemporal natural join pairs tuples on equal join attributes and
overlap in *both* temporal dimensions, stamping the result with the
rectangle ``(overlap(valid), overlap(transaction))``.  It is
snapshot-reducible in the transaction dimension:

    as_of(r JOIN_B s, tt)  ==  as_of(r, tt) JOIN_V as_of(s, tt)

which is exactly how the paper envisioned reusing valid-time machinery in
a bitemporal DBMS -- and how :func:`bitemporal_join` can evaluate through
the partition join when asked.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bitemporal.model import BitemporalRelation, BitemporalTuple
from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.model.relation import ValidTimeRelation


def bitemporal_timeslice(
    relation: BitemporalRelation, tt: int, vt: int
) -> List[Tuple]:
    """The snapshot state: what the database believed at *tt* about *vt*."""
    return sorted(relation.as_of(tt).timeslice(vt), key=repr)


def bitemporal_join(
    r: BitemporalRelation,
    s: BitemporalRelation,
) -> List[BitemporalTuple]:
    """The bitemporal natural join: overlap in both dimensions.

    Returns result tuples stamped with the maximal common valid-time and
    transaction-time intervals, one per qualifying pair.
    """
    result_schema = r.schema.join_result_schema(s.schema)
    results: List[BitemporalTuple] = []
    s_by_key: dict = {}
    for tup in s:
        s_by_key.setdefault(tup.key, []).append(tup)
    for x in r:
        for y in s_by_key.get(x.key, ()):
            valid = x.valid.intersect(y.valid)
            if valid is None:
                continue
            transaction = x.transaction.intersect(y.transaction)
            if transaction is None:
                continue
            results.append(
                BitemporalTuple(
                    x.key, x.payload + y.payload, valid, transaction
                )
            )
    _ = result_schema  # schema validated; results are schema-shaped tuples
    return results


def bitemporal_join_as_of(
    r: BitemporalRelation,
    s: BitemporalRelation,
    tt: int,
    *,
    config: Optional[PartitionJoinConfig] = None,
) -> ValidTimeRelation:
    """The join of the *tt* belief states, via the paper's partition join.

    This is the operational bridge the paper's conclusion sketches: a
    bitemporal query at a fixed transaction time reduces to a valid-time
    natural join, evaluated with the measured partition algorithm.
    """
    r_slice = r.as_of(tt)
    s_slice = s.as_of(tt)
    if config is None:
        config = PartitionJoinConfig(memory_pages=16)
    run = partition_join(r_slice, s_slice, config)
    assert run.result is not None
    return run.result
