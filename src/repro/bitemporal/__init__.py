"""Bitemporal support: valid time plus transaction time.

The paper closes with its larger goal: "this work can be considered as the
first step towards the construction of an incremental evaluation system
for a bitemporal database management system, that is, a DBMS that supports
both valid and transaction time [SA86, JCG+92]."  This package supplies
that second dimension:

* :mod:`repro.bitemporal.model` -- bitemporal tuples (a valid-time
  interval plus an append-only transaction-time interval) and the
  :class:`BitemporalRelation` with insert / logical-delete semantics.
* :mod:`repro.bitemporal.operators` -- transaction-time rollback
  (``as_of``), bitemporal timeslices, and the bitemporal natural join,
  which reduces to the valid-time natural join on every transaction-time
  snapshot.
"""

from repro.bitemporal.model import UC, BitemporalRelation, BitemporalTuple
from repro.bitemporal.operators import (
    bitemporal_join,
    bitemporal_timeslice,
)

__all__ = [
    "UC",
    "BitemporalRelation",
    "BitemporalTuple",
    "bitemporal_join",
    "bitemporal_timeslice",
]
