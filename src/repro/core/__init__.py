"""The paper's contribution: the valid-time partition join.

Modules map one-to-one onto the paper's algorithms:

* :mod:`repro.core.intervals` -- ``chooseIntervals`` (Appendix A.3) and the
  :class:`PartitionMap` used to locate tuples within a partitioning.
* :mod:`repro.core.cache_estimate` -- ``estimateCacheSizes`` (Appendix A.4).
* :mod:`repro.core.planner` -- ``determinePartIntervals`` (Appendix A.2),
  including the Figure 4 cost curve.
* :mod:`repro.core.partitioner` -- ``doPartitioning`` (Section 3.2): Grace
  partitioning with last-overlap placement.
* :mod:`repro.core.joiner` -- ``joinPartitions`` (Appendix A.1): the
  backward sweep with tuple-cache migration.
* :mod:`repro.core.partition_join` -- the top-level ``partitionJoin``
  driver (Figure 2) and its configuration.
* :mod:`repro.core.replicating` -- the replication-based alternative the
  paper argues against (Leung-Muntz style), kept for the ablation bench.

The sweep is crash-resumable: run with ``checkpoint_interval >= 1`` and a
:class:`~repro.resilience.checkpoint.RecoveryLog`, restart with
:func:`resume_join` (see ``docs/RESILIENCE.md``).
"""

from repro.core.intervals import PartitionMap, choose_intervals
from repro.core.cache_estimate import estimate_cache_sizes
from repro.core.planner import CandidateCost, PartitionPlan, determine_part_intervals
from repro.core.partitioner import do_partitioning
from repro.core.joiner import join_partitions
from repro.core.partition_join import (
    PartitionJoinConfig,
    PartitionJoinResult,
    partition_join,
    resume_join,
)
from repro.core.replicating import replicating_partition_join

__all__ = [
    "PartitionMap",
    "choose_intervals",
    "estimate_cache_sizes",
    "CandidateCost",
    "PartitionPlan",
    "determine_part_intervals",
    "do_partitioning",
    "join_partitions",
    "PartitionJoinConfig",
    "PartitionJoinResult",
    "partition_join",
    "resume_join",
    "replicating_partition_join",
]
