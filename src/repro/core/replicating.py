"""Replication-based temporal partition join (the road not taken).

Section 3.2 discusses the straightforward alternative to tuple migration:
"simply replicate the tuple across all overlapping partitions [LM92b].
However, replication requires additional secondary storage space and
complicates update operations."  Leung and Muntz used this strategy in
their multiprocessor setting.

This module implements that alternative so the ablation bench can quantify
the trade-off the paper argues from: during partitioning every tuple is
written to *every* partition it overlaps (more partitioning I/O and more
partition pages to read back), and the join phase needs no tuple cache at
all.  Exactly-once emission uses the same end-chronon ownership rule as the
migrating joiner, so both variants produce identical results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.intervals import PartitionMap
from repro.core.joiner import JoinOutcome, _build_index
from repro.core.partition_join import PartitionJoinConfig
from repro.core.planner import PartitionPlan, determine_part_intervals
from repro.model.errors import PlanError
from repro.model.relation import ValidTimeRelation
from repro.model.vtuple import VTTuple, join_tuples
from repro.storage.buffer import JoinBufferAllocation
from repro.storage.heapfile import HeapFile
from repro.storage.layout import DiskLayout


@dataclass
class ReplicatingJoinResult:
    """Result of a replication-based partition join run."""

    outcome: JoinOutcome
    plan: PartitionPlan
    layout: DiskLayout
    replicated_tuples: int = 0  # extra copies written beyond one per tuple


def replicating_partition_join(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    config: PartitionJoinConfig,
    *,
    layout: Optional[DiskLayout] = None,
) -> ReplicatingJoinResult:
    """Evaluate ``r JOIN_V s`` with tuple replication instead of migration."""
    result_schema = r.schema.join_result_schema(s.schema)
    if layout is None:
        layout = DiskLayout(spec=config.page_spec)
    allocation = JoinBufferAllocation(config.memory_pages)
    rng = random.Random(config.seed)

    if len(r) == 0 or len(s) == 0:
        outcome = JoinOutcome(
            result=ValidTimeRelation(result_schema) if config.collect_result else None
        )
        from repro.time.interval import Interval

        trivial = PartitionPlan(
            intervals=[Interval(0, 0)],
            part_size=1,
            buff_size=allocation.buff_size,
            chosen=None,
        )
        return ReplicatingJoinResult(outcome=outcome, plan=trivial, layout=layout)

    r_file = layout.place_relation(r)
    s_file = layout.place_relation(s)
    tracker = layout.tracker

    with tracker.phase("sample"):
        plan = determine_part_intervals(
            allocation.buff_size,
            r_file,
            inner_tuples=len(s),
            cost_model=config.cost_model,
            rng=rng,
            allow_scan_sampling=config.allow_scan_sampling,
            max_candidates=config.max_plan_candidates,
        )
    layout.disk.park_heads()

    partition_map = plan.partition_map()
    replicated = 0
    with tracker.phase("partition"):
        r_parts, extra_r = _replicating_partition(
            r_file, partition_map, layout, "r", config.memory_pages
        )
        layout.disk.park_heads()
        s_parts, extra_s = _replicating_partition(
            s_file, partition_map, layout, "s", config.memory_pages
        )
        replicated = extra_r + extra_s
    layout.disk.park_heads()

    with tracker.phase("join"):
        outcome = _join_replicated(
            r_parts,
            s_parts,
            partition_map,
            allocation.buff_size,
            layout,
            result_schema,
            collect=config.collect_result,
        )

    return ReplicatingJoinResult(
        outcome=outcome, plan=plan, layout=layout, replicated_tuples=replicated
    )


def _replicating_partition(
    source: HeapFile,
    partition_map: PartitionMap,
    layout: DiskLayout,
    name: str,
    memory_pages: int,
) -> Tuple[List[HeapFile], int]:
    """Grace partitioning that copies tuples into every overlapped partition."""
    n_partitions = len(partition_map)
    if memory_pages < 2:
        raise PlanError(f"partitioning needs >= 2 buffer pages, got {memory_pages}")
    bucket_buffer_pages = max(1, (memory_pages - 1) // n_partitions)
    spec = source.spec
    partitions = [
        layout.temp_file(f"{name}_rep_part{i}", capacity_tuples=max(1, source.n_tuples))
        for i in range(n_partitions)
    ]
    buffers: List[List[VTTuple]] = [[] for _ in range(n_partitions)]
    flush_threshold = bucket_buffer_pages * spec.capacity
    extra_copies = 0

    for page in source.scan_pages():
        for tup in page:
            first = partition_map.first_overlapping(tup.valid)
            last = partition_map.last_overlapping(tup.valid)
            extra_copies += last - first
            for index in range(first, last + 1):
                bucket = buffers[index]
                bucket.append(tup)
                if len(bucket) >= flush_threshold:
                    partitions[index].append_many(bucket)
                    partitions[index].flush()
                    buffers[index] = []
    for index, bucket in enumerate(buffers):
        if bucket:
            partitions[index].append_many(bucket)
            partitions[index].flush()
    return partitions, extra_copies


def _join_replicated(
    r_parts: List[HeapFile],
    s_parts: List[HeapFile],
    partition_map: PartitionMap,
    buff_size: int,
    layout: DiskLayout,
    result_schema,
    *,
    collect: bool,
) -> JoinOutcome:
    """Join replicated partitions pairwise; no cache, no retained tuples."""
    spec = layout.spec
    block_tuples = max(1, buff_size * spec.capacity)
    result_file = layout.result_file("rep_join_result")
    collected = ValidTimeRelation(result_schema) if collect else None
    outcome = JoinOutcome(result=collected)

    for index in range(len(partition_map) - 1, -1, -1):
        outer: List[VTTuple] = []
        for page in r_parts[index].scan_pages():
            outer.extend(page)
        blocks = (
            [outer]
            if len(outer) <= block_tuples
            else [outer[i : i + block_tuples] for i in range(0, len(outer), block_tuples)]
        )
        if len(blocks) > 1:
            outcome.overflow_blocks += len(blocks) - 1
        for block in blocks:
            probe_index: Dict[Tuple, List[VTTuple]] = _build_index(block)
            for page in s_parts[index].scan_pages():
                for inner_tup in page:
                    for outer_tup in probe_index.get(inner_tup.key, ()):
                        joined = join_tuples(outer_tup, inner_tup)
                        if joined is None:
                            continue
                        if partition_map.index_of_chronon(joined.ve) != index:
                            continue
                        outcome.n_result_tuples += 1
                        layout.write_result(result_file, joined)
                        if collected is not None:
                            collected.add(joined)
    result_file.flush()
    return outcome
