"""``joinPartitions`` (Appendix A.1, Figure 9): the backward partition sweep.

The computation proceeds from partition ``n`` down to partition ``1``.  The
outer-relation partition lives in memory; long-lived outer tuples are
*retained* in that buffer across iterations, and long-lived inner tuples are
migrated through the paged *tuple cache*:

for i from n to 1:
    purge outer buffer of tuples not overlapping p_i; read r_i into it
    join the outer buffer with each page of the old tuple cache,
        copying cache tuples that overlap p_{i-1} into the new cache
    join the outer buffer with each page of s_i,
        copying s_i tuples that overlap p_{i-1} into the new cache

Every tuple is therefore present in every partition it overlaps exactly
when that partition's join is computed, without ever being replicated in
secondary storage.

The paper's Section 5 future-work idea -- "the paging cost ... can be
reduced if sufficient buffer space is allocated to retain, with high
probability, the entire tuple cache in main memory.  Trading off outer
relation partition space for tuple cache space" -- is implemented via
``cache_memory_tuples``: that many cached tuples stay resident and only the
excess pages to disk.

Two concerns the paper leaves implicit are made explicit here:

* **Exactly-once emission.**  A pair of tuples co-resides in every partition
  their overlap spans; emitting on each co-residence would duplicate
  results.  The pair is emitted only in the partition containing the *end*
  chronon of their overlap -- the first partition of the backward sweep
  where both are present -- which the integration tests verify against the
  reference join.
* **Buffer overflow ("thrashing").**  When a partition exceeds the
  ``buffSize`` outer area (a mis-estimated partitioning -- the Kolmogorov
  bound makes this a <=1% event), correctness is preserved and performance
  degraded, exactly as Section 3.4 promises: the overflow is spilled to a
  temp file and joined in additional blocks, each block re-reading the
  inner partition and tuple cache.

**Execution modes.**  The per-page compute -- key-equality probe, interval
intersection, the exactly-once owner filter, and the migration test -- runs
either tuple-at-a-time (``execution="tuple"``, the oracle) or through the
batch kernels of :mod:`repro.exec.kernels` (``execution="batch"``), which
decompose each page into a columnar :class:`~repro.exec.batch.PageBatch`
once and evaluate whole columns per operation (numpy-vectorized when numpy
is installed, pure-Python fallback otherwise).  Both paths emit identical
matches in identical order and charge identical I/O; the integration tests
assert bit-equality of outcomes and per-phase statistics.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.intervals import PartitionMap
from repro.exec.batch import ColumnarBlock
from repro.model.errors import CheckpointError
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.obs import span_or_null
from repro.resilience.checkpoint import SweepCheckpoint, SweepCheckpointer, SweepContext
from repro.storage.buffer import BufferOverflowError, BufferPool, Reservation
from repro.storage.columnar_page import ColumnarPage
from repro.storage.heapfile import HeapFile
from repro.storage.layout import DiskLayout
from repro.time.interval import Interval

if TYPE_CHECKING:  # degrade imports this module; annotation-only the other way
    from repro.obs import Observability
    from repro.resilience.degrade import BufferReduction
    from repro.storage.prefetch import PrefetchPipeline

#: Builds a result tuple from a matched pair and their interval overlap, or
#: None to reject the pair.  The default is the natural-join combination;
#: predicate variants (overlap-join, contain-join, ...) substitute their own.
PairFn = Callable[[VTTuple, VTTuple, Interval], Optional[VTTuple]]

#: Valid values of the ``execution`` knob.  ``"batch-parallel"`` only
#: differs from ``"batch"`` in the *partitioning* phase; the sweep itself is
#: inherently sequential (iteration i+1 consumes the cache iteration i
#: wrote), so both run the batch kernels here.  ``"batch-parallel-sweep"``
#: keeps the sweep's partition order sequential but parallelizes *within*
#: it: the interval-pruned probe of :mod:`repro.exec.sweep_parallel` fans
#: key-group lanes over a worker pool, and a
#: :class:`~repro.storage.prefetch.PrefetchPipeline` overlaps the next
#: partition's page reads (and defers tuple-cache spill writes) with the
#: current partition's compute.  ``"zero-copy-sweep"`` is the pipelined
#: sweep with the copy path removed: columnar pages feed the batch kernels
#: as buffer views, lane fan-out crosses the pool through a shared-memory
#: column arena instead of pickling, and workers write match indices into
#: preallocated result slabs.  Charged I/O and results are bit-identical to
#: every other mode; only the in-memory transport differs.
EXECUTION_MODES = (
    "tuple",
    "batch",
    "batch-parallel",
    "batch-parallel-sweep",
    "zero-copy-sweep",
)


def natural_pair(x: VTTuple, y: VTTuple, common: Interval) -> VTTuple:
    """The Section 2 result tuple: both payloads, overlap timestamp."""
    return VTTuple(x.key, x.payload + y.payload, common)


@dataclass
class JoinOutcome:
    """What a partition-sweep join produced and observed.

    Attributes:
        result: the materialized result relation (None when not collected).
        n_result_tuples: result cardinality (always tracked).
        overflow_blocks: extra outer blocks processed due to partition
            overflow (0 when the planner's estimate held everywhere).
        cache_tuples_peak: largest tuple-cache population seen.
        cache_tuples_spilled: cached tuples that overflowed the resident
            area and paged through disk (equals every cached tuple when no
            residency is reserved).
    """

    result: Optional[ValidTimeRelation]
    n_result_tuples: int = 0
    overflow_blocks: int = 0
    cache_tuples_peak: int = 0
    cache_tuples_spilled: int = 0


def join_partitions(
    r_parts: Sequence[HeapFile],
    s_parts: Sequence[HeapFile],
    partition_map: PartitionMap,
    buff_size: int,
    layout: DiskLayout,
    result_schema: Optional[RelationSchema] = None,
    *,
    collect: bool = True,
    pair_fn: PairFn = natural_pair,
    direction: str = "backward",
    cache_memory_tuples: int = 0,
    execution: str = "tuple",
    prefetch_depth: int = 8,
    sweep_workers: Optional[int] = None,
    supervision=None,
    interner=None,
    multibuffer_plan=None,
    pool: Optional[BufferPool] = None,
    checkpointer: Optional[SweepCheckpointer] = None,
    resume_from: Optional[SweepCheckpoint] = None,
    buffer_reductions: Sequence["BufferReduction"] = (),
    swapped_inputs: bool = False,
    obs: Optional["Observability"] = None,
) -> JoinOutcome:
    """Join pre-partitioned relations ``r`` and ``s`` (Appendix A.1).

    Args:
        r_parts: outer partitions, index-aligned with *partition_map*.
        s_parts: inner partitions, same alignment.
        partition_map: the partitioning both sides were built with.
        buff_size: pages of the outer-partition buffer area (Figure 3).
        layout: disk layout (tuple cache goes to the CACHE device, result to
            the excluded RESULT stream).
        result_schema: schema of the result, required when *collect* is True.
        collect: materialize the result relation in memory as well as
            writing it through the result stream.
        execution: ``"tuple"`` for the tuple-at-a-time oracle loop,
            ``"batch"``/``"batch-parallel"`` for the batch kernels (both run
            the same kernels here; they differ only in the partitioning
            phase, which is outside this function), or
            ``"batch-parallel-sweep"`` for the pipelined sweep: the
            interval-pruned lane-parallel probe plus partition-barrier
            prefetch and write-behind.
        prefetch_depth: pages of read-ahead per partition barrier
            (``"batch-parallel-sweep"`` only; 0 disables read-ahead).
        sweep_workers: probe lanes for the pipelined sweeps (None = one per
            core, capped at 8; clamped to the visible cores).
        supervision: a :class:`~repro.resilience.supervisor.SupervisionPolicy`
            putting the sweep's lane pool under a
            :class:`~repro.resilience.supervisor.LaneSupervisor` (crash/hang
            detection, deterministic re-dispatch, quarantine); None runs the
            bare pool with whole-sweep degradation as before.  Results and
            charged I/O are identical either way -- lanes are pure compute.
        interner: a :class:`~repro.exec.batch.KeyInterner` to reuse across
            joins (the service layer's per-relation-version interner cache).
            Interner ids never leak into results -- emission order is
            restored by the final sort -- so sharing is result-identical.
        multibuffer_plan: a :class:`~repro.planner.multibuffer.MultiBufferPlan`
            sizing the zero-copy sweep's auxiliary buffers (prefetch window,
            column arena, result slabs).  When given with a *pool*, the plan
            is shrunk to the pool's spare pages before any reservation;
            every shrink degrades transport only, never results.  Ignored by
            the non-zero-copy modes.
        pool: when given, the sweep reserves its Figure 3 regions in this
            :class:`BufferPool` and guarantees -- on success, failure, or
            simulated crash -- that every reservation is released.
        checkpointer: when given, boundary checkpoints are written every
            ``checkpointer.interval`` completed partitions (plus one at
            position 0), making the sweep resumable.
        resume_from: a committed checkpoint to restart from (requires
            *checkpointer*; the call's other arguments must describe the
            same sweep, normally via the recovery log's context).
        buffer_reductions: scheduled mid-sweep shrinks of the outer area;
            from each reduction's position on, the sweep runs with the
            smaller buffer, routing the excess through the Section 3.4
            overflow machinery and recording a degradation event.
        swapped_inputs: True when the caller passed its inputs in swapped
            orientation and *pair_fn* already compensates (the
            single-partition shortcut).  Recorded in the sweep context so
            :func:`~repro.core.partition_join.resume_join` re-applies the
            same flip to the caller-supplied ``pair_fn`` on replay.
        obs: optional :class:`~repro.obs.Observability` runtime.  Purely
            observational: spans, events, and metrics are recorded around
            the sweep, but results, outcome counters, and charged I/O are
            bit-identical with or without it.
    """
    if len(r_parts) != len(partition_map) or len(s_parts) != len(partition_map):
        raise ValueError("partition lists must align with the partition map")
    if collect and result_schema is None:
        raise ValueError("collect=True requires a result_schema")
    if direction not in ("backward", "forward"):
        raise ValueError(f"direction must be 'backward' or 'forward', got {direction!r}")
    if execution not in EXECUTION_MODES:
        raise ValueError(
            f"execution must be one of {EXECUTION_MODES}, got {execution!r}"
        )
    if resume_from is not None and checkpointer is None:
        raise CheckpointError("resume_from requires the run's checkpointer")

    n = len(partition_map)
    if direction == "backward":
        # The paper's order: tuples stored in their last partition, the
        # sweep runs n..1, migration moves backward, and a pair is owned by
        # the partition holding its overlap's END chronon.
        order_list = list(range(n - 1, -1, -1))
        step = -1
    else:
        # Footnote 1's equivalent strategy: first-partition storage, sweep
        # 1..n, forward migration, ownership by the overlap's START chronon.
        order_list = list(range(n))
        step = 1

    spec = layout.spec
    zero_copy = execution == "zero-copy-sweep"

    # The multi-buffer plan rides ON TOP of the join budget.  When a pool
    # bounds memory, shrink the plan to the pages left after the Figure 3
    # reservations below -- before the engine or pipeline sees any of its
    # numbers, so reservation and use always agree on the geometry.
    aux_plan = multibuffer_plan if zero_copy else None
    if aux_plan is not None and pool is not None:
        fig3_pages = (
            buff_size + 3 + spec.pages_for_tuples(cache_memory_tuples)
        )
        headroom = max(0, pool.free_pages - fig3_pages)
        if aux_plan.total_aux_pages > headroom:
            shrunk = aux_plan.shrink_to(headroom, spec)
            layout.resilience_report.record_degradation(
                "multibuffer-shrink",
                f"auxiliary buffers shrunk from {aux_plan.total_aux_pages} to "
                f"{shrunk.total_aux_pages} pages to fit the pool's "
                f"{headroom} spare pages",
            )
            if obs is not None:
                obs.event(
                    "degradation",
                    kind="multibuffer-shrink",
                    requested_pages=aux_plan.total_aux_pages,
                    granted_pages=shrunk.total_aux_pages,
                )
                obs.count(
                    "repro_degradations_total",
                    "Recorded degradation events by kind.",
                    kind="multibuffer-shrink",
                )
            aux_plan = shrunk
    effective_depth = aux_plan.prefetch_depth if aux_plan is not None else prefetch_depth

    pipeline: Optional["PrefetchPipeline"] = None
    if execution == "tuple":
        engine: _ProbeEngine = _TupleEngine(partition_map, direction)
    elif execution in ("batch-parallel-sweep", "zero-copy-sweep"):
        # Late imports, like the batch engine's kernels: the sweep module
        # pulls in multiprocessing machinery this module must not require.
        from repro.exec.sweep_parallel import (
            PipelinedSweepEngine,
            effective_sweep_workers,
        )
        from repro.storage.prefetch import PrefetchPipeline

        supervisor = None
        if supervision is not None:
            from repro.resilience.supervisor import LaneSupervisor

            supervisor = LaneSupervisor(
                effective_sweep_workers(sweep_workers),
                policy=supervision,
                injector=layout.disk.fault_injector,
                report=layout.resilience_report,
                obs=obs,
            )
        engine = PipelinedSweepEngine(
            partition_map,
            direction,
            workers=sweep_workers,
            obs=obs,
            zero_copy=zero_copy,
            interner=interner,
            arena_plan=aux_plan.arena_geometry() if aux_plan is not None else None,
            supervisor=supervisor,
            report=layout.resilience_report,
        )
        pipeline = PrefetchPipeline(layout, effective_depth)
    else:
        engine = _BatchEngine(partition_map, direction, interner=interner)

    inner_total = sum(part.n_tuples for part in s_parts)
    report = layout.disk.report

    if resume_from is None:
        result_file = layout.result_file("join_result")
        collected = ValidTimeRelation(result_schema) if collect else None
        outcome = JoinOutcome(result=collected)
        outer_retained: List[VTTuple] = []
        cache: Optional[_TupleCache] = None
        start_pos = 0
        if checkpointer is not None:
            checkpointer.begin(
                SweepContext(
                    r_parts=tuple(r_parts),
                    s_parts=tuple(s_parts),
                    partition_map=partition_map,
                    buff_size=buff_size,
                    result_schema=result_schema,
                    collect=collect,
                    direction=direction,
                    cache_memory_tuples=cache_memory_tuples,
                    execution=execution,
                    result_file=result_file,
                    prefetch_depth=effective_depth,
                    sweep_workers=sweep_workers,
                    arena=aux_plan.arena_geometry() if aux_plan is not None else None,
                    swapped=swapped_inputs,
                )
            )
    else:
        context = checkpointer.recovery.context
        if context is None:
            raise CheckpointError("recovery log has no sweep context to resume")
        # Discard everything the interrupted run did past the checkpoint.
        result_file = context.result_file
        result_file.rewind_to(resume_from.result_pages, resume_from.result_tuples)
        collected = None
        if collect:
            collected = ValidTimeRelation(result_schema)
            for tup in result_file.all_tuples():
                collected.add(tup)
        outcome = JoinOutcome(
            result=collected,
            n_result_tuples=resume_from.n_result_tuples,
            overflow_blocks=resume_from.overflow_blocks,
            cache_tuples_peak=resume_from.cache_tuples_peak,
            cache_tuples_spilled=resume_from.cache_tuples_spilled,
        )
        outer_retained = list(resume_from.outer_retained)
        cache = _TupleCache.restore(layout, cache_memory_tuples, inner_total, resume_from)
        start_pos = resume_from.position

    # The pool reservations of Figure 3: the outer area, the three fixed
    # in-transit pages, and any resident tuple-cache area.  try/finally below
    # guarantees they return to the pool however the sweep ends.
    reservations: List[Reservation] = []
    outer_reservation: Optional[Reservation] = None
    if pool is not None:
        outer_reservation = pool.reserve("outer_partition", buff_size)
        reservations.append(outer_reservation)
        for label in ("inner_page", "tuple_cache_page", "result_page"):
            reservations.append(pool.reserve(label, 1))
        resident_pages = spec.pages_for_tuples(cache_memory_tuples)
        if resident_pages:
            reservations.append(pool.reserve("cache_resident", resident_pages))
        if aux_plan is not None:
            # Auxiliary regions of the multi-buffer plan, best-effort: the
            # plan was shrunk to the pool's headroom above, but concurrent
            # reservations may have landed since.  A refused region is
            # simply not used -- the transport degrades, results do not.
            for label, pages in (
                ("prefetch_cache", aux_plan.prefetch_pages),
                ("column_arena", aux_plan.arena_pages),
                ("lane_slabs", aux_plan.slab_pages),
            ):
                if pages <= 0:
                    continue
                try:
                    reservations.append(pool.reserve(label, pages))
                except BufferOverflowError:
                    if obs is not None:
                        obs.event(
                            "degradation",
                            kind="aux-reservation-refused",
                            label=label,
                            pages=pages,
                        )

    current_buff = buff_size
    new_cache: Optional[_TupleCache] = None
    if obs is not None and pool is not None:
        _pool_gauges(obs, pool)
    sweep_cm = span_or_null(
        obs,
        "sweep",
        partitions=n,
        direction=direction,
        execution=execution,
        buff_size=buff_size,
        resume_position=start_pos,
    )
    sweep_span = sweep_cm.__enter__()
    try:
        for pos in range(start_pos, n):
            index = order_list[pos]
            next_index = index + step  # the partition the sweep visits next
            has_next = 0 <= next_index < n

            with span_or_null(
                obs, "partition", position=pos, partition=index
            ) as part_span:
                # Apply any scheduled buffer reductions that start here (or
                # that started before the resume point -- those shrink
                # silently, the pre-crash run already recorded them).
                effective = min(
                    [buff_size]
                    + [
                        red.buff_size
                        for red in buffer_reductions
                        if red.at_position <= pos
                    ]
                )
                if effective < current_buff:
                    current_buff = effective
                    if outer_reservation is not None:
                        outer_reservation.resize(current_buff)
                        if obs is not None and pool is not None:
                            _pool_gauges(obs, pool)
                    _note_buffer_reduction(report, pos, current_buff, obs)
                block_tuples = max(1, current_buff * spec.capacity)

                # Purge retained outer tuples that do not reach this
                # partition, then read the partition itself from disk.
                outer_pages = (
                    pipeline.scan_pages(r_parts[index])
                    if pipeline is not None
                    else r_parts[index].scan_pages()
                )
                outer = _assemble_outer(
                    outer_retained, outer_pages, partition_map, index, engine
                )

                new_cache = None
                if has_next:
                    if pipeline is not None:
                        new_cache = _PipelinedTupleCache(
                            layout,
                            f"tuple_cache_{next_index}",
                            cache_memory_tuples,
                            inner_total,
                            pipeline,
                        )
                    else:
                        new_cache = _TupleCache(
                            layout,
                            f"tuple_cache_{next_index}",
                            cache_memory_tuples,
                            inner_total,
                        )

                blocks = _split_blocks(outer, block_tuples)
                if len(blocks) > 1:
                    outcome.overflow_blocks += len(blocks) - 1
                    if obs is not None:
                        obs.event(
                            "overflow", partition=index, blocks=len(blocks) - 1
                        )
                        obs.count(
                            "repro_overflow_blocks_total",
                            "Extra outer blocks forced by partition overflow.",
                            float(len(blocks) - 1),
                        )
                    _charge_spill(blocks[1:], layout, spec, index)

                part_rows = part_matches = part_migrated = 0
                for block_number, block in enumerate(blocks):
                    probe_index = engine.build_index(block)
                    migrate = block_number == 0  # migration happens exactly once
                    if cache is not None:
                        with span_or_null(
                            obs,
                            "probe",
                            source="cache",
                            partition=index,
                            block=block_number,
                        ) as probe_span:
                            pages_n, rows_n, matches_n, migrated_n = _probe_pages(
                                cache.pages(),
                                engine,
                                probe_index,
                                index,
                                next_index if has_next else None,
                                new_cache if migrate else None,
                                result_file,
                                collected,
                                outcome,
                                layout,
                                pair_fn,
                            )
                            probe_span.set(
                                pages=pages_n,
                                rows=rows_n,
                                matches=matches_n,
                                migrated=migrated_n,
                            )
                        part_rows += rows_n
                        part_matches += matches_n
                        part_migrated += migrated_n
                    inner_pages = (
                        pipeline.scan_pages(s_parts[index])
                        if pipeline is not None
                        else s_parts[index].scan_pages()
                    )
                    with span_or_null(
                        obs,
                        "probe",
                        source="inner",
                        partition=index,
                        block=block_number,
                    ) as probe_span:
                        pages_n, rows_n, matches_n, migrated_n = _probe_pages(
                            inner_pages,
                            engine,
                            probe_index,
                            index,
                            next_index if has_next else None,
                            new_cache if migrate else None,
                            result_file,
                            collected,
                            outcome,
                            layout,
                            pair_fn,
                        )
                        probe_span.set(
                            pages=pages_n,
                            rows=rows_n,
                            matches=matches_n,
                            migrated=migrated_n,
                        )
                    part_rows += rows_n
                    part_matches += matches_n
                    part_migrated += migrated_n

                if new_cache is not None:
                    new_cache.flush()
                    outcome.cache_tuples_peak = max(
                        outcome.cache_tuples_peak, new_cache.n_tuples
                    )
                    if new_cache.spill is not None:
                        outcome.cache_tuples_spilled += new_cache.spill.n_tuples
                cache = new_cache
                outer_retained = outer
                part_span.set(
                    blocks=len(blocks),
                    outer_tuples=len(outer),
                    probe_rows=part_rows,
                    matches=part_matches,
                    migrated=part_migrated,
                )
                if obs is not None:
                    obs.observe(
                        "repro_probe_rows_per_partition",
                        float(part_rows),
                        "Rows probed against the outer block, per partition.",
                    )

            completed = pos + 1
            if (
                checkpointer is not None
                and completed < n
                and checkpointer.due(completed, start_pos)
            ):
                # Durability point: stored watermarks must cover every
                # emitted tuple, so the result buffer goes out first.
                result_file.flush()
                checkpointer.write(
                    position=completed,
                    outer_retained=outer_retained,
                    cache_resident=cache.resident if cache is not None else (),
                    cache_spill=cache.spill if cache is not None else None,
                    cache_name=cache.name if cache is not None else None,
                    result_file=result_file,
                    n_result_tuples=outcome.n_result_tuples,
                    overflow_blocks=outcome.overflow_blocks,
                    cache_tuples_peak=outcome.cache_tuples_peak,
                    cache_tuples_spilled=outcome.cache_tuples_spilled,
                )
                if obs is not None:
                    obs.event("checkpoint", position=completed)
                    obs.count(
                        "repro_checkpoints_total",
                        "Boundary checkpoints written mid-sweep.",
                    )

            if pipeline is not None and pos + 1 < n:
                with span_or_null(
                    obs, "prefetch", lane="prefetch", next_position=pos + 1
                ) as prefetch_span:
                    _prefetch_next_partition(
                        pipeline,
                        r_parts,
                        s_parts,
                        partition_map,
                        order_list[pos + 1],
                        outer_retained,
                        buff_size,
                        buffer_reductions,
                        pos + 1,
                        spec,
                    )
                    prefetch_span.set(
                        cached_pages=len(pipeline.cache)
                        if pipeline.cache is not None
                        else 0
                    )

        result_file.flush()
        sweep_span.set(
            result_tuples=outcome.n_result_tuples,
            overflow_blocks=outcome.overflow_blocks,
            cache_tuples_peak=outcome.cache_tuples_peak,
        )
        return outcome
    except BaseException:
        # The sweep died (simulated crash, fault, overflow...).  Volatile
        # buffers vanish with the process: drop them WITHOUT charged I/O --
        # a dead evaluator issues no writes.  Disk state stays as the crash
        # left it; resume rewinds it to the last checkpoint's watermarks.
        result_file.abandon()
        for c in (cache, new_cache):
            if c is not None and c.spill is not None:
                c.spill.abandon()
        raise
    finally:
        sweep_cm.__exit__(*sys.exc_info())
        if obs is not None:
            _export_engine_metrics(obs, engine, pipeline)
        if pipeline is not None:
            pipeline.discard()
        close = getattr(engine, "close", None)
        if close is not None:
            close()
        for reservation in reservations:
            reservation.release()
        if obs is not None and pool is not None:
            _pool_gauges(obs, pool)


def _prefetch_next_partition(
    pipeline: "PrefetchPipeline",
    r_parts: Sequence[HeapFile],
    s_parts: Sequence[HeapFile],
    partition_map: PartitionMap,
    next_part: int,
    outer_retained: Sequence[VTTuple],
    buff_size: int,
    buffer_reductions: Sequence["BufferReduction"],
    next_pos: int,
    spec,
) -> None:
    """Read ahead the next partition's pages at the partition barrier.

    The prefix property (see :mod:`repro.storage.prefetch`) needs the
    prefetched pages to be exactly the first demand reads of the next
    iteration.  The one thing that can break that on the TEMP device is a
    partition overflow: its spill round-trip lands between the outer scan
    and the inner scans.  Whether the next partition overflows is fully
    determined by state in hand at the barrier -- the retained outer tuples,
    the partition's cardinality, and the buffer size in force -- so it is
    predicted here without touching the disk, and on a predicted overflow
    the read-ahead stops at the outer partition's pages.
    """
    kept = _retained_overlap_count(outer_retained, partition_map, next_part)
    effective = min(
        [buff_size]
        + [red.buff_size for red in buffer_reductions if red.at_position <= next_pos]
    )
    block_tuples = max(1, effective * spec.capacity)
    will_overflow = kept + r_parts[next_part].n_tuples > block_tuples
    if will_overflow:
        pipeline.prefetch((r_parts[next_part],))
    else:
        pipeline.prefetch((r_parts[next_part], s_parts[next_part]))


def _note_buffer_reduction(
    report, pos: int, buff_size: int, obs: Optional["Observability"] = None
) -> None:
    """Record a buffer-reduction degradation once per sweep position."""
    for event in report.degradations:
        if event.kind == "buffer-reduction" and event.position == pos:
            return
    report.record_degradation(
        "buffer-reduction",
        f"outer buffer shrunk to {buff_size} pages at sweep position {pos}",
        position=pos,
    )
    if obs is not None:
        obs.event(
            "degradation", kind="buffer-reduction", position=pos, buff_size=buff_size
        )
        obs.count(
            "repro_degradations_total",
            "Recorded degradation events by kind.",
            kind="buffer-reduction",
        )


def _pool_gauges(obs: "Observability", pool: BufferPool) -> None:
    """Publish the buffer pool's occupancy gauges."""
    obs.gauge(
        "repro_buffer_pool_pages",
        float(pool.used_pages),
        "Buffer pool occupancy in pages.",
        state="used",
    )
    obs.gauge(
        "repro_buffer_pool_pages",
        float(pool.free_pages),
        "Buffer pool occupancy in pages.",
        state="free",
    )


def _export_engine_metrics(
    obs: "Observability",
    engine: "_ProbeEngine",
    pipeline: Optional["PrefetchPipeline"],
) -> None:
    """Export the sweep's end-of-run ledgers into the metrics registry.

    Covers the pipeline's per-stage I/O ledgers, the prefetch page cache's
    hit/miss/eviction counts, and the parallel engine's worker-pool dispatch
    counters.  Read-only over all of them.
    """
    if pipeline is not None:
        stages = (
            ("prefetch", pipeline.prefetch_stats),
            ("writeback", pipeline.writeback_stats),
            ("demand", pipeline.demand_stats),
        )
        for stage, stats in stages:
            for kind, value in stats.as_dict().items():
                if value:
                    obs.count(
                        "repro_pipeline_stage_ops_total",
                        "Charged I/O operations by pipeline stage and kind.",
                        float(value),
                        stage=stage,
                        kind=kind,
                    )
        if pipeline.cache is not None:
            for kind in ("hits", "misses", "evictions"):
                value = getattr(pipeline.cache, kind, 0)
                if value:
                    obs.count(
                        "repro_page_cache_events_total",
                        "Prefetch page-cache hits, misses, and evictions.",
                        float(value),
                        kind=kind,
                    )
    dispatches = getattr(engine, "pool_dispatches", None)
    if dispatches is not None:
        if dispatches:
            obs.count(
                "repro_pool_dispatches_total",
                "Probe batches dispatched to the sweep worker pool.",
                float(dispatches),
            )
        fallbacks = getattr(engine, "pool_fallbacks", 0)
        if fallbacks:
            obs.count(
                "repro_pool_fallbacks_total",
                "Probe batches that ran in-process instead of on the pool.",
                float(fallbacks),
            )
    lanes = getattr(engine, "lanes", None)
    if lanes:
        obs.gauge(
            "repro_sweep_lanes",
            float(lanes),
            "Probe lanes used by the pipelined sweep engine.",
        )
    copy_traffic = getattr(engine, "copy_traffic", None)
    if copy_traffic is not None:
        traffic = copy_traffic()
        for transport in ("pickled", "shared"):
            value = traffic.get(f"bytes_{transport}", 0)
            if value:
                obs.count(
                    "repro_arena_copy_bytes_total",
                    "Bytes crossing the worker-pool boundary by transport.",
                    float(value),
                    transport=transport,
                )
        for kind in ("arena_overflows", "slab_overflows"):
            value = traffic.get(kind, 0)
            if value:
                obs.count(
                    "repro_arena_overflows_total",
                    "Dispatches that fell back to pickling by overflow kind.",
                    float(value),
                    kind=kind,
                )
        value = traffic.get("slab_poisoned", 0)
        if value:
            obs.count(
                "repro_arena_slab_poisoned_total",
                "Result slabs that failed validation and were recomputed.",
                float(value),
            )


class _TupleCache:
    """The long-lived tuple cache: an optional resident area plus a paged
    spill file (the Section 5 partition-space / cache-space trade-off).

    With ``memory_tuples == 0`` every cached tuple pages through disk --
    exactly the paper's Figure 3 configuration, where the cache owns a
    single in-transit buffer page.
    """

    def __init__(
        self, layout: DiskLayout, name: str, memory_tuples: int, capacity_hint: int
    ) -> None:
        self._layout = layout
        self.name = name
        self._memory_tuples = memory_tuples
        self._capacity_hint = max(1, capacity_hint)
        self.resident: List[VTTuple] = []
        self.spill: Optional[HeapFile] = None

    @classmethod
    def restore(
        cls,
        layout: DiskLayout,
        memory_tuples: int,
        capacity_hint: int,
        checkpoint: SweepCheckpoint,
    ) -> Optional["_TupleCache"]:
        """Rebuild the cache a checkpoint captured (None when it had none).

        The resident area comes back from the checkpoint record (it was
        persisted with the checkpoint's charged writes); the spill file is
        the on-disk survivor, rolled back to its checkpointed watermarks.
        """
        if checkpoint.cache_name is None:
            return None
        cache = cls(layout, checkpoint.cache_name, memory_tuples, capacity_hint)
        cache.resident = list(checkpoint.cache_resident)
        if checkpoint.cache_spill is not None:
            checkpoint.cache_spill.rewind_to(
                checkpoint.cache_spill_pages, checkpoint.cache_spill_tuples
            )
            cache.spill = checkpoint.cache_spill
        return cache

    def append(self, tup: VTTuple) -> None:
        if len(self.resident) < self._memory_tuples:
            self.resident.append(tup)
            return
        if self.spill is None:
            self.spill = self._layout.cache_file(
                self.name, capacity_tuples=self._capacity_hint
            )
        self.spill.append(tup)

    def flush(self) -> None:
        if self.spill is not None:
            self.spill.flush()

    @property
    def n_tuples(self) -> int:
        return len(self.resident) + (self.spill.n_tuples if self.spill else 0)

    def pages(self):
        """Iterate page-shaped tuple lists: resident first (no I/O charge),
        then the spill file (charged reads)."""
        if self.resident:
            yield self.resident
        if self.spill is not None:
            yield from self.spill.scan_pages()


class _PipelinedTupleCache(_TupleCache):
    """A tuple cache with write-behind: spill appends are buffered in memory
    and written in one run at the partition barrier (inside the pipeline's
    ``writeback`` window, so the writes are charged normally *and* tagged).

    Deferring the writes turns the CACHE device's serial read/write
    interleaving into one read run followed by one write run: the same page
    writes with the same contents, never more random accesses.  Crash-wise
    the deferred tuples are volatile state, exactly like the serial cache's
    partial write-buffer page: a crash before the barrier loses them
    uncharged, and resume rebuilds the cache from the checkpoint.
    """

    def __init__(
        self,
        layout: DiskLayout,
        name: str,
        memory_tuples: int,
        capacity_hint: int,
        pipeline: "PrefetchPipeline",
    ) -> None:
        super().__init__(layout, name, memory_tuples, capacity_hint)
        self._pipeline = pipeline
        self._pending: List[VTTuple] = []

    def append(self, tup: VTTuple) -> None:
        if len(self.resident) < self._memory_tuples:
            self.resident.append(tup)
            return
        self._pending.append(tup)

    def flush(self) -> None:
        if self._pending:
            with self._pipeline.writeback():
                if self.spill is None:
                    self.spill = self._layout.cache_file(
                        self.name, capacity_tuples=self._capacity_hint
                    )
                self.spill.append_many(self._pending)
                self.spill.flush()
            self._pending = []
        elif self.spill is not None:
            self.spill.flush()

    @property
    def n_tuples(self) -> int:
        return (
            len(self.resident)
            + len(self._pending)
            + (self.spill.n_tuples if self.spill else 0)
        )


def _assemble_outer(
    outer_retained, outer_pages, partition_map, index: int, engine
) -> Sequence[VTTuple]:
    """The outer block: purged retained tuples plus the partition's pages.

    When the engine consumes packed blocks and every page is columnar (the
    zero-copy sweep), rows stay in their pages: the purge is vectorized over
    the column views and no tuple is materialized until something touches
    the row.  Every other combination builds the row-oriented list exactly
    as before.  Both shapes hold the same rows in the same order, and the
    charged page reads happen identically (the scan is consumed up front
    either way).
    """
    pages = list(outer_pages)
    if getattr(engine, "supports_columnar_blocks", False) and all(
        isinstance(page, ColumnarPage) for page in pages
    ):
        if isinstance(outer_retained, ColumnarBlock):
            retained = outer_retained.purged(partition_map, index)._segments
        elif not outer_retained:
            retained = []
        else:
            retained = None
        if retained is not None:
            return ColumnarBlock(retained + [(page, None) for page in pages])
    outer: List[VTTuple] = [
        tup
        for tup in outer_retained
        if partition_map.overlaps_partition(tup.valid, index)
    ]
    for page in pages:
        outer.extend(page)
    return outer


def _retained_overlap_count(outer_retained, partition_map, next_part: int) -> int:
    """How many retained outer tuples reach *next_part* (overflow predictor)."""
    if isinstance(outer_retained, ColumnarBlock):
        return outer_retained.count_overlapping(partition_map, next_part)
    return sum(
        1
        for tup in outer_retained
        if partition_map.overlaps_partition(tup.valid, next_part)
    )


def _split_blocks(outer: List[VTTuple], block_tuples: int) -> List[List[VTTuple]]:
    """Split the outer partition into buffer-sized blocks (usually one)."""
    if len(outer) <= block_tuples:
        return [outer]
    return [outer[i : i + block_tuples] for i in range(0, len(outer), block_tuples)]


def _charge_spill(
    overflow_blocks: List[List[VTTuple]],
    layout: DiskLayout,
    spec,
    index: int,
) -> None:
    """Charge the write and read-back of spilled overflow blocks.

    The tuples themselves stay in Python memory (the simulation is of cost,
    not capacity); what matters is that the overflow pays a round trip to
    the TEMP device, which this spill file records.
    """
    n_tuples = sum(len(block) for block in overflow_blocks)
    spill = layout.temp_file(f"overflow_spill_{index}", capacity_tuples=n_tuples)
    for block in overflow_blocks:
        spill.append_many(block)
    spill.flush()
    for _ in spill.scan_pages():
        pass


def _build_index(block: Sequence[VTTuple]) -> Dict[Tuple, List[VTTuple]]:
    """Hash the outer block on the explicit join attributes."""
    probe_index: Dict[Tuple, List[VTTuple]] = {}
    for tup in block:
        probe_index.setdefault(tup.key, []).append(tup)
    return probe_index


class _ProbeEngine:
    """Strategy for the per-page compute of the sweep.

    An engine builds an index over the outer block and, per inner page,
    produces the emitted matches (in (inner row, outer insertion order)
    order) and the rows to migrate into the next cache (in page order).
    Both engines are pure in-memory compute: all I/O stays in the caller,
    so the charged statistics cannot depend on the engine.
    """

    def build_index(self, block: Sequence[VTTuple]):
        raise NotImplementedError

    def process_page(
        self,
        index_obj,
        page: Sequence[VTTuple],
        part_index: int,
        next_index: Optional[int],
        want_migration: bool,
    ) -> Tuple[List[Tuple[VTTuple, VTTuple, Interval]], List[int]]:
        raise NotImplementedError


class _TupleEngine(_ProbeEngine):
    """The paper-faithful tuple-at-a-time loops (the correctness oracle)."""

    def __init__(self, partition_map: PartitionMap, direction: str) -> None:
        self._map = partition_map
        self._backward = direction == "backward"

    def build_index(self, block: Sequence[VTTuple]) -> Dict[Tuple, List[VTTuple]]:
        return _build_index(block)

    def process_page(self, index_obj, page, part_index, next_index, want_migration):
        partition_map = self._map
        matches: List[Tuple[VTTuple, VTTuple, Interval]] = []
        for inner_tup in page:
            for outer_tup in index_obj.get(inner_tup.key, ()):
                common = outer_tup.valid.intersect(inner_tup.valid)
                if common is None:
                    continue
                # Exactly-once rule: the pair belongs to the first partition
                # of the sweep where both tuples co-reside -- the partition
                # holding the overlap's end chronon (backward sweep) or its
                # start chronon (forward sweep).
                owner_chronon = common.end if self._backward else common.start
                if partition_map.index_of_chronon(owner_chronon) != part_index:
                    continue
                matches.append((outer_tup, inner_tup, common))
        migrate_rows: List[int] = []
        if want_migration and next_index is not None:
            migrate_rows = [
                row
                for row, inner_tup in enumerate(page)
                if partition_map.overlaps_partition(inner_tup.valid, next_index)
            ]
        return matches, migrate_rows


class _BatchEngine(_ProbeEngine):
    """The batch kernels: one columnar decomposition per page, whole-column
    probe / intersection / owner-filter / migration operations."""

    def __init__(
        self, partition_map: PartitionMap, direction: str, kernels=None, interner=None
    ) -> None:
        from repro.exec.batch import CodeTranslator
        from repro.exec.kernels import get_kernels

        self._kernels = kernels if kernels is not None else get_kernels()
        self._boundaries = self._kernels.prepare_boundaries(partition_map)
        self._interner = interner if interner is not None else self._kernels.make_interner()
        self._translator = (
            CodeTranslator(self._interner) if self._kernels.use_numpy else None
        )
        self._direction = direction

    def build_index(self, block: Sequence[VTTuple]):
        return self._kernels.build_probe_index(block, self._interner)

    def process_page(self, index_obj, page, part_index, next_index, want_migration):
        kernels = self._kernels
        batch = kernels.page_batch(page, self._interner, translator=self._translator)
        matches = kernels.probe(
            index_obj, batch, self._boundaries, part_index, self._direction
        )
        migrate_rows: List[int] = []
        if want_migration and next_index is not None:
            migrate_rows = kernels.migration_rows(batch, self._boundaries, next_index)
        return matches, migrate_rows


def _probe_pages(
    pages,
    engine: _ProbeEngine,
    probe_index,
    index: int,
    next_index: Optional[int],
    new_cache: Optional["_TupleCache"],
    result_file: HeapFile,
    collected: Optional[ValidTimeRelation],
    outcome: JoinOutcome,
    layout: DiskLayout,
    pair_fn: PairFn,
) -> Tuple[int, int, int, int]:
    """Join every page of the *pages* stream against the outer block.

    When *new_cache* is given, tuples overlapping the sweep's next
    partition are migrated into it as their page passes through memory
    (Figure 9's ``newCachePage`` handling).  The engine decides *how* the
    page is matched and filtered; emission and migration I/O happen here,
    identically for every engine.

    Returns ``(pages, rows, emitted, migrated)`` counts for the probe span
    -- derived from work already done, never changing what is done.
    """
    n_pages = n_rows = n_emitted = n_migrated = 0
    for page in pages:
        n_pages += 1
        n_rows += len(page)
        matches, migrate_rows = engine.process_page(
            probe_index, page, index, next_index, new_cache is not None
        )
        for outer_tup, inner_tup, common in matches:
            joined = pair_fn(outer_tup, inner_tup, common)
            if joined is None:
                continue
            outcome.n_result_tuples += 1
            n_emitted += 1
            layout.write_result(result_file, joined)
            if collected is not None:
                collected.add(joined)
        if new_cache is not None:
            for row in migrate_rows:
                new_cache.append(page[row])
            n_migrated += len(migrate_rows)
    return n_pages, n_rows, n_emitted, n_migrated
