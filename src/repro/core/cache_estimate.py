"""``estimateCacheSizes`` (Appendix A.4): predicted tuple-cache pages.

For each partition, the estimated tuple-cache size is the number of sampled
tuples that overlap it *beyond their last partition's own join step* --
i.e. a tuple overlapping partitions ``p_min .. p_max`` occupies the cache
while partitions ``p_min .. p_max - 1`` are being joined -- scaled to the
population.

The appendix's pseudo-code scales by ``|samples| / |r|``; scaling a sample
count up to a population estimate requires the reciprocal, ``population /
|samples|``, so we use that (with the note that this is an erratum-level
transcription fix, not a design change).  The samples come from the outer
relation while the cache holds inner-relation tuples; following the paper's
stated "implicit assumption that the distribution, over valid time, of
tuples in the outer and inner relations is similar", the caller passes the
*inner* relation's cardinality as the population.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.intervals import PartitionMap, SampleSpans
from repro.exec.backend import np
from repro.model.vtuple import VTTuple
from repro.storage.page import PageSpec


def estimate_cache_sizes(
    samples: Sequence[VTTuple],
    population_tuples: int,
    partition_map: PartitionMap,
    spec: PageSpec,
) -> List[int]:
    """Estimate tuple-cache pages per partition.

    Args:
        samples: sampled tuples (drawn from the outer relation).
        population_tuples: cardinality of the relation whose tuples will be
            cached (the inner relation).
        partition_map: the candidate partitioning.
        spec: page geometry, to convert tuple counts to pages.

    Returns:
        One estimated page count per partition (index-aligned with
        ``partition_map``); partition ``i``'s entry is the cache expected
        while ``r_i JOIN s_i`` is computed.
    """
    if population_tuples < 0:
        raise ValueError(f"negative population {population_tuples}")
    if not len(samples):
        return [0] * len(partition_map)
    if np is not None and isinstance(samples, SampleSpans):
        # Vectorized replay of the loop below: ``index_of_chronon`` is a
        # clamped ``bisect_left``, i.e. a clamped left ``searchsorted``,
        # and the per-tuple ``counts[first:last] += 1`` is a difference
        # array accumulated once.
        boundary_ends = np.asarray(
            [interval.end for interval in partition_map.intervals], dtype=np.int64
        )
        clamp = len(partition_map) - 1
        first = np.minimum(
            np.searchsorted(boundary_ends, samples.starts, side="left"), clamp
        )
        last = np.minimum(
            np.searchsorted(boundary_ends, samples.ends, side="left"), clamp
        )
        deltas = np.zeros(len(partition_map) + 1, dtype=np.int64)
        np.add.at(deltas, first, 1)
        np.add.at(deltas, last, -1)
        counts = np.cumsum(deltas[:-1]).tolist()
    else:
        counts = [0] * len(partition_map)
        for tup in samples:
            first = partition_map.first_overlapping(tup.valid)
            last = partition_map.last_overlapping(tup.valid)
            # The tuple is cached for every overlapped partition except its
            # last, where it is read from the partition itself (Figure 9).
            for index in range(first, last):
                counts[index] += 1
    scale = population_tuples / len(samples)
    return [spec.pages_for_tuples(round(count * scale)) for count in counts]
