"""``partitionJoin`` (Figure 2): the top-level valid-time partition join.

Wires the three phases together over a fresh disk layout:

1. ``determinePartIntervals`` -- sample the outer relation and choose the
   cost-minimizing partitioning (phase ``"sample"``).
2. ``doPartitioning`` -- Grace-partition both inputs (phase ``"partition"``).
3. ``joinPartitions`` -- the backward sweep (phase ``"join"``).

Device heads are parked between phases so sequentiality cannot leak across
phase boundaries, and per-phase I/O is recorded on the layout's
:class:`~repro.storage.iostats.PhaseTracker`, giving exactly the paper's
``C_total = C_sample + C_partition + C_join`` decomposition.
"""

from __future__ import annotations

import dataclasses
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from repro.core.joiner import JoinOutcome, PairFn, join_partitions, natural_pair
from repro.core.partitioner import do_partitioning
from repro.core.planner import PartitionPlan, determine_part_intervals
from repro.obs import Observability, ObservabilityConfig
from repro.model.errors import (
    BufferOverflowError,
    CheckpointError,
    PermanentIOFaultError,
    PlanError,
)
from repro.model.relation import ValidTimeRelation
from repro.resilience.checkpoint import RecoveryLog, SweepCheckpointer
from repro.resilience.degrade import BufferReduction, fallback_nested_loop_join
from repro.resilience.report import ResilienceReport
from repro.resilience.retry import RetryPolicy
from repro.storage.buffer import BufferPool, JoinBufferAllocation
from repro.storage.iostats import CostModel
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec

#: Every legal ``PartitionJoinConfig.execution`` value; all modes are
#: required to produce bit-identical results (see docs/EXECUTION.md).
EXECUTION_MODES: Tuple[str, ...] = (
    "tuple",
    "batch",
    "batch-parallel",
    "batch-parallel-sweep",
    "zero-copy-sweep",
)

#: Modes accepted by :class:`PartitionJoinConfig`: the partition modes above
#: (bit-identical results *and* per-phase I/O) plus the forward-scan sweep
#: operator, which produces the identical result multiset and cardinality
#: but follows its own sort/join phase ledger (see docs/EXECUTION.md) -- so
#: it deliberately stays out of ``EXECUTION_MODES``.
ALL_EXECUTION_MODES: Tuple[str, ...] = EXECUTION_MODES + ("forward-sweep",)

#: The temporal predicate the partition machinery evaluates.
NATURAL_PREDICATE = "intersects"


@dataclass(frozen=True)
class PartitionJoinConfig:
    """Knobs of the partition-join evaluation.

    Attributes:
        memory_pages: total main-memory buffer pages (the Figure 3 budget:
            ``buffSize`` plus the three fixed single-page areas).
        cost_model: random/sequential I/O weights.
        page_spec: page geometry.
        seed: RNG seed for sampling (fixed for reproducible experiments).
        allow_scan_sampling: Section 4.2 sampling optimization switch.
        max_plan_candidates: planner candidate-grid size.
        collect_result: materialize the result relation in memory.
        sweep_direction: ``"backward"`` (the paper: last-partition storage,
            sweep n..1) or ``"forward"`` (footnote 1's equivalent strategy:
            first-partition storage, sweep 1..n).
        cache_buffer_pages: pages of the buffer re-purposed to keep the
            tuple cache resident -- the Section 5 future-work trade-off
            ("trading off outer relation partition space for tuple cache
            space").  Taken out of the outer-partition area; 0 reproduces
            the paper's Figure 3 allocation.
        sample_inner_relation: base the planner's tuple-cache estimate on a
            small charged sample of the inner relation instead of assuming
            the outer's temporal distribution transfers (the Section 5
            mis-estimation caveat).
        execution: how the per-tuple compute runs.  ``"tuple"`` is the
            tuple-at-a-time oracle; ``"batch"`` routes partitioning and the
            sweep through the batch kernels of :mod:`repro.exec`;
            ``"batch-parallel"`` additionally fans the Grace-partitioning
            placement out to a process pool.  All three produce identical
            results and identical per-phase I/O statistics.
            ``"batch-parallel-sweep"`` adds the pipelined sweep: the
            interval-pruned lane-parallel probe of
            :mod:`repro.exec.sweep_parallel` plus partition-barrier page
            prefetch and write-behind -- still bit-identical results and
            counters, with the pipeline's I/O share tagged on the
            statistics; see ``docs/EXECUTION.md``.  ``"zero-copy-sweep"``
            is the pipelined sweep on the zero-copy transport: columnar
            pages probed as buffer views, lane fan-out through a
            shared-memory column arena with preallocated result slabs,
            and auxiliary buffers sized jointly by the
            :mod:`repro.planner.multibuffer` pass -- identical results
            and charged I/O again; only in-memory copy traffic changes.
            ``"forward-sweep"`` is the endpoint-sorted forward-scan sweep
            operator of :mod:`repro.exec.forward_sweep`: no sampling, no
            partitioning -- one merged scan with gapless active maps (plus
            a charged sort pass per input lacking endpoint-sorted
            metadata), the only execution evaluating non-natural
            ``predicate`` values.
        predicate: the temporal predicate to evaluate, by
            :mod:`repro.algebra.predicates` registry name.  The partition
            executions support only the natural join (``"intersects"``);
            every other predicate requires ``execution="forward-sweep"``.
        parallel_workers: process-pool size for ``"batch-parallel"``'s
            partitioning phase (None picks a machine-dependent default; the
            result never depends on the pool size).
        prefetch_depth: pages the sweep's prefetcher reads ahead per
            partition barrier (``"batch-parallel-sweep"`` only; 0 disables
            read-ahead while keeping write-behind).
        sweep_workers: probe lanes of the pipelined sweep (None = one per
            core, capped at 8; the result never depends on the lane count).
        lane_supervision: supervise the sweep's lane pool (heartbeats,
            crash/hang detection, deterministic re-dispatch, quarantine --
            see ``docs/RESILIENCE.md``).  Off, pool failure degrades the
            whole sweep to in-process execution as before.
        lane_timeout_seconds: wall-clock deadline per supervised lane
            dispatch; a dispatch still incomplete past it is declared hung
            and re-dispatched.
        lane_heartbeat_seconds: progress-sampling cadence of the supervisor
            (intervals without a completed lane count as heartbeat misses).
        lane_max_redispatches: consecutive failed dispatches tolerated
            before the supervisor retires to in-process execution.
        lane_quarantine_after: consecutive failures per quarantined lane
            (every Nth consecutive failure shrinks the lane count by one;
            0 disables quarantine).
        checkpoint_interval: completed partitions between sweep checkpoints;
            0 (the default) disables checkpointing, >= 1 makes the sweep
            resumable via :func:`resume_join`.
        retry_limit: override of the disk's retry bound for transient
            faults (None keeps the layout's policy).
        degraded_fallback: when a page fails permanently, re-evaluate the
            join as a block nested loop over the base relations instead of
            raising; the degradation is recorded on the resilience report.
        buffer_reductions: scheduled mid-sweep shrinks of the outer buffer
            area (:class:`~repro.resilience.degrade.BufferReduction`).
        observability: when set, the run records structured spans and
            metrics into an :class:`~repro.obs.Observability` runtime,
            returned on the result.  Strictly observational: results,
            outcome counters, and charged I/O are bit-identical with the
            knob on or off (see ``docs/OBSERVABILITY.md``).

    Every knob is validated centrally here, so a bad configuration fails at
    construction with a clear message instead of deep inside a phase.

    The dataclass is frozen, hence hashable: a config can key the service
    layer's plan and result caches (see ``docs/SERVICE.md``), and mutation
    attempts raise ``FrozenInstanceError`` -- derive variants with
    :func:`dataclasses.replace`.
    """

    memory_pages: int
    cost_model: CostModel = field(default_factory=CostModel)
    page_spec: PageSpec = field(default_factory=PageSpec)
    seed: int = 0x1CDE1994
    allow_scan_sampling: bool = True
    max_plan_candidates: int = 64
    collect_result: bool = True
    sweep_direction: str = "backward"
    cache_buffer_pages: int = 0
    sample_inner_relation: bool = False
    execution: str = "tuple"
    predicate: str = NATURAL_PREDICATE
    parallel_workers: Optional[int] = None
    prefetch_depth: int = 8
    sweep_workers: Optional[int] = None
    lane_supervision: bool = True
    lane_timeout_seconds: float = 30.0
    lane_heartbeat_seconds: float = 0.5
    lane_max_redispatches: int = 3
    lane_quarantine_after: int = 2
    checkpoint_interval: int = 0
    retry_limit: Optional[int] = None
    degraded_fallback: bool = True
    buffer_reductions: Tuple[BufferReduction, ...] = ()
    observability: Optional[ObservabilityConfig] = None

    def __post_init__(self) -> None:
        min_pages = JoinBufferAllocation.FIXED_PAGES + 1
        if self.memory_pages < min_pages:
            raise BufferOverflowError(
                f"partition join needs >= {min_pages} buffer pages (buffSize "
                f"plus the {JoinBufferAllocation.FIXED_PAGES} fixed single-page "
                f"areas of Figure 3), got {self.memory_pages}"
            )
        if self.cache_buffer_pages < 0:
            raise ValueError("cache_buffer_pages must be non-negative")
        if self.memory_pages - JoinBufferAllocation.FIXED_PAGES - self.cache_buffer_pages < 1:
            raise PlanError(
                f"cache reservation of {self.cache_buffer_pages} pages leaves no "
                f"outer-partition space in a {self.memory_pages}-page buffer"
            )
        if self.execution not in ALL_EXECUTION_MODES:
            raise ValueError(
                f"execution must be one of {ALL_EXECUTION_MODES}, "
                f"got {self.execution!r}"
            )
        from repro.algebra.predicates import resolve_predicate

        resolve_predicate(self.predicate)  # raises on unknown names
        if self.predicate != NATURAL_PREDICATE and self.execution != "forward-sweep":
            raise ValueError(
                f"predicate {self.predicate!r} requires execution="
                f"'forward-sweep'; the partition modes evaluate only the "
                f"valid-time natural join ({NATURAL_PREDICATE!r})"
            )
        if self.execution == "forward-sweep":
            if self.checkpoint_interval > 0:
                raise ValueError(
                    "forward-sweep does not checkpoint (it has no partition "
                    "barriers); set checkpoint_interval=0"
                )
            if self.buffer_reductions:
                raise ValueError(
                    "forward-sweep ignores the outer buffer area; "
                    "buffer_reductions only apply to partition executions"
                )
        if self.parallel_workers is not None and self.parallel_workers < 1:
            raise ValueError(
                f"parallel_workers must be >= 1 (or None for the default), "
                f"got {self.parallel_workers}"
            )
        if not isinstance(self.prefetch_depth, int) or self.prefetch_depth < 0:
            raise ValueError(
                f"prefetch_depth must be an integer >= 0, got {self.prefetch_depth!r}"
            )
        if self.sweep_workers is not None and self.sweep_workers < 1:
            raise ValueError(
                f"sweep_workers must be >= 1 (or None for the default), "
                f"got {self.sweep_workers}"
            )
        if self.lane_timeout_seconds <= 0:
            raise ValueError(
                f"lane_timeout_seconds must be positive, "
                f"got {self.lane_timeout_seconds}"
            )
        if self.lane_heartbeat_seconds <= 0:
            raise ValueError(
                f"lane_heartbeat_seconds must be positive, "
                f"got {self.lane_heartbeat_seconds}"
            )
        if not isinstance(self.lane_max_redispatches, int) or self.lane_max_redispatches < 0:
            raise ValueError(
                f"lane_max_redispatches must be an integer >= 0, "
                f"got {self.lane_max_redispatches!r}"
            )
        if not isinstance(self.lane_quarantine_after, int) or self.lane_quarantine_after < 0:
            raise ValueError(
                f"lane_quarantine_after must be an integer >= 0 (0 disables "
                f"quarantine), got {self.lane_quarantine_after!r}"
            )
        if not isinstance(self.checkpoint_interval, int) or self.checkpoint_interval < 0:
            raise ValueError(
                f"checkpoint_interval must be an integer >= 1, or 0 to disable "
                f"checkpointing, got {self.checkpoint_interval!r}"
            )
        if self.retry_limit is not None and self.retry_limit < 0:
            raise ValueError(
                f"retry_limit must be >= 0 (or None for the layout's policy), "
                f"got {self.retry_limit}"
            )
        for reduction in self.buffer_reductions:
            if not isinstance(reduction, BufferReduction):
                raise ValueError(
                    f"buffer_reductions must hold BufferReduction objects, "
                    f"got {reduction!r}"
                )
        if self.observability is not None and not isinstance(
            self.observability, ObservabilityConfig
        ):
            raise ValueError(
                f"observability must be an ObservabilityConfig or None, "
                f"got {self.observability!r}"
            )

    @property
    def buff_size(self) -> int:
        """Outer-partition pages after the fixed areas and cache reservation."""
        return (
            self.memory_pages
            - JoinBufferAllocation.FIXED_PAGES
            - self.cache_buffer_pages
        )

    def supervision_policy(self):
        """The lane :class:`~repro.resilience.supervisor.SupervisionPolicy`
        these knobs describe, or None when supervision is off."""
        if not self.lane_supervision:
            return None
        from repro.resilience.supervisor import SupervisionPolicy

        return SupervisionPolicy(
            lane_timeout_seconds=self.lane_timeout_seconds,
            heartbeat_seconds=self.lane_heartbeat_seconds,
            max_redispatches=self.lane_max_redispatches,
            quarantine_after=self.lane_quarantine_after,
        )


@dataclass
class PartitionJoinResult:
    """Everything a partition-join run produced.

    Attributes:
        outcome: result relation and sweep observations.
        plan: the partitioning plan that was executed.
        layout: the disk layout, carrying the phase-tracked I/O statistics.
        recovery: the run's recovery log (None when checkpointing was off).
        observability: the run's :class:`~repro.obs.Observability` runtime
            (None when ``config.observability`` was unset); carries the
            trace and the metrics snapshot.
    """

    outcome: JoinOutcome
    plan: PartitionPlan
    layout: DiskLayout
    recovery: Optional[RecoveryLog] = None
    observability: Optional[Observability] = None

    @property
    def result(self) -> Optional[ValidTimeRelation]:
        return self.outcome.result

    @property
    def resilience(self) -> ResilienceReport:
        """What the resilience machinery observed and did during the run."""
        return self.layout.resilience_report

    def total_cost(self, cost_model: CostModel) -> float:
        """Weighted evaluation cost (result writes excluded, as in the paper)."""
        return self.layout.tracker.stats.cost(cost_model)


def _build_observability(
    config: PartitionJoinConfig, layout: DiskLayout
) -> Optional[Observability]:
    """The run's observability runtime, attached to the layout's disk.

    Reuses a runtime already attached to the disk (a resumed run keeps
    accumulating into the crashed run's trace and metrics).
    """
    if config.observability is None:
        return None
    existing = getattr(layout.disk, "_obs", None)
    if existing is not None:
        return existing
    obs = Observability(config.observability)
    layout.disk.attach_observer(obs)
    return obs


@contextmanager
def _phase(tracker, obs: Optional[Observability], name: str) -> Iterator[None]:
    """A tracker phase, mirrored onto the observability runtime when present."""
    with tracker.phase(name):
        if obs is not None:
            with obs.phase(name):
                yield
        else:
            yield


def partition_join(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    config: PartitionJoinConfig,
    *,
    layout: Optional[DiskLayout] = None,
    pair_fn: PairFn = natural_pair,
    recovery: Optional[RecoveryLog] = None,
    pool: Optional[BufferPool] = None,
    plan: Optional[PartitionPlan] = None,
    interner=None,
) -> PartitionJoinResult:
    """Evaluate the valid-time natural join ``r JOIN_V s`` by partitioning.

    Args:
        r: outer relation (the one sampled; the paper samples the outer).
        s: inner relation.
        config: evaluation knobs.
        layout: pass a pre-built layout to accumulate statistics across
            operations; a fresh one is created otherwise.
        recovery: recovery log for crash/resume; required to
            :func:`resume_join` later (a private one is used when omitted
            and ``config.checkpoint_interval > 0``).
        pool: buffer pool the sweep reserves its regions in.  A pool smaller
            than ``config.memory_pages`` triggers the *replan* degradation:
            the evaluation re-plans for the pool's actual size instead of
            failing.
        plan: a previously computed :class:`~repro.core.planner.PartitionPlan`
            for the *same* inputs and configuration (the service layer's plan
            cache).  The sampling phase is skipped entirely -- no sample I/O
            is charged -- and the given partitioning executes as-is.  Only
            reuse a plan when relations and ``buff_size`` are unchanged;
            results stay bit-identical because the plan fully determines the
            partitioning.  Ignored when a relation fits in the buffer (the
            single-partition shortcut never samples anyway), and discarded
            when a smaller *pool* forces a replan.
        interner: a :class:`~repro.exec.batch.KeyInterner` shared across
            repeated joins of the same relation version (the service
            layer's interner cache).  Interner ids never reach results, so
            sharing is result-identical; None builds a fresh one per run.

    Raises:
        SchemaError: if the schemas are not join-compatible.
        PlanError: if memory is too small for the Figure 3 allocation.
        PermanentIOFaultError: a page failed permanently and
            ``config.degraded_fallback`` is off.
    """
    result_schema = r.schema.join_result_schema(s.schema)
    if layout is None:
        # The zero-copy mode stores pages in the packed columnar layout so
        # the batch kernels probe buffer views; the layout is readable by
        # every mode and changes no charged I/O (page counts are identical).
        layout = DiskLayout(
            spec=config.page_spec,
            columnar=(config.execution in ("zero-copy-sweep", "forward-sweep")),
        )
    if config.retry_limit is not None:
        layout.disk.retry_policy = RetryPolicy(
            max_retries=config.retry_limit,
            backoff_ops=layout.disk.retry_policy.backoff_ops,
        )
    obs = _build_observability(config, layout)
    if pool is not None and pool.total_pages < config.memory_pages:
        # Graceful degradation: the memory the plan assumed is not there.
        # Re-plan for what the pool can actually grant rather than failing
        # (a too-small pool still raises, from the config validation).
        layout.resilience_report.record_degradation(
            "replan",
            f"buffer pool grants {pool.total_pages} of {config.memory_pages} "
            f"requested pages; re-planning for the smaller budget",
        )
        if obs is not None:
            obs.event(
                "degradation",
                kind="replan",
                granted_pages=pool.total_pages,
                requested_pages=config.memory_pages,
            )
            obs.count(
                "repro_degradations_total",
                "Recorded degradation events by kind.",
                kind="replan",
            )
        config = dataclasses.replace(config, memory_pages=pool.total_pages)
        plan = None  # a cached plan assumed the larger budget
    if config.checkpoint_interval > 0 and recovery is None:
        recovery = RecoveryLog()

    allocation = JoinBufferAllocation(config.memory_pages)
    # The Section 5 trade-off: pages reserved for a resident tuple cache
    # come out of the outer-partition area (validated by the config).
    buff_size = config.buff_size
    rng = random.Random(config.seed)

    r_file = layout.place_relation(r)
    s_file = layout.place_relation(s)
    tracker = layout.tracker

    if config.execution == "forward-sweep":
        return _forward_sweep_eval(
            r, s, r_file, s_file, result_schema, config, layout, pair_fn,
            recovery=recovery, pool=pool, obs=obs,
        )

    try:
        # Degenerate case: a whole relation fits in the outer-partition
        # area, so a single partition suffices -- no sampling, no Grace
        # partitioning, one linear scan of each input.  (The trivial "plan"
        # is one interval covering the inputs' joint lifespan, known from
        # catalog metadata.)
        if min(r_file.n_pages, s_file.n_pages) <= buff_size:
            return _single_partition_join(
                r,
                s,
                r_file,
                s_file,
                result_schema,
                allocation,
                config,
                layout,
                pair_fn,
                recovery=recovery,
                pool=pool,
                obs=obs,
                interner=interner,
            )

        if plan is not None and plan.buff_size != buff_size:
            plan = None  # stale cached plan: planned for a different budget
        if plan is None:
            with _phase(tracker, obs, "sample"):
                plan = determine_part_intervals(
                    buff_size,
                    r_file,
                    inner_tuples=len(s),
                    cost_model=config.cost_model,
                    rng=rng,
                    allow_scan_sampling=config.allow_scan_sampling,
                    max_candidates=config.max_plan_candidates,
                    inner=s_file if config.sample_inner_relation else None,
                )
        elif obs is not None:
            obs.event("plan-reused", num_partitions=len(plan.intervals))
        layout.disk.park_heads()
        if recovery is not None:
            recovery.plan = plan
        if obs is not None and plan.chosen is not None:
            obs.event(
                "plan",
                num_partitions=len(plan.intervals),
                part_size=plan.part_size,
                n_samples=plan.chosen.n_samples,
                c_sample=plan.chosen.c_sample,
                c_join=plan.chosen.c_join,
            )

        partition_map = plan.partition_map()
        placement = "last" if config.sweep_direction == "backward" else "first"
        with _phase(tracker, obs, "partition"):
            r_parts = do_partitioning(
                r_file,
                partition_map,
                layout,
                "r",
                config.memory_pages,
                placement=placement,
                execution=config.execution,
                parallel_workers=config.parallel_workers,
                obs=obs,
            )
            layout.disk.park_heads()
            s_parts = do_partitioning(
                s_file,
                partition_map,
                layout,
                "s",
                config.memory_pages,
                placement=placement,
                execution=config.execution,
                parallel_workers=config.parallel_workers,
                obs=obs,
            )
        layout.disk.park_heads()

        checkpointer = None
        if config.checkpoint_interval > 0:
            checkpointer = SweepCheckpointer(layout, recovery, config.checkpoint_interval)

        multibuffer_plan = _multibuffer_for(
            config, r_file.n_pages, s_file.n_pages, buff_size, obs=obs
        )
        with _phase(tracker, obs, "join"):
            outcome = join_partitions(
                r_parts,
                s_parts,
                partition_map,
                buff_size,
                layout,
                result_schema,
                collect=config.collect_result,
                pair_fn=pair_fn,
                direction=config.sweep_direction,
                cache_memory_tuples=config.cache_buffer_pages * layout.spec.capacity,
                execution=config.execution,
                prefetch_depth=config.prefetch_depth,
                sweep_workers=config.sweep_workers,
                supervision=config.supervision_policy(),
                interner=interner,
                multibuffer_plan=multibuffer_plan,
                pool=pool,
                checkpointer=checkpointer,
                buffer_reductions=config.buffer_reductions,
                obs=obs,
            )

        return PartitionJoinResult(
            outcome=outcome, plan=plan, layout=layout, recovery=recovery,
            observability=obs,
        )
    except PermanentIOFaultError as failure:
        if not config.degraded_fallback:
            raise
        outcome = _degrade_to_nested_loop(
            r, s, buff_size, layout, result_schema, config, pair_fn, failure, obs=obs
        )
        plan = _trivial_plan(r, s, buff_size, config)
        return PartitionJoinResult(
            outcome=outcome, plan=plan, layout=layout, recovery=recovery,
            observability=obs,
        )


def _multibuffer_for(
    config: PartitionJoinConfig,
    outer_pages: int,
    inner_pages: int,
    buff_size: int,
    *,
    obs: Optional[Observability] = None,
):
    """The zero-copy sweep's auxiliary-buffer plan (None for other modes)."""
    if config.execution != "zero-copy-sweep":
        return None
    from repro.exec.sweep_parallel import effective_sweep_workers
    from repro.planner.multibuffer import plan_multibuffer

    plan = plan_multibuffer(
        outer_pages,
        inner_pages,
        buff_size,
        config.page_spec,
        lanes=effective_sweep_workers(config.sweep_workers),
        prefetch_depth=config.prefetch_depth,
    )
    if obs is not None:
        obs.event(
            "multibuffer-plan",
            lanes=plan.lanes,
            prefetch_depth=plan.prefetch_depth,
            prefetch_pages=plan.prefetch_pages,
            arena_pages=plan.arena_pages,
            slab_rows=plan.slab_rows,
            slab_pages=plan.slab_pages,
            total_aux_pages=plan.total_aux_pages,
        )
    return plan


def _forward_sweep_eval(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    r_file,
    s_file,
    result_schema,
    config: PartitionJoinConfig,
    layout: DiskLayout,
    pair_fn: PairFn,
    *,
    recovery: Optional[RecoveryLog] = None,
    pool: Optional[BufferPool] = None,
    obs: Optional[Observability] = None,
) -> PartitionJoinResult:
    """Dispatch to the forward-scan sweep operator.

    The sweep neither samples nor partitions, so its buffer appetite is the
    planner's small fixed grant (:data:`~repro.core.planner.FORWARD_SWEEP_GRANT_PAGES`)
    rather than the Figure 3 allocation; when a pool is present only that
    much is reserved.  A permanent page failure degrades to the nested-loop
    fallback exactly like the partition path -- but only for the natural
    join, because the fallback evaluates intersection semantics; any other
    predicate re-raises.
    """
    from repro.core.planner import FORWARD_SWEEP_GRANT_PAGES
    from repro.exec.forward_sweep import forward_sweep_join

    reservation = None
    if pool is not None:
        reservation = pool.reserve(
            "forward-sweep", min(pool.total_pages, FORWARD_SWEEP_GRANT_PAGES)
        )
    try:
        outcome = forward_sweep_join(
            r_file,
            s_file,
            result_schema,
            layout,
            predicate=config.predicate,
            pair_fn=pair_fn,
            collect=config.collect_result,
            obs=obs,
        )
        plan = _trivial_plan(r, s, config.buff_size, config)
        if recovery is not None:
            recovery.plan = plan
        return PartitionJoinResult(
            outcome=outcome, plan=plan, layout=layout, recovery=recovery,
            observability=obs,
        )
    except PermanentIOFaultError as failure:
        if not config.degraded_fallback or config.predicate != NATURAL_PREDICATE:
            raise
        outcome = _degrade_to_nested_loop(
            r, s, config.buff_size, layout, result_schema, config, pair_fn,
            failure, obs=obs,
        )
        plan = _trivial_plan(r, s, config.buff_size, config)
        return PartitionJoinResult(
            outcome=outcome, plan=plan, layout=layout, recovery=recovery,
            observability=obs,
        )
    finally:
        if reservation is not None:
            reservation.release()


def resume_join(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    config: PartitionJoinConfig,
    *,
    layout: DiskLayout,
    recovery: RecoveryLog,
    pair_fn: PairFn = natural_pair,
    pool: Optional[BufferPool] = None,
) -> PartitionJoinResult:
    """Restart an interrupted partition join from its last checkpoint.

    The caller supplies the *same* relations, configuration, layout, and
    recovery log of the interrupted :func:`partition_join` call.  The sweep
    replays from the last committed checkpoint: the result and cache-spill
    files are rewound to the checkpoint's watermarks and the remaining
    partitions are joined, producing results and a
    :class:`~repro.core.joiner.JoinOutcome` bit-identical to an
    uninterrupted run.  I/O performed before the crash stays on the
    layout's statistics; resumed work accumulates on top, within the same
    ``"join"`` phase.

    A crash *before* the first committed checkpoint (during sampling,
    partitioning, or the first sweep steps) leaves nothing to replay; the
    evaluation then simply restarts from the beginning on the same layout
    and recovery log -- still producing the bit-identical result.

    Raises:
        CheckpointError: checkpointing is disabled in *config* (there can
            never be anything to resume).
    """
    if config.checkpoint_interval < 1:
        raise CheckpointError(
            f"resume requires checkpoint_interval >= 1, got {config.checkpoint_interval}"
        )
    if not recovery.resumable:
        # The run died before its sweep committed a checkpoint: recover the
        # tracker and restart the whole evaluation.
        layout.tracker.recover()
        recovery.resumes += 1
        layout.resilience_report.resumes += 1
        return partition_join(
            r, s, config, layout=layout, pair_fn=pair_fn, recovery=recovery, pool=pool
        )
    if config.retry_limit is not None:
        layout.disk.retry_policy = RetryPolicy(
            max_retries=config.retry_limit,
            backoff_ops=layout.disk.retry_policy.backoff_ops,
        )
    # A crash can leave a phase open on the tracker (the context manager
    # closes it when the exception unwinds normally, but a recovery catalog
    # cannot assume a tidy unwind).
    layout.tracker.recover()
    recovery.resumes += 1
    layout.resilience_report.resumes += 1
    obs = _build_observability(config, layout)
    if obs is not None:
        obs.event("resume", position=recovery.checkpoint.position)
        obs.count(
            "repro_resumes_total", "Sweep resumes from a committed checkpoint."
        )

    context = recovery.context
    checkpointer = SweepCheckpointer(layout, recovery, config.checkpoint_interval)
    # A single-partition run may have swapped outer/inner (the smaller
    # relation becomes the resident side) and compensated inside its own
    # pair_fn wrapper.  The context's partitions are stored in that swapped
    # orientation, so the resumed sweep needs the same compensation or every
    # replayed pair comes out payload-reversed.
    effective_pair = pair_fn
    if getattr(context, "swapped", False):
        def effective_pair(x, y, common, _pair_fn=pair_fn):
            return _pair_fn(y, x, common)
    # Shared-memory segments died with the crashed process; rebuild the
    # multi-buffer plan from the checkpointed geometry so the resumed sweep
    # allocates fresh segments of exactly the original shape.
    resumed_plan = None
    if getattr(context, "arena", None) is not None:
        from repro.planner.multibuffer import MultiBufferPlan

        resumed_plan = MultiBufferPlan.from_descriptor(
            context.arena,
            prefetch_depth=context.prefetch_depth,
            buff_size=context.buff_size,
            spec=config.page_spec,
        )
    try:
        with _phase(layout.tracker, obs, "join"):
            outcome = join_partitions(
                context.r_parts,
                context.s_parts,
                context.partition_map,
                context.buff_size,
                layout,
                context.result_schema,
                collect=context.collect,
                pair_fn=effective_pair,
                direction=context.direction,
                cache_memory_tuples=context.cache_memory_tuples,
                execution=context.execution,
                prefetch_depth=context.prefetch_depth,
                sweep_workers=context.sweep_workers,
                supervision=config.supervision_policy(),
                multibuffer_plan=resumed_plan,
                pool=pool,
                checkpointer=checkpointer,
                resume_from=recovery.checkpoint,
                buffer_reductions=config.buffer_reductions,
                obs=obs,
            )
        plan = recovery.plan
        if plan is None:  # a single-partition run interrupted before plan commit
            plan = _trivial_plan(r, s, context.buff_size, config)
        return PartitionJoinResult(
            outcome=outcome, plan=plan, layout=layout, recovery=recovery,
            observability=obs,
        )
    except PermanentIOFaultError as failure:
        if not config.degraded_fallback:
            raise
        outcome = _degrade_to_nested_loop(
            r, s, context.buff_size, layout, context.result_schema, config,
            pair_fn, failure, obs=obs,
        )
        plan = recovery.plan
        if plan is None:
            plan = _trivial_plan(r, s, context.buff_size, config)
        return PartitionJoinResult(
            outcome=outcome, plan=plan, layout=layout, recovery=recovery,
            observability=obs,
        )


def plan_partition_join(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    config: PartitionJoinConfig,
) -> Tuple[PartitionPlan, bool, int, int]:
    """Plan the partition join without executing it (the EXPLAIN entry point).

    Runs exactly the planning path :func:`partition_join` would -- the same
    single-partition shortcut test, the same seeded RNG, the same
    ``determinePartIntervals`` call -- on a scratch layout, so the returned
    plan is the plan the execution would choose.  The sampling I/O the
    planner charges lands on the scratch layout and is discarded; EXPLAIN
    predicts cost, it does not bill the catalog.

    Returns ``(plan, single_partition, outer_pages, inner_pages)``.
    """
    layout = DiskLayout(spec=config.page_spec)
    r_file = layout.place_relation(r)
    s_file = layout.place_relation(s)
    buff_size = config.buff_size
    if min(r_file.n_pages, s_file.n_pages) <= buff_size:
        allocation = JoinBufferAllocation(config.memory_pages)
        plan = _single_partition_plan(r, s, r_file, s_file, allocation, config)
        return plan, True, r_file.n_pages, s_file.n_pages
    rng = random.Random(config.seed)
    plan = determine_part_intervals(
        buff_size,
        r_file,
        inner_tuples=len(s),
        cost_model=config.cost_model,
        rng=rng,
        allow_scan_sampling=config.allow_scan_sampling,
        max_candidates=config.max_plan_candidates,
        inner=s_file if config.sample_inner_relation else None,
    )
    return plan, False, r_file.n_pages, s_file.n_pages


def _single_partition_plan(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    r_file,
    s_file,
    allocation: JoinBufferAllocation,
    config: PartitionJoinConfig,
) -> PartitionPlan:
    """The inline plan of the single-partition shortcut (see
    :func:`_single_partition_join`, which must build the identical plan)."""
    from repro.core.intervals import PartitionMap
    from repro.core.planner import CandidateCost
    from repro.time.interval import Interval
    from repro.time.lifespan import lifespan_of

    swap = not (r_file.n_pages <= allocation.buff_size)
    outer_file, inner_file = (s_file, r_file) if swap else (r_file, s_file)
    lifespan = lifespan_of(
        [tup.valid for tup in r.tuples] + [tup.valid for tup in s.tuples]
    )
    interval = lifespan if lifespan is not None else Interval(0, 0)
    partition_map = PartitionMap([Interval(interval.start, interval.end)])
    return PartitionPlan(
        intervals=list(partition_map.intervals),
        part_size=max(1, outer_file.n_pages),
        buff_size=allocation.buff_size,
        chosen=CandidateCost(
            part_size=outer_file.n_pages,
            error_size=allocation.buff_size - outer_file.n_pages,
            n_samples=0,
            num_partitions=1,
            c_sample=0.0,
            c_join_scan=float(
                2 * config.cost_model.io_ran
                + max(0, outer_file.n_pages + inner_file.n_pages - 2)
                * config.cost_model.io_seq
            ),
            c_join_cache=0.0,
        ),
    )


def _degrade_to_nested_loop(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    buff_size: int,
    layout: DiskLayout,
    result_schema,
    config: PartitionJoinConfig,
    pair_fn: PairFn,
    failure: PermanentIOFaultError,
    obs: Optional[Observability] = None,
) -> JoinOutcome:
    """The permanent-failure fallback: block nested loop over fresh bases.

    A permanently unreadable page means some file of the planned evaluation
    cannot be trusted; re-placing the base relations and nested-looping over
    them sidesteps every temporary file.  The fallback emits the same result
    *set* as the sweep in a different order -- callers comparing materialized
    results sort first (the sweep's emission order is a partition-ownership
    artifact, not part of the join's contract).
    """
    layout.tracker.recover()
    layout.resilience_report.record_degradation(
        "nested-loop-fallback",
        f"permanent page failure ({failure}); re-evaluating as a block "
        f"nested-loop join",
    )
    if obs is not None:
        obs.event("degradation", kind="nested-loop-fallback", failure=str(failure))
        obs.count(
            "repro_degradations_total",
            "Recorded degradation events by kind.",
            kind="nested-loop-fallback",
        )
        # fallback_nested_loop_join opens its own "degraded-join" tracker
        # phase; mirror the label for the metrics attribution.
        with obs.phase("degraded-join"):
            return fallback_nested_loop_join(
                r,
                s,
                buff_size,
                layout,
                result_schema,
                collect=config.collect_result,
                pair_fn=pair_fn,
            )
    return fallback_nested_loop_join(
        r,
        s,
        buff_size,
        layout,
        result_schema,
        collect=config.collect_result,
        pair_fn=pair_fn,
    )


def _trivial_plan(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    buff_size: int,
    config: PartitionJoinConfig,
) -> PartitionPlan:
    """A one-interval plan standing in when no real plan was executed."""
    from repro.core.intervals import PartitionMap
    from repro.time.interval import Interval
    from repro.time.lifespan import lifespan_of

    lifespan = lifespan_of(
        [tup.valid for tup in r.tuples] + [tup.valid for tup in s.tuples]
    )
    interval = lifespan if lifespan is not None else Interval(0, 0)
    return PartitionPlan(
        intervals=[Interval(interval.start, interval.end)],
        part_size=max(1, buff_size),
        buff_size=max(1, buff_size),
        chosen=None,
    )


def _single_partition_join(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    r_file,
    s_file,
    result_schema,
    allocation: JoinBufferAllocation,
    config: PartitionJoinConfig,
    layout: DiskLayout,
    pair_fn: PairFn,
    *,
    recovery: Optional[RecoveryLog] = None,
    pool: Optional[BufferPool] = None,
    obs: Optional[Observability] = None,
    interner=None,
) -> PartitionJoinResult:
    """One-partition evaluation when a relation fits in the buffer.

    The smaller relation becomes the single in-memory "partition"; the other
    streams through the inner page.  Sampling and partitioning cost nothing,
    matching what any real system does when the memory budget swallows an
    input.
    """
    from repro.core.intervals import PartitionMap

    swap = not (r_file.n_pages <= allocation.buff_size)
    outer_file, inner_file = (s_file, r_file) if swap else (r_file, s_file)

    def oriented_pair(x, y, common):
        return pair_fn(y, x, common) if swap else pair_fn(x, y, common)

    plan = _single_partition_plan(r, s, r_file, s_file, allocation, config)
    partition_map = PartitionMap(list(plan.intervals))

    checkpointer = None
    if config.checkpoint_interval > 0 and recovery is not None:
        checkpointer = SweepCheckpointer(layout, recovery, config.checkpoint_interval)

    multibuffer_plan = _multibuffer_for(
        config, outer_file.n_pages, inner_file.n_pages, allocation.buff_size, obs=obs
    )
    with _phase(layout.tracker, obs, "join"):
        outcome = join_partitions(
            [outer_file],
            [inner_file],
            partition_map,
            allocation.buff_size,
            layout,
            result_schema,
            collect=config.collect_result,
            pair_fn=oriented_pair,
            execution=config.execution,
            prefetch_depth=config.prefetch_depth,
            sweep_workers=config.sweep_workers,
            supervision=config.supervision_policy(),
            interner=interner,
            multibuffer_plan=multibuffer_plan,
            pool=pool,
            checkpointer=checkpointer,
            buffer_reductions=config.buffer_reductions,
            swapped_inputs=swap,
            obs=obs,
        )
    if recovery is not None:
        recovery.plan = plan
    return PartitionJoinResult(
        outcome=outcome, plan=plan, layout=layout, recovery=recovery,
        observability=obs,
    )
