"""``partitionJoin`` (Figure 2): the top-level valid-time partition join.

Wires the three phases together over a fresh disk layout:

1. ``determinePartIntervals`` -- sample the outer relation and choose the
   cost-minimizing partitioning (phase ``"sample"``).
2. ``doPartitioning`` -- Grace-partition both inputs (phase ``"partition"``).
3. ``joinPartitions`` -- the backward sweep (phase ``"join"``).

Device heads are parked between phases so sequentiality cannot leak across
phase boundaries, and per-phase I/O is recorded on the layout's
:class:`~repro.storage.iostats.PhaseTracker`, giving exactly the paper's
``C_total = C_sample + C_partition + C_join`` decomposition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.core.joiner import JoinOutcome, PairFn, join_partitions, natural_pair
from repro.core.partitioner import do_partitioning
from repro.core.planner import PartitionPlan, determine_part_intervals
from repro.model.errors import PlanError
from repro.model.relation import ValidTimeRelation
from repro.storage.buffer import JoinBufferAllocation
from repro.storage.iostats import CostModel
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec


@dataclass
class PartitionJoinConfig:
    """Knobs of the partition-join evaluation.

    Attributes:
        memory_pages: total main-memory buffer pages (the Figure 3 budget:
            ``buffSize`` plus the three fixed single-page areas).
        cost_model: random/sequential I/O weights.
        page_spec: page geometry.
        seed: RNG seed for sampling (fixed for reproducible experiments).
        allow_scan_sampling: Section 4.2 sampling optimization switch.
        max_plan_candidates: planner candidate-grid size.
        collect_result: materialize the result relation in memory.
        sweep_direction: ``"backward"`` (the paper: last-partition storage,
            sweep n..1) or ``"forward"`` (footnote 1's equivalent strategy:
            first-partition storage, sweep 1..n).
        cache_buffer_pages: pages of the buffer re-purposed to keep the
            tuple cache resident -- the Section 5 future-work trade-off
            ("trading off outer relation partition space for tuple cache
            space").  Taken out of the outer-partition area; 0 reproduces
            the paper's Figure 3 allocation.
        sample_inner_relation: base the planner's tuple-cache estimate on a
            small charged sample of the inner relation instead of assuming
            the outer's temporal distribution transfers (the Section 5
            mis-estimation caveat).
        execution: how the per-tuple compute runs.  ``"tuple"`` is the
            tuple-at-a-time oracle; ``"batch"`` routes partitioning and the
            sweep through the batch kernels of :mod:`repro.exec`;
            ``"batch-parallel"`` additionally fans the Grace-partitioning
            placement out to a process pool.  All three produce identical
            results and identical per-phase I/O statistics; see
            ``docs/EXECUTION.md``.
        parallel_workers: process-pool size for ``"batch-parallel"``
            (None picks a machine-dependent default; the result never
            depends on the pool size).
    """

    memory_pages: int
    cost_model: CostModel = field(default_factory=CostModel)
    page_spec: PageSpec = field(default_factory=PageSpec)
    seed: int = 0x1CDE1994
    allow_scan_sampling: bool = True
    max_plan_candidates: int = 64
    collect_result: bool = True
    sweep_direction: str = "backward"
    cache_buffer_pages: int = 0
    sample_inner_relation: bool = False
    execution: str = "tuple"
    parallel_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cache_buffer_pages < 0:
            raise ValueError("cache_buffer_pages must be non-negative")
        if self.execution not in ("tuple", "batch", "batch-parallel"):
            raise ValueError(
                f"execution must be 'tuple', 'batch', or 'batch-parallel', "
                f"got {self.execution!r}"
            )
        if self.parallel_workers is not None and self.parallel_workers < 1:
            raise ValueError(
                f"parallel_workers must be >= 1 (or None for the default), "
                f"got {self.parallel_workers}"
            )


@dataclass
class PartitionJoinResult:
    """Everything a partition-join run produced.

    Attributes:
        outcome: result relation and sweep observations.
        plan: the partitioning plan that was executed.
        layout: the disk layout, carrying the phase-tracked I/O statistics.
    """

    outcome: JoinOutcome
    plan: PartitionPlan
    layout: DiskLayout

    @property
    def result(self) -> Optional[ValidTimeRelation]:
        return self.outcome.result

    def total_cost(self, cost_model: CostModel) -> float:
        """Weighted evaluation cost (result writes excluded, as in the paper)."""
        return self.layout.tracker.stats.cost(cost_model)


def partition_join(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    config: PartitionJoinConfig,
    *,
    layout: Optional[DiskLayout] = None,
    pair_fn: PairFn = natural_pair,
) -> PartitionJoinResult:
    """Evaluate the valid-time natural join ``r JOIN_V s`` by partitioning.

    Args:
        r: outer relation (the one sampled; the paper samples the outer).
        s: inner relation.
        config: evaluation knobs.
        layout: pass a pre-built layout to accumulate statistics across
            operations; a fresh one is created otherwise.

    Raises:
        SchemaError: if the schemas are not join-compatible.
        PlanError: if memory is too small for the Figure 3 allocation.
    """
    result_schema = r.schema.join_result_schema(s.schema)
    if layout is None:
        layout = DiskLayout(spec=config.page_spec)
    allocation = JoinBufferAllocation(config.memory_pages)
    # The Section 5 trade-off: pages reserved for a resident tuple cache
    # come out of the outer-partition area.
    buff_size = allocation.buff_size - config.cache_buffer_pages
    if buff_size < 1:
        raise PlanError(
            f"cache reservation of {config.cache_buffer_pages} pages leaves no "
            f"outer-partition space in a {config.memory_pages}-page buffer"
        )
    rng = random.Random(config.seed)

    r_file = layout.place_relation(r)
    s_file = layout.place_relation(s)
    tracker = layout.tracker

    # Degenerate case: a whole relation fits in the outer-partition area, so
    # a single partition suffices -- no sampling, no Grace partitioning, one
    # linear scan of each input.  (The trivial "plan" is one interval
    # covering the inputs' joint lifespan, known from catalog metadata.)
    if min(r_file.n_pages, s_file.n_pages) <= buff_size:
        return _single_partition_join(
            r, s, r_file, s_file, result_schema, allocation, config, layout, pair_fn
        )

    with tracker.phase("sample"):
        plan = determine_part_intervals(
            buff_size,
            r_file,
            inner_tuples=len(s),
            cost_model=config.cost_model,
            rng=rng,
            allow_scan_sampling=config.allow_scan_sampling,
            max_candidates=config.max_plan_candidates,
            inner=s_file if config.sample_inner_relation else None,
        )
    layout.disk.park_heads()

    partition_map = plan.partition_map()
    placement = "last" if config.sweep_direction == "backward" else "first"
    with tracker.phase("partition"):
        r_parts = do_partitioning(
            r_file,
            partition_map,
            layout,
            "r",
            config.memory_pages,
            placement=placement,
            execution=config.execution,
            parallel_workers=config.parallel_workers,
        )
        layout.disk.park_heads()
        s_parts = do_partitioning(
            s_file,
            partition_map,
            layout,
            "s",
            config.memory_pages,
            placement=placement,
            execution=config.execution,
            parallel_workers=config.parallel_workers,
        )
    layout.disk.park_heads()

    with tracker.phase("join"):
        outcome = join_partitions(
            r_parts,
            s_parts,
            partition_map,
            buff_size,
            layout,
            result_schema,
            collect=config.collect_result,
            pair_fn=pair_fn,
            direction=config.sweep_direction,
            cache_memory_tuples=config.cache_buffer_pages * layout.spec.capacity,
            execution=config.execution,
        )

    return PartitionJoinResult(outcome=outcome, plan=plan, layout=layout)


def _single_partition_join(
    r: ValidTimeRelation,
    s: ValidTimeRelation,
    r_file,
    s_file,
    result_schema,
    allocation: JoinBufferAllocation,
    config: PartitionJoinConfig,
    layout: DiskLayout,
    pair_fn: PairFn,
) -> PartitionJoinResult:
    """One-partition evaluation when a relation fits in the buffer.

    The smaller relation becomes the single in-memory "partition"; the other
    streams through the inner page.  Sampling and partitioning cost nothing,
    matching what any real system does when the memory budget swallows an
    input.
    """
    from repro.core.intervals import PartitionMap
    from repro.core.planner import CandidateCost, PartitionPlan
    from repro.time.interval import Interval
    from repro.time.lifespan import lifespan_of

    swap = not (r_file.n_pages <= allocation.buff_size)
    outer_file, inner_file = (s_file, r_file) if swap else (r_file, s_file)

    def oriented_pair(x, y, common):
        return pair_fn(y, x, common) if swap else pair_fn(x, y, common)

    lifespan = lifespan_of(
        [tup.valid for tup in r.tuples] + [tup.valid for tup in s.tuples]
    )
    interval = lifespan if lifespan is not None else Interval(0, 0)
    partition_map = PartitionMap([Interval(interval.start, interval.end)])

    with layout.tracker.phase("join"):
        outcome = join_partitions(
            [outer_file],
            [inner_file],
            partition_map,
            allocation.buff_size,
            layout,
            result_schema,
            collect=config.collect_result,
            pair_fn=oriented_pair,
            execution=config.execution,
        )
    plan = PartitionPlan(
        intervals=list(partition_map.intervals),
        part_size=outer_file.n_pages,
        buff_size=allocation.buff_size,
        chosen=CandidateCost(
            part_size=outer_file.n_pages,
            error_size=allocation.buff_size - outer_file.n_pages,
            n_samples=0,
            num_partitions=1,
            c_sample=0.0,
            # The sequential term counts pages beyond each relation's first;
            # clamp it so an empty input cannot drive the estimate negative.
            c_join_scan=float(
                2 * config.cost_model.io_ran
                + max(0, outer_file.n_pages + inner_file.n_pages - 2)
                * config.cost_model.io_seq
            ),
            c_join_cache=0.0,
        ),
    )
    return PartitionJoinResult(outcome=outcome, plan=plan, layout=layout)
