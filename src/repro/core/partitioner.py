"""``doPartitioning`` (Section 3.2): Grace partitioning by valid time.

The input relation is scanned linearly; each tuple is placed in the page
buffer of the *last* partition its interval overlaps (Section 3.3's storage
rule) and buffers are flushed to the partition's extent as they fill.

Buffering follows the paper: "We reserve a single buffer page to hold a
page of the input relation, and divide the remaining buffer space evenly
among the partitions."  A per-bucket buffer of ``b`` pages flushes as one
run of ``b`` pages -- one random access plus ``b - 1`` sequential -- so
small memories flush small runs often and pay more random I/O, which is
exactly the partitioning-phase effect Section 4.2 reports.

**Execution modes.**  Tuple placement -- ``index_of_chronon`` of the
storage chronon -- is the CPU-bound part of this phase and runs in three
ways: per tuple (``"tuple"``, the oracle), per page through the batch
``locate`` kernel (``"batch"``), or fanned out to a process pool
(``"batch-parallel"``, :mod:`repro.exec.parallel`).  In every mode the
charged I/O -- the input scan and the bucket flush sequence -- is issued by
this function in the identical serial order, so partition contents and
:class:`~repro.storage.iostats.PhaseTracker` counters are bit-identical
across modes (the parallel path ships only ``(start, end)`` pairs to
workers and replays placement results in input order).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.core.intervals import PartitionMap
from repro.model.errors import PlanError
from repro.obs import span_or_null
from repro.storage.heapfile import HeapFile
from repro.storage.layout import DiskLayout

if TYPE_CHECKING:
    from repro.obs import Observability


def do_partitioning(
    source: HeapFile,
    partition_map: PartitionMap,
    layout: DiskLayout,
    name: str,
    memory_pages: int,
    *,
    placement: str = "last",
    execution: str = "tuple",
    parallel_workers: Optional[int] = None,
    obs: Optional["Observability"] = None,
) -> List[HeapFile]:
    """Partition *source* into one heap file per partitioning interval.

    Args:
        source: the relation to partition (scanned once, charged).
        partition_map: the partitioning intervals from the planner.
        layout: disk layout; partitions are created on the TEMP device.
        name: prefix for the partition extents (e.g. ``"r"``).
        memory_pages: total buffer pages available to the partitioning step;
            one is reserved for the input page, the rest split evenly across
            the partition buckets (minimum one page each -- the paper
            "assume[s] that the number of partitions is small" enough for
            this to hold, and the planner's ``partSize >= 1`` guarantees it
            can be satisfied at ``numPartitions <= buffSize``).
        placement: ``"last"`` stores each tuple in the last partition it
            overlaps (the paper's choice, paired with the backward sweep);
            ``"first"`` in the first (footnote 1's equivalent strategy,
            paired with the forward sweep).
        execution: ``"tuple"`` locates per tuple, ``"batch"`` per page via
            the locate kernel, ``"batch-parallel"`` via a process pool.
            ``"batch-parallel-sweep"`` differs from ``"batch-parallel"``
            only in the join phase, so it partitions identically to it.
        parallel_workers: pool size for ``"batch-parallel"`` (None = the
            :func:`repro.exec.parallel.default_workers` heuristic).

    Returns:
        One heap file per partition, index-aligned with *partition_map*.
    """
    if placement not in ("last", "first"):
        raise PlanError(f"placement must be 'last' or 'first', got {placement!r}")
    if execution not in ("tuple", "batch", "batch-parallel", "batch-parallel-sweep"):
        raise PlanError(
            f"execution must be 'tuple', 'batch', 'batch-parallel', or "
            f"'batch-parallel-sweep', got {execution!r}"
        )
    if execution == "batch-parallel-sweep":
        # The pipelined sweep changes the join phase only; its partitioning
        # is the pooled placement of batch-parallel.
        execution = "batch-parallel"
    n_partitions = len(partition_map)
    if memory_pages < 2:
        raise PlanError(f"partitioning needs >= 2 buffer pages, got {memory_pages}")
    bucket_buffer_pages = max(1, (memory_pages - 1) // n_partitions)

    with span_or_null(
        obs,
        "grace-partition",
        relation=name,
        partitions=n_partitions,
        execution=execution,
        placement=placement,
    ) as span:
        spec = source.spec
        # Size each partition extent for the worst case (the whole relation)
        # so overflow of the planner's estimate never fragments the extent.
        partitions = [
            layout.temp_file(f"{name}_part{i}", capacity_tuples=max(1, source.n_tuples))
            for i in range(n_partitions)
        ]
        buffers: List[List] = [[] for _ in range(n_partitions)]
        flush_threshold = bucket_buffer_pages * spec.capacity

        def route(tup, index: int) -> None:
            bucket = buffers[index]
            bucket.append(tup)
            if len(bucket) >= flush_threshold:
                _flush(partitions[index], bucket)
                buffers[index] = []

        if execution == "tuple":
            locate = (
                partition_map.last_overlapping
                if placement == "last"
                else partition_map.first_overlapping
            )
            for page in source.scan_pages():
                for tup in page:
                    route(tup, locate(tup.valid))
        elif execution == "batch":
            from repro.exec.kernels import get_kernels

            kernels = get_kernels()
            boundaries = kernels.prepare_boundaries(partition_map)
            for page in source.scan_pages():
                batch = kernels.page_batch(page)
                chronons = batch.ends if placement == "last" else batch.starts
                for tup, index in zip(page, kernels.locate(chronons, boundaries)):
                    route(tup, index)
        else:  # batch-parallel
            from repro.exec.parallel import locate_partitions_parallel

            # The charged scan happens up front in the parent; workers
            # receive only the (start, end) chronon pairs.  Replaying the
            # routed flush loop afterwards issues the same TEMP-device
            # access sequence as the serial path (BASE and TEMP have
            # independent heads, so splitting the scan from the flushing
            # changes no access's sequentiality).
            tuples = []
            spans = []
            for page in source.scan_pages():
                for tup in page:
                    tuples.append(tup)
                    spans.append((tup.valid.start, tup.valid.end))
            with span_or_null(
                obs, "parallel-locate", lane="pool", tuples=len(tuples)
            ) as locate_span:
                located = locate_partitions_parallel(
                    spans,
                    [interval.end for interval in partition_map.intervals],
                    placement,
                    workers=parallel_workers,
                )
                locate_span.set(located=len(located))
            for tup, index in zip(tuples, located):
                route(tup, index)

        for index, bucket in enumerate(buffers):
            if bucket:
                _flush(partitions[index], bucket)
        span.set(
            tuples=source.n_tuples,
            bucket_buffer_pages=bucket_buffer_pages,
        )
        return partitions


def _flush(partition: HeapFile, bucket: List) -> None:
    """Write a bucket's tuples as one contiguous run of pages."""
    partition.append_many(bucket)
    partition.flush()
