"""``doPartitioning`` (Section 3.2): Grace partitioning by valid time.

The input relation is scanned linearly; each tuple is placed in the page
buffer of the *last* partition its interval overlaps (Section 3.3's storage
rule) and buffers are flushed to the partition's extent as they fill.

Buffering follows the paper: "We reserve a single buffer page to hold a
page of the input relation, and divide the remaining buffer space evenly
among the partitions."  A per-bucket buffer of ``b`` pages flushes as one
run of ``b`` pages -- one random access plus ``b - 1`` sequential -- so
small memories flush small runs often and pay more random I/O, which is
exactly the partitioning-phase effect Section 4.2 reports.

**Execution modes.**  Tuple placement -- ``index_of_chronon`` of the
storage chronon -- is the CPU-bound part of this phase and runs in three
ways: per tuple (``"tuple"``, the oracle), per page through the batch
``locate`` kernel (``"batch"``), or fanned out to a process pool
(``"batch-parallel"``, :mod:`repro.exec.parallel`).  In every mode the
charged I/O -- the input scan and the bucket flush sequence -- is issued by
this function in the identical serial order, so partition contents and
:class:`~repro.storage.iostats.PhaseTracker` counters are bit-identical
across modes (the parallel path ships only ``(start, end)`` pairs to
workers and replays placement results in input order).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.core.intervals import PartitionMap
from repro.model.errors import PlanError
from repro.obs import span_or_null
from repro.storage.heapfile import HeapFile
from repro.storage.layout import DiskLayout

if TYPE_CHECKING:
    from repro.obs import Observability


def do_partitioning(
    source: HeapFile,
    partition_map: PartitionMap,
    layout: DiskLayout,
    name: str,
    memory_pages: int,
    *,
    placement: str = "last",
    execution: str = "tuple",
    parallel_workers: Optional[int] = None,
    obs: Optional["Observability"] = None,
) -> List[HeapFile]:
    """Partition *source* into one heap file per partitioning interval.

    Args:
        source: the relation to partition (scanned once, charged).
        partition_map: the partitioning intervals from the planner.
        layout: disk layout; partitions are created on the TEMP device.
        name: prefix for the partition extents (e.g. ``"r"``).
        memory_pages: total buffer pages available to the partitioning step;
            one is reserved for the input page, the rest split evenly across
            the partition buckets (minimum one page each -- the paper
            "assume[s] that the number of partitions is small" enough for
            this to hold, and the planner's ``partSize >= 1`` guarantees it
            can be satisfied at ``numPartitions <= buffSize``).
        placement: ``"last"`` stores each tuple in the last partition it
            overlaps (the paper's choice, paired with the backward sweep);
            ``"first"`` in the first (footnote 1's equivalent strategy,
            paired with the forward sweep).
        execution: ``"tuple"`` locates per tuple, ``"batch"`` per page via
            the locate kernel, ``"batch-parallel"`` via a process pool.
            ``"batch-parallel-sweep"`` differs from ``"batch-parallel"``
            only in the join phase, so it partitions identically to it.
            ``"zero-copy-sweep"`` runs the same pooled placement but ships
            the chronon column through a shared-memory segment instead of
            pickled chunks (identical indices either way).
        parallel_workers: pool size for ``"batch-parallel"`` (None = the
            :func:`repro.exec.parallel.default_workers` heuristic).

    Returns:
        One heap file per partition, index-aligned with *partition_map*.
    """
    if placement not in ("last", "first"):
        raise PlanError(f"placement must be 'last' or 'first', got {placement!r}")
    if execution not in (
        "tuple",
        "batch",
        "batch-parallel",
        "batch-parallel-sweep",
        "zero-copy-sweep",
    ):
        raise PlanError(
            f"execution must be 'tuple', 'batch', 'batch-parallel', "
            f"'batch-parallel-sweep', or 'zero-copy-sweep', got {execution!r}"
        )
    transport = "shared" if execution == "zero-copy-sweep" else "pickle"
    if execution in ("batch-parallel-sweep", "zero-copy-sweep"):
        # The pipelined sweeps change the join phase only; their partitioning
        # is the pooled placement of batch-parallel (zero-copy additionally
        # scatters the chronon column through shared memory).
        execution = "batch-parallel"
    n_partitions = len(partition_map)
    if memory_pages < 2:
        raise PlanError(f"partitioning needs >= 2 buffer pages, got {memory_pages}")
    bucket_buffer_pages = max(1, (memory_pages - 1) // n_partitions)

    with span_or_null(
        obs,
        "grace-partition",
        relation=name,
        partitions=n_partitions,
        execution=execution,
        placement=placement,
    ) as span:
        spec = source.spec
        # Size each partition extent for the worst case (the whole relation)
        # so overflow of the planner's estimate never fragments the extent.
        partitions = [
            layout.temp_file(f"{name}_part{i}", capacity_tuples=max(1, source.n_tuples))
            for i in range(n_partitions)
        ]
        buffers: List[List] = [[] for _ in range(n_partitions)]
        flush_threshold = bucket_buffer_pages * spec.capacity

        def route(tup, index: int) -> None:
            bucket = buffers[index]
            bucket.append(tup)
            if len(bucket) >= flush_threshold:
                _flush(partitions[index], bucket)
                buffers[index] = []

        if execution == "tuple":
            locate = (
                partition_map.last_overlapping
                if placement == "last"
                else partition_map.first_overlapping
            )
            for page in source.scan_pages():
                for tup in page:
                    route(tup, locate(tup.valid))
        elif execution == "batch":
            from repro.exec.kernels import get_kernels

            kernels = get_kernels()
            boundaries = kernels.prepare_boundaries(partition_map)
            for page in source.scan_pages():
                batch = kernels.page_batch(page)
                chronons = batch.ends if placement == "last" else batch.starts
                for tup, index in zip(page, kernels.locate(chronons, boundaries)):
                    route(tup, index)
        else:  # batch-parallel
            from repro.exec.parallel import locate_partitions_parallel

            # The charged scan happens up front in the parent; workers
            # receive only the (start, end) chronon pairs.  Replaying the
            # routed flush loop afterwards issues the same TEMP-device
            # access sequence as the serial path (BASE and TEMP have
            # independent heads, so splitting the scan from the flushing
            # changes no access's sequentiality).
            columnar = source.columnar and source.dictionary is not None
            if columnar:
                # Columnar fast path: spans come straight off the packed
                # column buffers and routing moves (start, end, code,
                # payload) column entries -- no tuple is ever materialized.
                pages = []
                spans = []
                for page in source.scan_pages():
                    pages.append(page)
                    spans.extend(zip(page.starts_list(), page.ends_list()))
            else:
                tuples = []
                spans = []
                for page in source.scan_pages():
                    for tup in page:
                        tuples.append(tup)
                        spans.append((tup.valid.start, tup.valid.end))
            with span_or_null(
                obs, "parallel-locate", lane="pool", tuples=len(spans)
            ) as locate_span:
                located = locate_partitions_parallel(
                    spans,
                    [interval.end for interval in partition_map.intervals],
                    placement,
                    workers=parallel_workers,
                    transport=transport,
                    report=layout.resilience_report,
                    obs=obs,
                )
                locate_span.set(located=len(located))
            if columnar:
                _route_columns(
                    pages, located, partitions, source.dictionary, flush_threshold
                )
            else:
                for tup, index in zip(tuples, located):
                    route(tup, index)

        for index, bucket in enumerate(buffers):
            if bucket:
                _flush(partitions[index], bucket)
        span.set(
            tuples=source.n_tuples,
            bucket_buffer_pages=bucket_buffer_pages,
        )
        return partitions


def _flush(partition: HeapFile, bucket: List) -> None:
    """Write a bucket's tuples as one contiguous run of pages."""
    partition.append_many(bucket)
    partition.flush()


def _route_columns(
    pages, located, partitions: List[HeapFile], dictionary, flush_threshold: int
) -> None:
    """Replay the routed flush loop over columnar pages, zero-copy.

    Rows move as column entries -- gathers from the packed page buffers
    into per-bucket column runs -- and flush through
    :meth:`HeapFile.append_coded_run`.  The partitions *share the source
    file's dictionary*, so key codes pass through untranslated: no
    ``dictionary.code`` lookup, no tuple re-decomposition on the write
    side.  Rows are processed in exactly the input order and buckets flush
    at exactly the thresholds of the tuple-routing path, so the charged
    TEMP-device access sequence is bit-identical.
    """
    for partition in partitions:
        partition.dictionary = dictionary
    from repro.exec.backend import HAVE_NUMPY

    if HAVE_NUMPY:
        _route_columns_numpy(pages, located, partitions, flush_threshold)
        return
    buffers = [([], [], [], []) for _ in partitions]
    position = 0
    for page in pages:
        n = len(page)
        page_located = located[position : position + n]
        position += n
        for start, end, code, payload, index in zip(
            page.starts_list(),
            page.ends_list(),
            page.codes_list(),
            page.payloads,
            page_located,
        ):
            bucket = buffers[index]
            bucket[0].append(start)
            bucket[1].append(end)
            bucket[2].append(code)
            bucket[3].append(payload)
            if len(bucket[0]) >= flush_threshold:
                partitions[index].append_coded_run(*bucket)
                buffers[index] = ([], [], [], [])
    for index, bucket in enumerate(buffers):
        if bucket[0]:
            partitions[index].append_coded_run(*bucket)


def _route_columns_numpy(
    pages, located, partitions: List[HeapFile], flush_threshold: int
) -> None:
    """Vectorized bucket routing: group each page's rows by partition index.

    A bucket holds its pending rows as ``(page, row-index array)`` segments
    instead of appending row by row; a flush gathers the column runs from
    the segments at once.  Flush *order* is what the serial loop defines, so
    it is replayed exactly: within one page a bucket can cross the flush
    threshold at most once (a page holds at most ``spec.capacity`` rows and
    ``flush_threshold >= spec.capacity`` since every bucket has at least one
    buffer page), so the crossings are totally ordered by the input-row
    position at which each bucket fills -- flushing in that order issues the
    identical TEMP-device access sequence.
    """
    from repro.exec.backend import np

    segments: List[List] = [[] for _ in partitions]
    sizes = [0] * len(partitions)

    def flush(bucket: int) -> None:
        starts: List[int] = []
        ends: List[int] = []
        codes: List[int] = []
        payloads: List = []
        for seg_page, rows in segments[bucket]:
            if rows is None:
                starts += seg_page.starts_list()
                ends += seg_page.ends_list()
                codes += seg_page.codes_list()
                payloads += seg_page.payloads
            else:
                starts += seg_page.starts_view()[rows].tolist()
                ends += seg_page.ends_view()[rows].tolist()
                codes += seg_page.codes_view()[rows].tolist()
                page_payloads = seg_page.payloads
                payloads += [page_payloads[i] for i in rows.tolist()]
        partitions[bucket].append_coded_run(starts, ends, codes, payloads)
        segments[bucket] = []
        sizes[bucket] = 0

    position = 0
    for page in pages:
        n = len(page)
        loc = np.asarray(located[position : position + n], dtype=np.int64)
        position += n
        # Stable argsort groups the rows by bucket while keeping each
        # group's indices in input order.
        order = np.argsort(loc, kind="stable")
        grouped = loc[order]
        buckets, first = np.unique(grouped, return_index=True)
        boundaries = first.tolist() + [n]
        crossings = []
        for k, bucket in enumerate(buckets.tolist()):
            rows = order[boundaries[k] : boundaries[k + 1]]
            need = flush_threshold - sizes[bucket]
            if len(rows) >= need:
                # This bucket fills at input row rows[need - 1].
                crossings.append((int(rows[need - 1]), bucket, rows, need))
            else:
                # A whole-page group needs no gather at flush time.
                segments[bucket].append((page, rows if len(rows) < n else None))
                sizes[bucket] += len(rows)
        crossings.sort()
        for _row, bucket, rows, need in crossings:
            segments[bucket].append((page, rows[:need]))
            flush(bucket)
            rest = rows[need:]
            if len(rest):
                segments[bucket].append((page, rest))
                sizes[bucket] = len(rest)
    for bucket in range(len(partitions)):
        if sizes[bucket]:
            flush(bucket)
