"""``doPartitioning`` (Section 3.2): Grace partitioning by valid time.

The input relation is scanned linearly; each tuple is placed in the page
buffer of the *last* partition its interval overlaps (Section 3.3's storage
rule) and buffers are flushed to the partition's extent as they fill.

Buffering follows the paper: "We reserve a single buffer page to hold a
page of the input relation, and divide the remaining buffer space evenly
among the partitions."  A per-bucket buffer of ``b`` pages flushes as one
run of ``b`` pages -- one random access plus ``b - 1`` sequential -- so
small memories flush small runs often and pay more random I/O, which is
exactly the partitioning-phase effect Section 4.2 reports.
"""

from __future__ import annotations

from typing import List

from repro.core.intervals import PartitionMap
from repro.model.errors import PlanError
from repro.storage.heapfile import HeapFile
from repro.storage.layout import DiskLayout


def do_partitioning(
    source: HeapFile,
    partition_map: PartitionMap,
    layout: DiskLayout,
    name: str,
    memory_pages: int,
    *,
    placement: str = "last",
) -> List[HeapFile]:
    """Partition *source* into one heap file per partitioning interval.

    Args:
        source: the relation to partition (scanned once, charged).
        partition_map: the partitioning intervals from the planner.
        layout: disk layout; partitions are created on the TEMP device.
        name: prefix for the partition extents (e.g. ``"r"``).
        memory_pages: total buffer pages available to the partitioning step;
            one is reserved for the input page, the rest split evenly across
            the partition buckets (minimum one page each -- the paper
            "assume[s] that the number of partitions is small" enough for
            this to hold, and the planner's ``partSize >= 1`` guarantees it
            can be satisfied at ``numPartitions <= buffSize``).
        placement: ``"last"`` stores each tuple in the last partition it
            overlaps (the paper's choice, paired with the backward sweep);
            ``"first"`` in the first (footnote 1's equivalent strategy,
            paired with the forward sweep).

    Returns:
        One heap file per partition, index-aligned with *partition_map*.
    """
    if placement not in ("last", "first"):
        raise PlanError(f"placement must be 'last' or 'first', got {placement!r}")
    n_partitions = len(partition_map)
    if memory_pages < 2:
        raise PlanError(f"partitioning needs >= 2 buffer pages, got {memory_pages}")
    bucket_buffer_pages = max(1, (memory_pages - 1) // n_partitions)

    spec = source.spec
    # Size each partition extent for the worst case (the whole relation) so
    # overflow of the planner's estimate never fragments the extent.
    partitions = [
        layout.temp_file(f"{name}_part{i}", capacity_tuples=max(1, source.n_tuples))
        for i in range(n_partitions)
    ]
    buffers: List[List] = [[] for _ in range(n_partitions)]
    flush_threshold = bucket_buffer_pages * spec.capacity

    locate = (
        partition_map.last_overlapping
        if placement == "last"
        else partition_map.first_overlapping
    )
    for page in source.scan_pages():
        for tup in page:
            index = locate(tup.valid)
            bucket = buffers[index]
            bucket.append(tup)
            if len(bucket) >= flush_threshold:
                _flush(partitions[index], bucket)
                buffers[index] = []
    for index, bucket in enumerate(buffers):
        if bucket:
            _flush(partitions[index], bucket)
    return partitions


def _flush(partition: HeapFile, bucket: List) -> None:
    """Write a bucket's tuples as one contiguous run of pages."""
    partition.append_many(bucket)
    partition.flush()
