"""``determinePartIntervals`` (Appendix A.2): the partition-size planner.

The planner sweeps candidate outer-partition sizes ``partSize`` from 1 to
``buffSize - 1`` pages.  For each candidate it:

1. computes ``errorSize = buffSize - partSize`` and, from the Kolmogorov
   bound, the samples ``m = ceil((1.63 x |r| / errorSize)^2)`` needed so a
   partition overflows its error space with probability at most 1%;
2. estimates ``C_sample`` -- ``m x IO_ran``, capped by the Section 4.2
   sequential-scan optimization at one linear scan of the outer relation;
3. chooses partitioning intervals from a prefix of the sample set
   (Appendix A.3) and estimates the tuple-cache pages per partition
   (Appendix A.4);
4. estimates ``C_join = 2 x (numPartitions x IO_ran + (partSize - 1) x
   numPartitions x IO_seq)`` plus ``2 x (IO_ran + IO_seq x (m_c - 1))`` for
   each partition's ``m_c`` cache pages -- partitions of both relations read
   once, each cache page written once and read once.

The candidate minimizing ``C_sample + C_join`` wins; the full per-candidate
curve is retained because it *is* Figure 4.

Deviations from the appendix, all documented in DESIGN.md:

* Samples are drawn incrementally as in the appendix (each candidate only
  pays for the increment beyond what earlier candidates drew), with the
  Section 4.2 rule applied to the *cumulative* draw: once the cumulative
  requirement makes a sequential scan cheaper than further random draws,
  one scan is charged and supplies every later increment.
* The sweep prunes: ``C_sample`` is non-decreasing in ``partSize`` and
  ``C_join`` is non-negative, so as soon as a candidate's sampling cost
  alone reaches the best total seen, every remaining (larger) candidate is
  provably worse and the planner stops drawing.  Figure 4 regeneration
  passes ``prune=False`` to get the full curve.
* At paper scale ``buffSize`` is thousands of pages; evaluating every
  integer candidate makes the planner itself quadratic.  The sweep uses a
  geometrically spaced candidate grid (all integers when ``buffSize`` is
  small); the cost curve is smooth (Figure 4), so the grid loses little.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.cache_estimate import estimate_cache_sizes
from repro.core.intervals import PartitionMap, SampleSpans, choose_intervals
from repro.exec.backend import np
from repro.model.errors import PlanError
from repro.model.vtuple import VTTuple
from repro.sampling.kolmogorov import required_samples
from repro.sampling.sampler import SamplePlan, SampleStrategy, plan_sampling
from repro.storage.columnar_page import ColumnarPage, trusted_interval
from repro.storage.heapfile import HeapFile
from repro.storage.iostats import CostModel
from repro.time.interval import Interval


@dataclass(frozen=True)
class CandidateCost:
    """One point of the Figure 4 curve.

    Attributes:
        part_size: candidate outer-partition size, in pages.
        error_size: overflow slack, ``buffSize - partSize`` pages.
        n_samples: Kolmogorov sample requirement for this slack.
        num_partitions: partitions the outer relation splits into.
        c_sample: estimated sampling cost (scan-capped).
        c_join_scan: partition-read component of ``C_join``.
        c_join_cache: tuple-cache paging component of ``C_join``.
    """

    part_size: int
    error_size: int
    n_samples: int
    num_partitions: int  # achieved interval count
    c_sample: float
    c_join_scan: float
    c_join_cache: float
    num_requested: int = 0  # partition count the estimate charged for

    @property
    def c_join(self) -> float:
        return self.c_join_scan + self.c_join_cache

    @property
    def total(self) -> float:
        return self.c_sample + self.c_join


@dataclass
class PartitionPlan:
    """The planner's output: a partitioning plus its cost pedigree.

    Attributes:
        intervals: the chosen partitioning intervals (ascending tiling).
        part_size: chosen outer-partition size in pages.
        buff_size: the buffer constraint the plan was made for.
        chosen: the winning candidate's cost breakdown.
        curve: every evaluated candidate (the Figure 4 data).
        sample_plan: how the samples were actually drawn.
        cache_pages: estimated tuple-cache pages per partition.
    """

    intervals: List[Interval]
    part_size: int
    buff_size: int
    chosen: Optional[CandidateCost]  # None only for trivial/degenerate plans
    curve: List[CandidateCost] = field(default_factory=list)
    sample_plan: Optional[SamplePlan] = None
    cache_pages: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Plan invariants every consumer leans on: a partition occupies at
        # least one page and must fit the outer buffer area it was sized
        # for.  (Equality is legal: the degenerate single-partition plan
        # fills the buffer exactly.)
        if self.part_size < 1:
            raise PlanError(
                f"plan part_size must be >= 1 page, got {self.part_size}",
                part_size=self.part_size,
                buff_size=self.buff_size,
            )
        if self.buff_size < self.part_size:
            raise PlanError(
                f"plan part_size {self.part_size} exceeds the buffer area "
                f"of {self.buff_size} pages",
                part_size=self.part_size,
                buff_size=self.buff_size,
            )
        if not self.intervals:
            raise PlanError("a plan needs at least one partitioning interval")

    @property
    def num_partitions(self) -> int:
        return len(self.intervals)

    def partition_map(self) -> PartitionMap:
        return PartitionMap(self.intervals)


#: Sample floor for estimate quality (see determine_part_intervals).
_MIN_ESTIMATE_SAMPLES = 64


def candidate_part_sizes(buff_size: int, max_candidates: int = 64) -> List[int]:
    """The candidate grid: all sizes when small, geometric otherwise."""
    if buff_size < 2:
        raise PlanError(f"buffSize must be >= 2 pages to leave error space, got {buff_size}")
    largest = buff_size - 1
    if largest <= max_candidates:
        return list(range(1, largest + 1))
    sizes: List[int] = []
    value = 1.0
    ratio = largest ** (1.0 / (max_candidates - 1))
    for _ in range(max_candidates):
        size = int(round(value))
        if not sizes or size > sizes[-1]:
            sizes.append(min(size, largest))
        value *= ratio
    if sizes[-1] != largest:
        sizes.append(largest)
    return sizes


def estimate_join_cost(
    relation_pages: int,
    num_partitions: int,
    cache_pages: Sequence[int],
    cost_model: CostModel,
) -> tuple[float, float]:
    """The two components of the Appendix A.2 ``C_join`` estimate.

    Returns ``(scan_component, cache_component)``: reading every partition
    of both relations (the leading factor 2), plus writing and re-reading
    each partition's tuple cache (the inner factor 2).

    The appendix writes the scan component as ``numPartitions x IO_ran +
    (partSize - 1) x numPartitions x IO_seq``, which assumes ``numPartitions
    x partSize = |r|``; rearranged over the whole relation this is
    ``num x IO_ran + (|r| - num) x IO_seq``.  The *requested* partition
    count is charged, exactly as the appendix does: when the sample is too
    small to realize that many boundaries, the pessimistic seek term steers
    the search away from the candidate -- which is the correct direction,
    because an under-sampled fine partitioning hides unestimated
    tuple-cache paging.
    """
    scan = 2 * (
        num_partitions * cost_model.io_ran
        + max(0, relation_pages - num_partitions) * cost_model.io_seq
    )
    cache = 0.0
    for pages in cache_pages:
        if pages > 0:
            cache += 2 * (cost_model.io_ran + cost_model.io_seq * (pages - 1))
    return scan, cache


def estimate_partition_cost(
    outer_pages: int,
    inner_pages: int,
    num_partitions: int,
    cost_model: CostModel,
) -> float:
    """Predicted cost of the Grace-partitioning phase (``C_partition``).

    The appendix folds partitioning into the measured total without a
    closed-form estimate; EXPLAIN ANALYZE needs one so planner drift is
    visible per phase.  The model is the idealized Section 3.2 pattern:
    each relation is read once linearly (one seek plus sequential
    transfers) and written out as one contiguous run per partition.  Real
    runs pay more when bucket buffers flush early -- exactly the deviation
    ``explain_analyze`` is there to expose.
    """
    if num_partitions < 1:
        raise PlanError(f"partition estimate needs >= 1 partition, got {num_partitions}")
    cost = 0.0
    for pages in (outer_pages, inner_pages):
        if pages <= 0:
            continue
        parts = min(num_partitions, pages)
        cost += cost_model.cost_of_run(pages)  # the input scan
        cost += parts * cost_model.io_ran + (pages - parts) * cost_model.io_seq
    return cost


def estimate_pipelined_join_cost(
    c_join_io: float,
    c_join_cpu: float,
    *,
    prefetch_depth: int,
    pages_per_partition: float,
    workers: int = 1,
) -> float:
    """``C_join`` under the ``"batch-parallel-sweep"`` overlap model.

    The pipelined sweep overlaps each partition's probe compute with the
    prefetch of the next partition's pages, so per overlapped stage the
    elapsed cost is ``max(C_cpu, C_io)`` instead of ``C_cpu + C_io``
    (``docs/COST_MODEL.md``).  Only the fraction of a partition's pages the
    prefetcher can cover ahead of demand is overlappable::

        alpha  = min(1, prefetch_depth / pages_per_partition)
        C_join = max(C_cpu / W, alpha * C_io) + (1 - alpha) * C_io

    The un-overlapped remainder ``(1 - alpha) * C_io`` is demand-paged
    exactly as in the serial sweep.  With ``prefetch_depth = 0`` or one
    worker and negligible compute this degrades to the serial estimate.

    Args:
        c_join_io: the serial ``C_join`` I/O estimate (scan + cache
            components of :func:`estimate_join_cost`).
        c_join_cpu: probe compute per sweep, in the same cost unit (an
            ``io_seq``-normalized calibration; see ``docs/COST_MODEL.md``).
        prefetch_depth: pages of read-ahead per partition barrier.
        pages_per_partition: average pages a partition's scans touch.
        workers: probe lanes the compute is divided across.
    """
    if c_join_io < 0 or c_join_cpu < 0:
        raise PlanError("pipelined cost estimate needs non-negative costs")
    if prefetch_depth < 0 or workers < 1:
        raise PlanError(
            f"pipelined cost estimate needs prefetch_depth >= 0 and workers "
            f">= 1, got {prefetch_depth} and {workers}"
        )
    if pages_per_partition > 0:
        alpha = min(1.0, prefetch_depth / pages_per_partition)
    else:
        alpha = 0.0
    cpu = c_join_cpu / workers
    return max(cpu, alpha * c_join_io) + (1.0 - alpha) * c_join_io


def recommend_sweep_workers(
    c_join_cpu: float,
    c_join_io: float,
    *,
    max_workers: Optional[int] = None,
) -> int:
    """Smallest lane count that hides the probe compute behind the I/O.

    Under the overlap model, lanes beyond the point where ``C_cpu / W <=
    C_io`` buy nothing -- the stage is I/O-bound from there on -- so the
    recommendation is the smallest such ``W``, clamped to the machine
    (``effective_sweep_workers``).  A compute-free or I/O-dominated join
    recommends one lane; the pool is then never spawned.
    """
    from repro.exec.sweep_parallel import effective_sweep_workers

    if c_join_cpu < 0 or c_join_io < 0:
        raise PlanError("worker recommendation needs non-negative costs")
    limit = effective_sweep_workers(max_workers)
    if c_join_cpu == 0:
        return 1
    if c_join_io <= 0:
        return limit
    needed = math.ceil(c_join_cpu / c_join_io)
    return max(1, min(limit, needed))


#: Smallest memory grant worth running a partition join under: the three
#: fixed single-page areas of Figure 3 plus one outer-partition page.
MIN_GRANT_PAGES = 4

#: Admission-grant ceiling of the forward sweep: two scan pages, a result
#: page, and a small fixed budget for the gapless active maps.  The sweep's
#: working set is the open-interval population, which does not grow with
#: the relations' page counts.
FORWARD_SWEEP_GRANT_PAGES = 8


def estimate_grant_pages(
    outer_pages: int,
    inner_pages: int,
    requested_pages: int,
    *,
    execution: Optional[str] = None,
    spec=None,
    lanes: Optional[int] = None,
    prefetch_depth: int = 8,
) -> int:
    """Buffer pages a join can actually *use*, for admission control.

    The service layer grants memory from a shared pool (``docs/SERVICE.md``);
    over-granting starves concurrent queries for nothing.  The planner's own
    shortcut bounds the useful budget: once ``buffSize`` covers the smaller
    input the evaluation collapses to a single partition, so pages beyond
    ``min(outer, inner) + FIXED_PAGES`` cannot change the plan, the I/O, or
    the result.  The estimate clamps the request into
    ``[MIN_GRANT_PAGES, useful]`` (a request below the Figure 3 minimum is
    raised to it -- the join cannot run at all under fewer pages).

    For the ``"zero-copy-sweep"`` execution, the useful budget additionally
    covers the mode's auxiliary consumers -- prefetch window, shared column
    arena, per-lane result slabs -- sized by the multibuffer pass
    (:func:`repro.planner.multibuffer.plan_multibuffer`).  Earlier the grant
    ignored these entirely, so a "full" grant under concurrency silently
    starved the pipeline into its degraded shapes.

    Args:
        outer_pages: catalog page count of the outer relation.
        inner_pages: catalog page count of the inner relation.
        requested_pages: the memory budget the query asked for
            (``PartitionJoinConfig.memory_pages``).
        execution: the query's execution mode; ``"zero-copy-sweep"`` and
            ``"forward-sweep"`` change the estimate.
        spec: the page geometry (required to size the zero-copy aux pages;
            defaults to :class:`~repro.storage.page.PageSpec`'s default).
        lanes: probe lanes of the fan-out (None = the machine default).
        prefetch_depth: the requested read-ahead depth.
    """
    from repro.storage.buffer import JoinBufferAllocation

    if outer_pages < 0 or inner_pages < 0:
        raise PlanError(
            f"grant estimate needs non-negative page counts, got "
            f"{outer_pages} and {inner_pages}"
        )
    if requested_pages < 1:
        raise PlanError(
            f"grant estimate needs a positive request, got {requested_pages}"
        )
    if execution == "forward-sweep":
        # The sweep's appetite is O(open intervals), not O(min input): it
        # streams both inputs once and holds only the gapless active maps,
        # one scan page per input, and a result page.  Granting the
        # partition join's ``min(input) + FIXED`` shape would starve
        # concurrent queries for pages the sweep never touches.
        return max(
            MIN_GRANT_PAGES, min(requested_pages, FORWARD_SWEEP_GRANT_PAGES)
        )
    useful = max(
        MIN_GRANT_PAGES,
        min(outer_pages, inner_pages) + JoinBufferAllocation.FIXED_PAGES,
    )
    if execution == "zero-copy-sweep":
        from repro.exec.sweep_parallel import effective_sweep_workers
        from repro.planner.multibuffer import plan_multibuffer
        from repro.storage.page import PageSpec

        geometry = spec if spec is not None else PageSpec()
        buff_size = max(1, useful - JoinBufferAllocation.FIXED_PAGES)
        plan = plan_multibuffer(
            outer_pages,
            inner_pages,
            buff_size,
            geometry,
            lanes=effective_sweep_workers(lanes),
            prefetch_depth=prefetch_depth,
        )
        useful += plan.total_aux_pages
    return max(MIN_GRANT_PAGES, min(requested_pages, useful))


@dataclass(frozen=True)
class SweepCostEstimate:
    """Predicted charged I/O of a forward-sweep evaluation.

    Attributes:
        c_scan: the join phase -- one sorted linear scan of each input.
        c_sort: the external-sort charge for inputs lacking endpoint-sorted
            metadata -- per unsorted input, one extra base scan plus one
            sorted-run write (the run's join-phase re-scan replaces the
            base scan already counted in ``c_scan``).
    """

    c_scan: float
    c_sort: float

    @property
    def total(self) -> float:
        return self.c_scan + self.c_sort


def estimate_forward_sweep_cost(
    outer_pages: int,
    inner_pages: int,
    cost_model: CostModel,
    *,
    outer_sorted: bool = False,
    inner_sorted: bool = False,
) -> SweepCostEstimate:
    """The sweep's crossover formula (see docs/COST_MODEL.md).

    A sorted input costs one linear scan; an unsorted one costs three
    passes (scan, sorted-run write, run re-scan), which is what makes the
    partition join win once sorting must be charged on both sides.
    """
    c_scan = cost_model.cost_of_run(outer_pages) + cost_model.cost_of_run(inner_pages)
    c_sort = 0.0
    if not outer_sorted:
        c_sort += 2 * cost_model.cost_of_run(outer_pages)
    if not inner_sorted:
        c_sort += 2 * cost_model.cost_of_run(inner_pages)
    return SweepCostEstimate(c_scan=c_scan, c_sort=c_sort)


@dataclass(frozen=True)
class OperatorChoice:
    """The planner's physical-operator decision, surfaced by EXPLAIN.

    Attributes:
        operator: ``"forward-sweep"`` or ``"partition"``.
        sweep_cost: predicted charged I/O of the forward sweep.
        partition_cost: predicted charged I/O of the partition join.
        sort_charge: the sweep estimate's external-sort component.
        rationale: one human-readable sentence explaining the pick.
    """

    operator: str
    sweep_cost: float
    partition_cost: float
    sort_charge: float
    rationale: str


def choose_physical_operator(
    outer_pages: int,
    inner_pages: int,
    memory_pages: int,
    cost_model: CostModel,
    *,
    outer_sorted: bool = False,
    inner_sorted: bool = False,
    long_lived_fraction: float = 0.0,
    predicate: str = "intersects",
) -> OperatorChoice:
    """Pick between the partition join and the forward sweep.

    Non-natural predicates force the sweep (the partition machinery only
    evaluates interval intersection).  For the natural join the cheaper
    predicted operator wins; ties keep the partition join, so the sweep
    must be *strictly* cheaper -- typically exactly when sortedness
    metadata waives its sort charge.
    """
    sweep = estimate_forward_sweep_cost(
        outer_pages,
        inner_pages,
        cost_model,
        outer_sorted=outer_sorted,
        inner_sorted=inner_sorted,
    )
    from repro.engine.optimizer import estimate_costs

    partition_cost = estimate_costs(
        outer_pages,
        inner_pages,
        memory_pages,
        cost_model,
        long_lived_fraction=long_lived_fraction,
    )["partition"].cost
    from repro.algebra.predicates import resolve_predicate

    if not resolve_predicate(predicate).is_natural:
        return OperatorChoice(
            operator="forward-sweep",
            sweep_cost=sweep.total,
            partition_cost=partition_cost,
            sort_charge=sweep.c_sort,
            rationale=(
                f"predicate {predicate!r} requires the forward sweep; the "
                f"partition join evaluates only interval intersection"
            ),
        )
    sortedness = (
        "both inputs endpoint-sorted"
        if outer_sorted and inner_sorted
        else "one input endpoint-sorted"
        if outer_sorted or inner_sorted
        else "no endpoint-sorted metadata"
    )
    if not (outer_sorted or inner_sorted):
        # The simulator sorts each unsorted side in one charged TEMP run
        # regardless of the memory budget -- optimistic next to a real
        # multi-pass external sort at scarce memory.  Without at least one
        # sorted input that optimism could undercut the partition join, so
        # fully-unsorted inputs keep the partition operator outright.
        return OperatorChoice(
            operator="partition",
            sweep_cost=sweep.total,
            partition_cost=partition_cost,
            sort_charge=sweep.c_sort,
            rationale=(
                f"partition {partition_cost:.1f}: the sweep only competes "
                f"on endpoint-sorted input ({sortedness})"
            ),
        )
    if sweep.total < partition_cost:
        return OperatorChoice(
            operator="forward-sweep",
            sweep_cost=sweep.total,
            partition_cost=partition_cost,
            sort_charge=sweep.c_sort,
            rationale=(
                f"sweep {sweep.total:.1f} < partition {partition_cost:.1f} "
                f"({sortedness}, sort charge {sweep.c_sort:.1f})"
            ),
        )
    return OperatorChoice(
        operator="partition",
        sweep_cost=sweep.total,
        partition_cost=partition_cost,
        sort_charge=sweep.c_sort,
        rationale=(
            f"partition {partition_cost:.1f} <= sweep {sweep.total:.1f} "
            f"({sortedness}, sort charge {sweep.c_sort:.1f})"
        ),
    )


class _SpanSample:
    """A sampled row reduced to its interval.

    The planner's sample consumers (:func:`choose_intervals`,
    :func:`estimate_cache_sizes`) read only ``vs``/``ve``/``valid``, so the
    scan sampler over columnar pages hands out these instead of
    materializing whole tuples the plan never looks at.
    """

    __slots__ = ("valid",)

    def __init__(self, valid) -> None:
        self.valid = valid

    @property
    def vs(self) -> int:
        return self.valid.start

    @property
    def ve(self) -> int:
        return self.valid.end


class _IncrementalSampler:
    """Draws ever-larger sample prefixes, switching to one scan when cheaper.

    Positions are pre-shuffled so every prefix is a uniform without-
    replacement sample.  Random draws charge one page read each (through the
    head model); the scan charges one linear pass of the relation and
    supplies every later increment for free -- the Section 4.2 optimization
    applied to the cumulative requirement.
    """

    def __init__(
        self,
        outer: HeapFile,
        cost_model: CostModel,
        rng: random.Random,
        allow_scan: bool,
    ) -> None:
        self._outer = outer
        self._cost_model = cost_model
        self._allow_scan = allow_scan
        self._positions = list(range(outer.n_tuples))
        rng.shuffle(self._positions)
        self._samples: List[VTTuple] = []
        self._scanned_pages: Optional[List] = None
        self._page_offsets: List[int] = []
        self._page_spans: dict = {}
        self._column_starts = None
        self._column_ends = None
        self._position_array = None
        self._n_drawn = 0
        self.scan_done = False

    def prefix(self, needed: int) -> List[VTTuple]:
        """The first *needed* samples, drawing (and charging) as required."""
        needed = min(needed, self._outer.n_tuples)
        if self._column_starts is not None:
            # Columnar scan: the whole relation's span columns are already
            # concatenated, so a prefix is one vectorized gather at the
            # pre-shuffled positions -- no per-sample work at all.
            if needed > self._n_drawn:
                self._n_drawn = needed
            positions = self._position_array[:needed]
            return SampleSpans(
                self._column_starts[positions], self._column_ends[positions]
            )
        if needed <= len(self._samples):
            return self._samples[:needed]
        scan_cost = self._cost_model.cost_of_run(self._outer.n_pages)
        random_cost = needed * self._cost_model.io_ran
        if self._allow_scan and (self.scan_done or random_cost >= scan_cost):
            if not self.scan_done:
                # Keep the scanned pages; only the sampled positions are
                # ever materialized (columnar pages build rows lazily, so
                # flattening the whole relation here would pay a per-tuple
                # cost the sample never looks at).
                self._scanned_pages = list(self._outer.scan_pages())
                offset = 0
                for page in self._scanned_pages:
                    self._page_offsets.append(offset)
                    offset += len(page)
                self.scan_done = True
                if (
                    np is not None
                    and self._scanned_pages
                    and all(
                        isinstance(page, ColumnarPage)
                        for page in self._scanned_pages
                    )
                ):
                    self._column_starts = np.concatenate(
                        [page.starts_view() for page in self._scanned_pages]
                    )
                    self._column_ends = np.concatenate(
                        [page.ends_view() for page in self._scanned_pages]
                    )
                    self._position_array = np.asarray(
                        self._positions, dtype=np.int64
                    )
                    self._n_drawn = max(needed, len(self._samples))
                    positions = self._position_array[:needed]
                    return SampleSpans(
                        self._column_starts[positions],
                        self._column_ends[positions],
                    )
            assert self._scanned_pages is not None
            while len(self._samples) < needed:
                position = self._positions[len(self._samples)]
                index = bisect_right(self._page_offsets, position) - 1
                page = self._scanned_pages[index]
                offset = position - self._page_offsets[index]
                if isinstance(page, ColumnarPage):
                    # The planner only ever reads a sample's interval, so
                    # columnar pages hand out spans without building tuples
                    # (keys and payloads stay packed); the page's span
                    # columns decode once, to plain lists.
                    spans = self._page_spans.get(index)
                    if spans is None:
                        spans = (page.starts_list(), page.ends_list())
                        self._page_spans[index] = spans
                    valid = trusted_interval(spans[0][offset], spans[1][offset])
                    self._samples.append(_SpanSample(valid))
                else:
                    self._samples.append(page[offset])
        else:
            while len(self._samples) < needed:
                position = self._positions[len(self._samples)]
                tup = self._outer.read_tuple(position)
                if tup is not None:
                    self._samples.append(tup)
        return self._samples[:needed]

    def estimate_cost(self, needed: int) -> float:
        """Estimated ``C_sample`` for a candidate needing *needed* samples."""
        return plan_sampling(
            min(needed, self._outer.n_tuples),
            self._outer.n_pages,
            self._cost_model,
            allow_scan=self._allow_scan,
        ).estimated_cost

    def executed_plan(self) -> SamplePlan:
        """How the draw actually went, for the plan record."""
        strategy = SampleStrategy.SCAN if self.scan_done else SampleStrategy.RANDOM
        n_samples = max(len(self._samples), self._n_drawn)
        cost = (
            self._cost_model.cost_of_run(self._outer.n_pages)
            if self.scan_done
            else n_samples * self._cost_model.io_ran
        )
        return SamplePlan(n_samples, strategy, cost)


def determine_part_intervals(
    buff_size: int,
    outer: HeapFile,
    inner_tuples: int,
    cost_model: CostModel,
    rng: random.Random,
    *,
    allow_scan_sampling: bool = True,
    max_candidates: int = 64,
    prune: bool = True,
    inner: Optional[HeapFile] = None,
) -> PartitionPlan:
    """Plan the partitioning of the join inputs (Appendix A.2).

    Args:
        buff_size: pages available for the outer-partition area (``buffSize``
            of Figure 3 -- the fixed single-page areas are already excluded).
        outer: the outer relation on disk; sampling I/O is charged to it.
        inner_tuples: cardinality of the inner relation, for the cache
            estimate.
        cost_model: active random/sequential weights.
        rng: source of randomness for sample positions.
        allow_scan_sampling: disable to force per-sample random I/O
            (ablation of the Section 4.2 optimization).
        max_candidates: size of the candidate grid.
        prune: stop the sweep once a candidate's sampling cost alone exceeds
            the best total (disable to trace the full Figure 4 curve).
        inner: pass the inner relation to base the tuple-cache estimate on a
            (small, charged) sample of the *inner* relation instead of the
            outer's.  The paper assumes similar temporal distributions and
            notes in Section 5 that when the assumption fails "gross
            mis-estimation of tuple caching costs may result"; this option
            is the fix it suggests considering ("directly sampling the
            inner relation").

    Raises:
        PlanError: if the outer relation is empty or the buffer is too small.
    """
    if outer.n_tuples == 0:
        raise PlanError("cannot plan a partitioning for an empty outer relation")
    relation_pages = outer.n_pages
    sizes = candidate_part_sizes(buff_size, max_candidates)
    sampler = _IncrementalSampler(outer, cost_model, rng, allow_scan_sampling)
    inner_sampler: Optional[_IncrementalSampler] = None
    if inner is not None and inner.n_tuples > 0:
        inner_sampler = _IncrementalSampler(inner, cost_model, rng, allow_scan_sampling)

    best: Optional[CandidateCost] = None
    best_intervals: Optional[List[Interval]] = None
    best_cache: List[int] = []
    curve: List[CandidateCost] = []
    for part_size in sizes:
        needed = required_samples(relation_pages, buff_size - part_size)
        c_sample = sampler.estimate_cost(needed)
        if prune and best is not None:
            # A larger candidate can save at most the best candidate's cache
            # cost plus the seek overhead of its extra partitions; once the
            # added sampling cost exceeds that, every remaining candidate is
            # provably worse (C_sample is non-decreasing in partSize).
            scan_saving = (
                2 * (best.num_requested - 1) * (cost_model.io_ran - cost_model.io_seq)
            )
            if c_sample - best.c_sample >= best.c_join_cache + scan_saving:
                break
        # Partitions must be read back whole, so the count rounds *up* (a
        # floor leaves a remainder that overflows the buffer), and each
        # partition needs a bucket buffer page during Grace partitioning
        # ("we assume that the number of partitions is small"), capping the
        # count at the memory size.
        num_partitions = max(
            1, min(math.ceil(relation_pages / part_size), buff_size + 2)
        )
        # The Kolmogorov requirement governs overflow risk, not estimate
        # quality: tiny requirements (a large error space needs only a
        # handful of samples) would make the cache estimate of Appendix A.4
        # blind to moderate long-lived fractions and steer the search into
        # fine partitionings whose migration cost it cannot see.  Detecting
        # a long-lived fraction f needs on the order of 1/f samples
        # regardless of relation size, so the floor is absolute: a few
        # dozen random reads, charged like any others and negligible
        # against a relation scan at realistic sizes.
        estimate_floor = min(_MIN_ESTIMATE_SAMPLES, outer.n_tuples)
        prefix = sampler.prefix(max(needed, estimate_floor))
        intervals = choose_intervals(prefix, num_partitions)
        partition_map = PartitionMap(intervals)
        if inner_sampler is not None:
            cache_basis = inner_sampler.prefix(
                min(_MIN_ESTIMATE_SAMPLES, inner_tuples)
            )
        else:
            cache_basis = prefix
        cache_pages = estimate_cache_sizes(
            cache_basis, inner_tuples, partition_map, outer.spec
        )
        scan, cache = estimate_join_cost(
            relation_pages, num_partitions, cache_pages, cost_model
        )
        candidate = CandidateCost(
            part_size=part_size,
            error_size=buff_size - part_size,
            n_samples=needed,
            num_partitions=len(intervals),
            c_sample=c_sample,
            c_join_scan=scan,
            c_join_cache=cache,
            num_requested=num_partitions,
        )
        curve.append(candidate)
        # "if cost <= minCost" in the appendix: later (larger) candidates win
        # ties, preferring fewer, larger partitions.
        if best is None or candidate.total <= best.total:
            best = candidate
            best_intervals = intervals
            best_cache = cache_pages

    assert best is not None and best_intervals is not None
    return PartitionPlan(
        intervals=best_intervals,
        part_size=best.part_size,
        buff_size=buff_size,
        chosen=best,
        curve=curve,
        sample_plan=sampler.executed_plan(),
        cache_pages=best_cache,
    )
