"""``chooseIntervals`` (Appendix A.3): partitioning intervals from a sample.

The paper's algorithm collects, into a multiset, every chronon covered by
any sampled tuple, sorts the multiset, picks every k-th element as a
partitioning chronon, and turns adjacent chosen chronons into partitioning
intervals.  Picking every k-th element of the sorted coverage multiset is an
*equi-depth* split: each partitioning interval covers an equal share of
sampled tuple-chronon mass, which is what makes the resulting partitions of
``r`` approximately equal-sized (Section 3.3's standing assumption).

Enumerating the multiset explicitly is linear in total tuple *duration* and
infeasible for long-lived tuples at paper scale, so
:func:`_coverage_quantiles` computes the same chosen chronons with an
endpoint sweep: sort interval starts and ends, walk the chronon line
maintaining the number of intervals covering the current run, and locate the
multiset positions arithmetically inside runs of constant coverage.  A
property test checks the sweep against the naive multiset construction on
small inputs.

The returned intervals are non-overlapping, ascending, and tile the sampled
lifespan exactly.  Tuples outside the sampled lifespan are handled by
:class:`PartitionMap`, which clamps them into the first or last partition --
equivalent to extending the outermost intervals to the ends of the time-line
as Section 3.3 assumes.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Sequence

from repro.exec.backend import np
from repro.model.errors import PlanError
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval


class SampleSpans:
    """A planner sample held as two parallel chronon columns.

    The scan sampler over columnar pages produces this instead of a list of
    tuples: the plan consumers (:func:`choose_intervals`,
    :func:`estimate_cache_sizes`) only ever read interval endpoints, and
    holding those as ``int64`` arrays lets both run vectorized.  The
    sequence protocol hands out per-sample span objects for any consumer
    that still iterates, so the two representations are interchangeable.
    """

    __slots__ = ("starts", "ends")

    def __init__(self, starts, ends) -> None:
        self.starts = starts
        self.ends = ends

    def __len__(self) -> int:
        return len(self.starts)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return SampleSpans(self.starts[index], self.ends[index])
        return _SpanItem(Interval(int(self.starts[index]), int(self.ends[index])))

    def __iter__(self):
        for start, end in zip(self.starts.tolist(), self.ends.tolist()):
            yield _SpanItem(Interval(start, end))


class _SpanItem:
    """One sample of a :class:`SampleSpans`, for tuple-at-a-time consumers."""

    __slots__ = ("valid",)

    def __init__(self, valid: Interval) -> None:
        self.valid = valid

    @property
    def vs(self) -> int:
        return self.valid.start

    @property
    def ve(self) -> int:
        return self.valid.end


def choose_intervals(samples: Sequence[VTTuple], num_partitions: int) -> List[Interval]:
    """Choose ``num_partitions`` partitioning intervals from *samples*.

    Args:
        samples: sampled tuples of the outer relation.
        num_partitions: desired number of partitions (>= 1).

    Returns:
        Ascending, non-overlapping intervals tiling the sampled lifespan.
        Fewer than ``num_partitions`` intervals are returned when the sample
        cannot support that many distinct boundaries (e.g. every sampled
        chronon is identical); never more.

    Raises:
        PlanError: if *samples* is empty or *num_partitions* < 1.
    """
    if num_partitions < 1:
        raise PlanError(f"num_partitions must be >= 1, got {num_partitions}")
    if not len(samples):
        raise PlanError("cannot choose partitioning intervals from an empty sample")

    if np is not None and isinstance(samples, SampleSpans):
        lo = int(samples.starts.min())
        hi = int(samples.ends.max())
    else:
        lo = min(tup.vs for tup in samples)
        hi = max(tup.ve for tup in samples)
    if num_partitions == 1 or lo == hi:
        return [Interval(lo, hi)]

    # Interior boundaries at equal shares of the coverage multiset.
    positions = _equal_depth_positions(samples, num_partitions)
    boundaries = _coverage_quantiles(samples, positions)

    # Deduplicate and drop degenerate boundaries at the lifespan edges.
    cut_points: List[int] = []
    for chronon in boundaries:
        if lo < chronon <= hi and (not cut_points or chronon > cut_points[-1]):
            cut_points.append(chronon)

    intervals: List[Interval] = []
    start = lo
    for cut in cut_points:
        intervals.append(Interval(start, cut - 1))
        start = cut
    intervals.append(Interval(start, hi))
    return intervals


def _equal_depth_positions(samples: Sequence[VTTuple], num_partitions: int) -> List[int]:
    """1-based multiset positions of the interior boundary chronons."""
    if np is not None and isinstance(samples, SampleSpans):
        # duration = end - start + 1, summed over the sample columns.
        total = int((samples.ends - samples.starts).sum()) + len(samples)
    else:
        total = sum(tup.valid.duration for tup in samples)
    step = total / num_partitions
    return [int(round(i * step)) for i in range(1, num_partitions)]


def _coverage_quantiles(samples: Sequence[VTTuple], positions: Sequence[int]) -> List[int]:
    """Chronons at the given 1-based positions of the coverage multiset.

    The coverage multiset contains chronon ``t`` once per sampled tuple
    whose interval contains ``t``.  Equivalent to indexing the paper's
    sorted ``chronons`` multiset, computed by sweeping interval endpoints.
    """
    if not positions:
        return []
    if np is not None and isinstance(samples, SampleSpans):
        starts = np.sort(samples.starts).tolist()
        ends = np.sort(samples.ends).tolist()
    else:
        starts = sorted(tup.vs for tup in samples)
        ends = sorted(tup.ve for tup in samples)
    wanted = sorted(max(1, p) for p in positions)  # one result per position
    results: List[int] = []

    coverage = 0  # intervals covering the current run of chronons
    cumulative = 0  # multiset elements at chronons before the current run
    run_start = starts[0]
    si = ei = 0
    wi = 0
    n = len(samples)
    while wi < len(wanted):
        # The current run extends until the next endpoint event.
        next_start = starts[si] if si < n else None
        next_end_excl = ends[ei] + 1 if ei < n else None
        if next_start is not None and (next_end_excl is None or next_start <= next_end_excl):
            event = next_start
        else:
            event = next_end_excl
        if event is None:
            # Past the last interval; clamp remaining positions to the end.
            results.extend(ends[-1] for _ in range(wi, len(wanted)))
            break
        if event > run_start and coverage > 0:
            run_len = event - run_start
            while wi < len(wanted) and cumulative + coverage * run_len >= wanted[wi]:
                offset = (wanted[wi] - cumulative - 1) // coverage
                results.append(run_start + offset)
                wi += 1
            cumulative += coverage * run_len
        run_start = max(run_start, event)
        if next_start is not None and event == next_start:
            coverage += 1
            si += 1
        else:
            coverage -= 1
            ei += 1
    return results


class PartitionMap:
    """Locate tuples within a partitioning (Section 3.3's placement rules).

    Wraps the ascending partitioning intervals with the two lookups every
    algorithm needs:

    * :meth:`last_overlapping` -- the partition a tuple is physically stored
      in ("a tuple x is physically stored in partition r_i if
      overlap(x[V], p_i) != bottom and there is no later such partition").
    * :meth:`first_overlapping` -- where migration of a long-lived tuple
      stops.

    Tuples extending past the covered lifespan are clamped into the first or
    last partition, which is equivalent to the paper's assumption that the
    partitioning covers the whole valid-time line.
    """

    def __init__(self, intervals: Sequence[Interval]) -> None:
        if not intervals:
            raise PlanError("a partitioning needs at least one interval")
        previous_end: int | None = None
        for interval in intervals:
            if previous_end is not None and interval.start != previous_end + 1:
                raise PlanError(
                    f"partitioning intervals must tile the lifespan; gap or overlap "
                    f"before {interval!r}"
                )
            previous_end = interval.end
        self.intervals: List[Interval] = list(intervals)
        self._ends = [interval.end for interval in intervals]

    def __len__(self) -> int:
        return len(self.intervals)

    def __getitem__(self, index: int) -> Interval:
        return self.intervals[index]

    def index_of_chronon(self, chronon: int) -> int:
        """Index of the partition containing *chronon* (clamped to the edges)."""
        index = bisect_left(self._ends, chronon)
        return min(index, len(self.intervals) - 1)

    def last_overlapping(self, valid: Interval) -> int:
        """Index of the last partition *valid* overlaps (storage partition)."""
        return self.index_of_chronon(valid.end)

    def first_overlapping(self, valid: Interval) -> int:
        """Index of the first partition *valid* overlaps (migration floor)."""
        return self.index_of_chronon(valid.start)

    def overlaps_partition(self, valid: Interval, index: int) -> bool:
        """Does *valid* overlap partition *index*, under edge clamping?

        Clamping means the first partition also owns everything before the
        covered lifespan and the last everything after it, so the three-way
        index comparison (not a raw interval test) is the correct check.
        """
        return self.first_overlapping(valid) <= index <= self.last_overlapping(valid)
