"""Forward-scan sweep join over endpoint-sorted interval columns.

The partition join (Figure 2) pays Grace-partitioning I/O even when both
inputs are already sorted by ``(start, end)``.  Following Piatov et al.
(PAPERS.md, "Cache-Efficient Sweeping-Based Interval Joins"), this module
evaluates any :class:`~repro.algebra.predicates.TemporalPredicate` in a
single forward scan over the two relations' merged endpoint streams:

* Both inputs are consumed in ``(start, end)`` order -- directly when the
  heap file's endpoint-sortedness metadata says the data arrived sorted,
  otherwise after one charged external-sort pass (phase ``"sort"``: read
  the base file, write a sorted TEMP run, re-scan the run in the join
  phase -- three passes instead of one).

* A **gapless hash map** per side maintains the open intervals: an
  open-addressing code table points at dense per-key entry runs, and lazy
  deletion keeps the runs gapless -- the pure-Python twin swaps expired
  entries with the last one, the numpy twin compacts a whole run with one
  boolean mask (batched swap-with-last).  Each arriving row probes the
  *other* side's map (expiring entries that end before the row starts),
  so every intersecting pair is found exactly once, then inserts itself.

* Because every active-map candidate intersects the probing interval,
  the probe evaluates the predicate with the 3x3 **sign grid** of
  :mod:`repro.algebra.predicates` -- one vectorized gather per probe, no
  tuple materialization: the loop runs on the
  :class:`~repro.storage.columnar_page.ColumnarPage` column buffers,
  translated into one joint key-code space.

* The four disjoint Allen relations (before/meets/met_by/after) never
  meet in the active map; they are answered with binary-searched windows
  over per-key endpoint-sorted row indexes built from the same columns.

Result tuples are materialized only at emission.  Matched row ids are
sorted per probe, so the emission order -- and therefore the result, the
counters, and every ``repro_sweep_*`` metric -- is identical across the
numpy and pure-Python twins.  For the natural-join predicate
(``"intersects"``) the result *multiset* and cardinality are identical
with every partition execution mode; the emission order differs (scan
order here, partition-ownership order there), so compare sorted, exactly
as with the degraded nested-loop fallback.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.algebra.predicates import TemporalPredicate, resolve_predicate
from repro.storage.columnar_page import ColumnarPage, trusted_interval
from repro.time.allen import AllenRelation
from repro.model.vtuple import VTTuple

__all__ = [
    "GaplessHashMap",
    "forward_sweep_join",
    "resolve_sweep_backend",
]

#: Legal explicit backend names (None / "auto" pick numpy when available).
SWEEP_BACKENDS: Tuple[str, ...] = ("numpy", "python")


def resolve_sweep_backend(backend: Optional[str]) -> str:
    """Normalize a backend override against what the process can run."""
    from repro.exec.backend import np

    if backend in (None, "auto"):
        return "numpy" if np is not None else "python"
    if backend not in SWEEP_BACKENDS:
        raise ValueError(
            f"sweep backend must be one of {SWEEP_BACKENDS}, got {backend!r}"
        )
    if backend == "numpy" and np is None:
        raise ValueError("numpy sweep backend requested but numpy is unavailable")
    return backend


def _np():
    from repro.exec.backend import np

    return np


@contextmanager
def _phase(tracker, obs, name: str) -> Iterator[None]:
    """A tracker phase mirrored onto the observability runtime (local twin
    of the helper in :mod:`repro.core.partition_join`, which this module
    cannot import without a cycle)."""
    with tracker.phase(name):
        if obs is not None:
            with obs.phase(name):
                yield
        else:
            yield


def _sign(a: int, b: int) -> int:
    return (a > b) - (a < b)


# ---------------------------------------------------------------------------
# The gapless hash map
# ---------------------------------------------------------------------------


class _PythonRun:
    """A dense per-key entry run; deletion swaps with the last entry."""

    __slots__ = ("starts", "ends", "rows")

    def __init__(self) -> None:
        self.starts: List[int] = []
        self.ends: List[int] = []
        self.rows: List[int] = []

    def __len__(self) -> int:
        return len(self.rows)

    def insert(self, start: int, end: int, row: int) -> None:
        self.starts.append(start)
        self.ends.append(end)
        self.rows.append(row)

    def expire(self, boundary: int) -> int:
        """Swap-with-last every entry ending before *boundary*; count them."""
        starts, ends, rows = self.starts, self.ends, self.rows
        n = len(rows)
        i = 0
        while i < n:
            if ends[i] < boundary:
                n -= 1
                starts[i] = starts[n]
                ends[i] = ends[n]
                rows[i] = rows[n]
            else:
                i += 1
        removed = len(rows) - n
        if removed:
            del starts[n:]
            del ends[n:]
            del rows[n:]
        return removed

    def live(self):
        return self.starts, self.ends, self.rows, len(self.rows)


class _NumpyRun:
    """The numpy twin: capacity-doubling columns, mask-batched deletion."""

    __slots__ = ("starts", "ends", "rows", "n")

    def __init__(self, np_mod) -> None:
        self.starts = np_mod.empty(8, dtype=np_mod.int64)
        self.ends = np_mod.empty(8, dtype=np_mod.int64)
        self.rows = np_mod.empty(8, dtype=np_mod.int64)
        self.n = 0

    def __len__(self) -> int:
        return self.n

    def _grow(self, np_mod) -> None:
        cap = len(self.starts) * 2
        for name in ("starts", "ends", "rows"):
            old = getattr(self, name)
            new = np_mod.empty(cap, dtype=np_mod.int64)
            new[: self.n] = old[: self.n]
            setattr(self, name, new)

    def insert(self, start: int, end: int, row: int) -> None:
        if self.n == len(self.starts):
            self._grow(_np())
        i = self.n
        self.starts[i] = start
        self.ends[i] = end
        self.rows[i] = row
        self.n = i + 1

    def expire(self, boundary: int) -> int:
        """Batched swap-with-last: one boolean mask compacts the whole run."""
        n = self.n
        if n == 0:
            return 0
        keep = self.ends[:n] >= boundary
        k = int(keep.sum())
        if k != n:
            self.starts[:k] = self.starts[:n][keep]
            self.ends[:k] = self.ends[:n][keep]
            self.rows[:k] = self.rows[:n][keep]
            self.n = k
        return n - k

    def live(self):
        n = self.n
        return self.starts[:n], self.ends[:n], self.rows[:n], n


class GaplessHashMap:
    """Open-addressing key-code table over gapless per-key entry runs.

    The table maps a joint key code to its entry run with linear probing
    (codes hash to themselves -- they are dense dictionary codes).  Runs
    stay dense under lazy deletion; ``expired`` counts entries removed,
    ``peak`` tracks the largest live population -- both backend-identical
    because expiry is driven by the same probe boundaries.
    """

    _MIN_TABLE = 8

    __slots__ = ("_table", "_codes", "_runs", "_mask", "_n_keys", "backend",
                 "size", "peak", "expired")

    def __init__(self, backend: str = "python") -> None:
        if backend not in SWEEP_BACKENDS:
            raise ValueError(
                f"backend must be one of {SWEEP_BACKENDS}, got {backend!r}"
            )
        self.backend = backend
        self._mask = self._MIN_TABLE - 1
        self._table = [-1] * self._MIN_TABLE
        self._codes = [0] * self._MIN_TABLE
        self._runs: List[object] = []
        self._n_keys = 0
        self.size = 0
        self.peak = 0
        self.expired = 0

    def __len__(self) -> int:
        return self.size

    def _slot(self, code: int) -> int:
        table, codes, mask = self._table, self._codes, self._mask
        slot = code & mask
        while table[slot] != -1 and codes[slot] != code:
            slot = (slot + 1) & mask
        return slot

    def _resize(self) -> None:
        old_table, old_codes = self._table, self._codes
        new_size = (self._mask + 1) * 2
        self._mask = new_size - 1
        self._table = [-1] * new_size
        self._codes = [0] * new_size
        for slot, run_index in enumerate(old_table):
            if run_index != -1:
                new_slot = self._slot(old_codes[slot])
                self._table[new_slot] = run_index
                self._codes[new_slot] = old_codes[slot]

    def _run_for(self, code: int):
        slot = self._slot(code)
        run_index = self._table[slot]
        if run_index != -1:
            return self._runs[run_index]
        if (self._n_keys + 1) * 4 > (self._mask + 1) * 3:
            self._resize()
            slot = self._slot(code)
        run = _NumpyRun(_np()) if self.backend == "numpy" else _PythonRun()
        self._table[slot] = len(self._runs)
        self._codes[slot] = code
        self._runs.append(run)
        self._n_keys += 1
        return run

    def insert(self, code: int, start: int, end: int, row: int) -> None:
        self._run_for(code).insert(start, end, row)
        self.size += 1
        if self.size > self.peak:
            self.peak = self.size

    def probe(self, code: int, boundary: int):
        """Live ``(starts, ends, rows, n)`` for *code* after expiring every
        entry that ends before *boundary*; None when the key is absent."""
        run_index = self._table[self._slot(code)]
        if run_index == -1:
            return None
        run = self._runs[run_index]
        removed = run.expire(boundary)
        if removed:
            self.size -= removed
            self.expired += removed
        if len(run) == 0:
            return None
        return run.live()


# ---------------------------------------------------------------------------
# Column gathering
# ---------------------------------------------------------------------------


class _SideColumns:
    """One side's gathered columns in joint code space, scan order.

    Rows are materialized lazily and only at emission: columnar sources
    defer to the page's memoized ``row()``, list sources keep the tuple
    references the charged scan already produced.
    """

    __slots__ = ("starts", "ends", "codes", "n", "pages", "capacity", "rows")

    def __init__(self, starts, ends, codes, n, *, pages=None, capacity=0, rows=None):
        self.starts = starts
        self.ends = ends
        self.codes = codes
        self.n = n
        self.pages = pages
        self.capacity = capacity
        self.rows = rows

    def row(self, index: int) -> VTTuple:
        if self.rows is not None:
            return self.rows[index]
        return self.pages[index // self.capacity].row(index % self.capacity)


def _gather(heap_file, joint, backend: str) -> _SideColumns:
    """Scan *heap_file* (charged) into joint-coded columns.

    Each columnar page contributes its packed column views (numpy) or
    memoryview-cast lists (python); its file-local key codes are gathered
    through a per-file translation into the shared *joint* dictionary.
    List pages fall back to a per-tuple loop.
    """
    np = _np() if backend == "numpy" else None
    capacity = heap_file.spec.capacity
    translation: Optional[List[int]] = None
    pages: List[object] = []
    rows: Optional[List[VTTuple]] = None
    if np is not None:
        start_chunks, end_chunks, code_chunks = [], [], []
    else:
        starts: List[int] = []
        ends: List[int] = []
        codes: List[int] = []
    columnar = True
    for page in heap_file.scan_pages():
        pages.append(page)
        if isinstance(page, ColumnarPage):
            dictionary = heap_file.dictionary
            if translation is None or len(translation) < len(dictionary.keys):
                translation = [joint.code(key) for key in dictionary.keys]
            if np is not None:
                table = np.asarray(translation, dtype=np.int64)
                start_chunks.append(page.starts_view())
                end_chunks.append(page.ends_view())
                code_chunks.append(table[page.codes_view()])
            else:
                starts.extend(page.starts_list())
                ends.extend(page.ends_list())
                codes.extend(translation[c] for c in page.codes_list())
        else:
            columnar = False
            if rows is None:
                rows = []
            if np is not None and not isinstance(page, ColumnarPage):
                # A list page inside a numpy gather: decompose per tuple,
                # buffer as one chunk.
                ps = [t.vs for t in page]
                pe = [t.ve for t in page]
                pc = [joint.code(t.key) for t in page]
                start_chunks.append(np.asarray(ps, dtype=np.int64))
                end_chunks.append(np.asarray(pe, dtype=np.int64))
                code_chunks.append(np.asarray(pc, dtype=np.int64))
            else:
                for tup in page:
                    starts.append(tup.vs)
                    ends.append(tup.ve)
                    codes.append(joint.code(tup.key))
            rows.extend(page)
    if not columnar and rows is not None and len(pages) and any(
        isinstance(p, ColumnarPage) for p in pages
    ):
        # Mixed page kinds cannot share the flat row list: rebuild it page
        # by page so flat indexes stay aligned with the columns.
        rows = []
        for page in pages:
            rows.extend(page.row(i) if isinstance(page, ColumnarPage) else page[i]
                        for i in range(len(page)))
    if np is not None:
        cat = (lambda chunks: np.concatenate(chunks)
               if chunks else np.empty(0, dtype=np.int64))
        starts_arr, ends_arr, codes_arr = (
            cat(start_chunks), cat(end_chunks), cat(code_chunks)
        )
        n = int(len(starts_arr))
        return _SideColumns(
            starts_arr, ends_arr, codes_arr, n,
            pages=pages if columnar else None, capacity=capacity, rows=rows,
        )
    n = len(starts)
    return _SideColumns(
        starts, ends, codes, n,
        pages=pages if columnar else None, capacity=capacity, rows=rows,
    )


def _write_sorted_run(heap_file, layout, name: str, backend: str):
    """One external-sort pass: charged base scan, charged sorted TEMP run.

    Returns the run file; the join phase re-scans it sequentially, so an
    unsorted input costs three passes where a sorted one costs one.
    """
    np = _np() if backend == "numpy" else None
    run = layout.temp_file(name, capacity_tuples=heap_file.n_tuples)
    if heap_file.columnar and run.columnar:
        starts: List[int] = []
        ends: List[int] = []
        fcodes: List[int] = []
        payloads: List[tuple] = []
        for page in heap_file.scan_pages():
            starts.extend(page.starts_list())
            ends.extend(page.ends_list())
            fcodes.extend(page.codes_list())
            payloads.extend(page.payloads)
        if np is not None:
            order = np.lexsort((
                np.asarray(ends, dtype=np.int64),
                np.asarray(starts, dtype=np.int64),
            ))
            order = [int(i) for i in order]
        else:
            order = sorted(range(len(starts)), key=lambda i: (starts[i], ends[i]))
        run.dictionary = heap_file.dictionary
        run.append_coded_run(
            [starts[i] for i in order],
            [ends[i] for i in order],
            [fcodes[i] for i in order],
            [payloads[i] for i in order],
        )
    else:
        tuples = [tup for page in heap_file.scan_pages() for tup in page]
        tuples.sort(key=lambda t: (t.vs, t.ve))
        run.append_many(tuples)
        run.flush()
    return run


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------


def _sweep_intersecting(
    rc: _SideColumns,
    sc: _SideColumns,
    pred: TemporalPredicate,
    backend: str,
    stats: Dict[str, int],
) -> List[Tuple[int, int]]:
    """Merged forward scan; returns accepted ``(r_row, s_row)`` pairs.

    Each row probes the opposite side's active map *before* inserting
    itself; R wins ties of ``(start, end)``, so every intersecting pair is
    examined exactly once, at its later endpoint-stream position.  The
    sign grid of the predicate is evaluated over the live run -- the
    probing interval and every candidate are guaranteed to intersect.
    """
    np = _np() if backend == "numpy" else None
    table = pred.sign_table
    np_table = np.asarray(table, dtype=bool) if np is not None else None
    r_map = GaplessHashMap(backend)
    s_map = GaplessHashMap(backend)
    pairs: List[Tuple[int, int]] = []
    probes = 0
    rs, re_, rcodes = rc.starts, rc.ends, rc.codes
    ss, se, scodes = sc.starts, sc.ends, sc.codes
    i = j = 0
    rn, sn = rc.n, sc.n
    peak = 0
    while i < rn or j < sn:
        if j >= sn:
            take_r = True
        elif i >= rn:
            take_r = False
        else:
            take_r = (int(rs[i]), int(re_[i])) <= (int(ss[j]), int(se[j]))
        if take_r:
            start, end, code = int(rs[i]), int(re_[i]), int(rcodes[i])
            live = s_map.probe(code, start)
            probes += 1
            if live is not None:
                cs, ce, crows, n_live = live
                if np is not None:
                    ds = np.sign(start - cs)
                    de = np.sign(end - ce)
                    matched = crows[np_table[ds + 1, de + 1]]
                    if matched.size:
                        matched = np.sort(matched)
                        pairs.extend((i, int(m)) for m in matched)
                else:
                    hits = [
                        crows[k]
                        for k in range(n_live)
                        if table[_sign(start, cs[k]) + 1][_sign(end, ce[k]) + 1]
                    ]
                    if hits:
                        hits.sort()
                        pairs.extend((i, m) for m in hits)
            r_map.insert(code, start, end, i)
            i += 1
        else:
            start, end, code = int(ss[j]), int(se[j]), int(scodes[j])
            live = r_map.probe(code, start)
            probes += 1
            if live is not None:
                cs, ce, crows, n_live = live
                if np is not None:
                    ds = np.sign(cs - start)
                    de = np.sign(ce - end)
                    matched = crows[np_table[ds + 1, de + 1]]
                    if matched.size:
                        matched = np.sort(matched)
                        pairs.extend((int(m), j) for m in matched)
                else:
                    hits = [
                        crows[k]
                        for k in range(n_live)
                        if table[_sign(cs[k], start) + 1][_sign(ce[k], end) + 1]
                    ]
                    if hits:
                        hits.sort()
                        pairs.extend((m, j) for m in hits)
            s_map.insert(code, start, end, j)
            j += 1
        combined = r_map.size + s_map.size
        if combined > peak:
            peak = combined
    stats["probes"] = stats.get("probes", 0) + probes
    stats["expired"] = stats.get("expired", 0) + r_map.expired + s_map.expired
    stats["active_peak"] = max(stats.get("active_peak", 0), peak)
    stats["intersecting_pairs"] = stats.get("intersecting_pairs", 0) + len(pairs)
    return pairs


def _window_disjoint(
    rc: _SideColumns,
    sc: _SideColumns,
    pred: TemporalPredicate,
    stats: Dict[str, int],
) -> List[Tuple[int, int]]:
    """Binary-searched scan windows for the disjoint Allen relations.

    Pairs accepted by before/meets/met_by/after never coexist in the
    active map, so they are answered against per-key row indexes: a
    start-sorted run (prefix/point windows on ``s.start``) and an
    end-sorted run (for met_by/after windows on ``s.end``).  Emission is
    R-major with sorted window contents -- deterministic and
    backend-independent.
    """
    wanted = pred.disjoint_relations
    need_start = bool(wanted & {AllenRelation.BEFORE, AllenRelation.MEETS})
    need_end = bool(wanted & {AllenRelation.MET_BY, AllenRelation.AFTER})
    by_start: Dict[int, Tuple[List[int], List[int]]] = {}
    by_end: Dict[int, Tuple[List[int], List[int]]] = {}
    for j in range(sc.n):
        code = int(sc.codes[j])
        if need_start:
            entry = by_start.get(code)
            if entry is None:
                entry = by_start[code] = ([], [])
            entry[0].append(int(sc.starts[j]))
            entry[1].append(j)
        if need_end:
            entry = by_end.get(code)
            if entry is None:
                entry = by_end[code] = ([], [])
            entry[0].append(int(sc.ends[j]))
            entry[1].append(j)
    for ends, rows in by_end.values():
        order = sorted(range(len(ends)), key=lambda k: (ends[k], rows[k]))
        ends[:] = [ends[k] for k in order]
        rows[:] = [rows[k] for k in order]

    pairs: List[Tuple[int, int]] = []
    for i in range(rc.n):
        code = int(rc.codes[i])
        start, end = int(rc.starts[i]), int(rc.ends[i])
        hits: List[int] = []
        entry = by_start.get(code) if need_start else None
        if entry is not None:
            s_starts, s_rows = entry
            if AllenRelation.BEFORE in wanted:
                lo = bisect.bisect_left(s_starts, end + 2)
                hits.extend(s_rows[lo:])
            if AllenRelation.MEETS in wanted:
                lo = bisect.bisect_left(s_starts, end + 1)
                hi = bisect.bisect_right(s_starts, end + 1)
                hits.extend(s_rows[lo:hi])
        entry = by_end.get(code) if need_end else None
        if entry is not None:
            s_ends, s_rows = entry
            if AllenRelation.MET_BY in wanted:
                lo = bisect.bisect_left(s_ends, start - 1)
                hi = bisect.bisect_right(s_ends, start - 1)
                hits.extend(s_rows[lo:hi])
            if AllenRelation.AFTER in wanted:
                hi = bisect.bisect_right(s_ends, start - 2)
                hits.extend(s_rows[:hi])
        if hits:
            hits.sort()
            pairs.extend((i, j) for j in hits)
    stats["disjoint_pairs"] = stats.get("disjoint_pairs", 0) + len(pairs)
    return pairs


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def forward_sweep_join(
    r_file,
    s_file,
    result_schema,
    layout,
    *,
    predicate="intersects",
    pair_fn=None,
    collect: bool = True,
    backend: Optional[str] = None,
    obs=None,
):
    """Evaluate ``r PRED s`` with the forward-scan sweep.

    Args:
        r_file: the outer relation's heap file (its sortedness metadata
            decides whether a sort pass is charged).
        s_file: the inner relation's heap file.
        result_schema: schema of emitted tuples.
        layout: disk layout carrying the phase tracker and result stream.
        predicate: a registry name or :class:`TemporalPredicate`.
        pair_fn: result constructor ``(x, y, stamp) -> VTTuple | None``;
            defaults to the natural join's pair shape.
        collect: materialize the result relation in memory.
        backend: ``"numpy"``, ``"python"``, or None/"auto" for the process
            default -- results are bit-identical either way.
        obs: optional :class:`~repro.obs.Observability` runtime; receives
            the ``repro_sweep_*`` metrics and the sweep span.

    Returns:
        A :class:`~repro.core.joiner.JoinOutcome`: exact cardinality,
        ``overflow_blocks == 0`` and ``cache_tuples_spilled == 0`` (the
        sweep neither partitions nor spills), and ``cache_tuples_peak``
        reporting the gapless maps' peak open-interval population.
    """
    from repro.core.joiner import JoinOutcome, natural_pair
    from repro.obs import span_or_null

    pred = predicate if isinstance(predicate, TemporalPredicate) else (
        resolve_predicate(predicate)
    )
    if pair_fn is None:
        pair_fn = natural_pair
    backend = resolve_sweep_backend(backend)
    tracker = layout.tracker
    stats: Dict[str, int] = {}

    with span_or_null(obs, "sweep:forward", predicate=pred.name, backend=backend):
        sort_pages = 0
        r_source, s_source = r_file, s_file
        if not (r_file.endpoint_sorted and s_file.endpoint_sorted):
            with _phase(tracker, obs, "sort"):
                if not r_file.endpoint_sorted:
                    r_source = _write_sorted_run(r_file, layout, "r_sweep_run", backend)
                    sort_pages += r_file.n_pages + r_source.n_pages
                    stats["sort_runs"] = stats.get("sort_runs", 0) + 1
                    layout.disk.park_heads()
                if not s_file.endpoint_sorted:
                    s_source = _write_sorted_run(s_file, layout, "s_sweep_run", backend)
                    sort_pages += s_file.n_pages + s_source.n_pages
                    stats["sort_runs"] = stats.get("sort_runs", 0) + 1
            layout.disk.park_heads()
        stats["sort_pages"] = sort_pages

        with _phase(tracker, obs, "join"):
            from repro.storage.columnar_page import KeyDictionary

            joint = KeyDictionary()
            rc = _gather(r_source, joint, backend)
            sc = _gather(s_source, joint, backend)
            stats["scan_pages"] = r_source.extent.n_pages + s_source.extent.n_pages

            pairs: List[Tuple[int, int]] = []
            if pred.intersecting_relations:
                pairs.extend(_sweep_intersecting(rc, sc, pred, backend, stats))
            if pred.disjoint_relations:
                pairs.extend(_window_disjoint(rc, sc, pred, stats))

            result_file = layout.result_file("sweep_result")
            n_result = 0
            timestamp = pred.timestamp
            for i, j in pairs:
                x = rc.row(i)
                y = sc.row(j)
                if timestamp == "intersection":
                    stamp = trusted_interval(
                        x.vs if x.vs >= y.vs else y.vs,
                        x.ve if x.ve <= y.ve else y.ve,
                    )
                elif timestamp == "left":
                    stamp = x.valid
                else:
                    stamp = y.valid
                out = pair_fn(x, y, stamp)
                if out is None:
                    continue
                layout.write_result(result_file, out)
                n_result += 1
            result_file.flush()
            result = (
                layout.collect_result(result_file, result_schema)
                if collect
                else None
            )
        layout.disk.park_heads()

        if obs is not None:
            _emit_metrics(obs, pred, backend, stats, n_result)
        return JoinOutcome(
            result=result,
            n_result_tuples=n_result,
            overflow_blocks=0,
            cache_tuples_peak=stats.get("active_peak", 0),
            cache_tuples_spilled=0,
        )


def _emit_metrics(obs, pred, backend, stats, n_result) -> None:
    """Record the run's ``repro_sweep_*`` metric family.

    The page counters reconcile exactly with the layout's phase-tracked
    ledger: ``repro_sweep_pages_total{phase="sort"}`` equals the sort
    phase's reads plus writes, and ``phase="join"`` equals the join
    phase's reads (result writes live on the excluded stream).
    """
    help_pages = "Charged pages the forward sweep touched, by phase."
    if stats.get("sort_pages"):
        obs.count("repro_sweep_pages_total", help_pages,
                  amount=float(stats["sort_pages"]), phase="sort")
    obs.count("repro_sweep_pages_total", help_pages,
              amount=float(stats.get("scan_pages", 0)), phase="join")
    if stats.get("sort_runs"):
        obs.count("repro_sweep_sort_runs_total",
                  "External-sort runs written for unsorted inputs.",
                  amount=float(stats["sort_runs"]))
    obs.count("repro_sweep_probes_total",
              "Active-map probes issued by the merged forward scan.",
              amount=float(stats.get("probes", 0)))
    obs.count("repro_sweep_expired_total",
              "Open intervals lazily expired (swap-with-last deletions).",
              amount=float(stats.get("expired", 0)))
    for kind in ("intersecting", "disjoint"):
        amount = stats.get(f"{kind}_pairs", 0)
        if amount:
            obs.count("repro_sweep_pairs_total",
                      "Accepted pairs by probe kind.",
                      amount=float(amount), kind=kind)
    obs.count("repro_sweep_results_total",
              "Result tuples the sweep emitted.", amount=float(n_result))
    obs.gauge("repro_sweep_active_peak", float(stats.get("active_peak", 0)),
              "Peak open-interval population of the gapless maps.")
    obs.event(
        "sweep-summary",
        predicate=pred.name,
        backend=backend,
        probes=stats.get("probes", 0),
        expired=stats.get("expired", 0),
        active_peak=stats.get("active_peak", 0),
        results=n_result,
    )
