"""Backend selection for the batch execution layer.

``numpy`` is an *optional* dependency (the ``repro[fast]`` extra): the
library must work -- and produce byte-identical results -- without it.  This
module decides once, at import time, whether the vectorized numpy kernels or
the pure-Python fallbacks are used, so the rest of the execution layer can
branch on a single flag instead of sprinkling ``try: import numpy``.

Selection rules:

* ``REPRO_EXEC_BACKEND=python`` in the environment forces the pure-Python
  kernels even when numpy is installed (used by the CI fallback job and by
  A/B benchmarks).
* Otherwise numpy is used when importable, the fallback when not.

Tests that need a specific backend regardless of the environment construct
:class:`~repro.exec.kernels.PythonKernels` /
:class:`~repro.exec.kernels.NumpyKernels` explicitly rather than relying on
the import-time default.
"""

from __future__ import annotations

import os

#: Environment variable forcing the pure-Python kernels ("python") or
#: requiring numpy ("numpy" -- import error surfaces instead of a silent
#: fallback, for benchmark rigs that must not quietly degrade).
BACKEND_ENV_VAR = "REPRO_EXEC_BACKEND"

_requested = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()

if _requested == "python":
    np = None
elif _requested == "numpy":
    import numpy as np  # noqa: F401  (re-exported)
else:
    try:
        import numpy as np  # noqa: F401
    except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
        np = None

#: True when the numpy kernels are active in this process.
HAVE_NUMPY: bool = np is not None


def backend_name() -> str:
    """The active backend: ``"numpy"`` or ``"python"``."""
    return "numpy" if HAVE_NUMPY else "python"
