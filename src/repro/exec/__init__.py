"""Batch execution layer: columnar batches, vectorized kernels, parallelism.

The tuple-at-a-time algorithms in :mod:`repro.core` are the *oracle*; this
package is how the same algorithms run fast.  Three pieces:

* :mod:`repro.exec.batch` -- :class:`PageBatch`, the columnar page
  representation built once per page;
* :mod:`repro.exec.kernels` -- the probe / intersection / owner-filter /
  migration / locate kernels, numpy-vectorized with pure-Python fallbacks
  selected at import (numpy is the optional ``repro[fast]`` extra);
* :mod:`repro.exec.parallel` -- multiprocessing placement for Grace
  partitioning, with all charged I/O replayed deterministically by the
  parent process.

Algorithms select a path via ``PartitionJoinConfig.execution``
(``"tuple"`` | ``"batch"`` | ``"batch-parallel"``); see
``docs/EXECUTION.md`` for the layout and determinism rules.

:mod:`repro.exec.forward_sweep` is the odd one out: not a faster path
through the partition join but a different physical operator -- the
endpoint-sorted forward-scan sweep with gapless hash maps, selected via
``execution="forward-sweep"``.
"""

from repro.exec.backend import BACKEND_ENV_VAR, HAVE_NUMPY, backend_name
from repro.exec.batch import (
    KeyInterner,
    PageBatch,
    iter_page_batches,
    tuples_from_columns,
    tuples_to_columns,
)
from repro.exec.kernels import (
    Kernels,
    NumpyKernels,
    PartitionBoundaries,
    PythonKernels,
    get_kernels,
)
from repro.exec.parallel import default_workers, locate_partitions_parallel

# The forward sweep operates on storage.columnar_page buffers, and the
# storage layer imports repro.exec.backend -- so re-export it lazily
# (PEP 562) to keep this package importable from inside that cycle.
_FORWARD_SWEEP_EXPORTS = (
    "SWEEP_BACKENDS",
    "GaplessHashMap",
    "forward_sweep_join",
    "resolve_sweep_backend",
)


def __getattr__(name: str):
    if name in _FORWARD_SWEEP_EXPORTS:
        from repro.exec import forward_sweep

        return getattr(forward_sweep, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "SWEEP_BACKENDS",
    "GaplessHashMap",
    "forward_sweep_join",
    "resolve_sweep_backend",
    "BACKEND_ENV_VAR",
    "HAVE_NUMPY",
    "KeyInterner",
    "Kernels",
    "NumpyKernels",
    "PageBatch",
    "PartitionBoundaries",
    "PythonKernels",
    "backend_name",
    "default_workers",
    "get_kernels",
    "iter_page_batches",
    "locate_partitions_parallel",
    "tuples_from_columns",
    "tuples_to_columns",
]
