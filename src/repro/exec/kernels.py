"""Batch join kernels: the compute core of the ``"batch"`` execution modes.

Four operations dominate the partition sweep's in-memory work, and each has
a vectorized numpy implementation and a pure-Python fallback here:

* **key-equality probe** -- expand an inner page against the hash index of
  the outer block into candidate pairs (CSR gather over interned key ids);
* **interval intersection** -- ``[max(starts), min(ends)]`` with the
  emptiness mask, over whole pair columns;
* **owner-chronon filter** -- the exactly-once emission rule, as one
  ``searchsorted`` of the owner chronons against the partition boundaries
  instead of a per-pair binary search;
* **migration mask** -- ``overlaps_partition`` over a whole page, deciding
  which tuples continue into the next sweep iteration's cache.

The partitioner's per-tuple placement (``index_of_chronon`` of the storage
chronon) is the fifth kernel, :meth:`Kernels.locate`.

Both implementations emit **identical values in identical order** -- pairs
ordered by (inner row, outer insertion order), migrations in page order --
so the surrounding sweep produces bit-identical results, cache contents,
and I/O charges whichever backend is active.  The tuple-at-a-time path in
:mod:`repro.core.joiner` remains the oracle both are tested against.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec.backend import HAVE_NUMPY, backend_name, np
from repro.exec.batch import CodeTranslator, KeyInterner, PageBatch
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval


def _columnar_page_type():
    """The ColumnarPage class, imported lazily.

    ``storage.columnar_page`` itself imports :mod:`repro.exec.backend`, so a
    top-level import here would be circular (storage -> exec -> kernels ->
    storage).  By the time a page reaches a kernel both packages are fully
    initialized and this is a ``sys.modules`` hit.
    """
    from repro.storage.columnar_page import ColumnarPage

    return ColumnarPage

#: A matched pair ready for the pair function: (outer tuple, inner tuple,
#: overlap interval).  Emission order is (inner row, outer insertion order),
#: matching the tuple-at-a-time probe loop exactly.
Match = Tuple[VTTuple, VTTuple, Interval]


class PartitionBoundaries:
    """Partition end chronons in both backend representations.

    Prepared once per join from the :class:`~repro.core.intervals.PartitionMap`
    and shared by every kernel call; ``index_of_chronon`` is
    ``min(bisect_left(ends, c), n - 1)`` -- the same clamped lookup the map
    performs, lifted to whole columns.
    """

    __slots__ = ("ends", "ends_np", "n")

    def __init__(self, ends: Sequence[int], use_numpy: bool) -> None:
        self.ends: List[int] = list(ends)
        self.n = len(self.ends)
        if self.n == 0:
            raise ValueError("a partitioning needs at least one boundary")
        self.ends_np = np.array(self.ends, dtype=np.int64) if use_numpy else None


class Kernels:
    """Common interface of both kernel implementations."""

    use_numpy: bool = False

    @property
    def name(self) -> str:
        return "numpy" if self.use_numpy else "python"

    # -- shared plumbing ---------------------------------------------------

    def make_interner(self) -> KeyInterner:
        return KeyInterner()

    def prepare_boundaries(self, partition_map) -> PartitionBoundaries:
        """Lift *partition_map* (or a plain end-chronon list) for batch use."""
        ends = getattr(partition_map, "_ends", partition_map)
        return PartitionBoundaries(ends, self.use_numpy)

    def page_batch(
        self,
        page: Sequence[VTTuple],
        interner: Optional[KeyInterner] = None,
        *,
        intern: bool = False,
        translator: Optional[CodeTranslator] = None,
    ) -> PageBatch:
        """Build the backend-native :class:`PageBatch` for *page*.

        A :class:`~repro.storage.columnar_page.ColumnarPage` takes the
        zero-copy path (column views over the page buffer, key ids via the
        *translator*'s gather table); any other sequence is decomposed
        tuple by tuple as before.
        """
        raise NotImplementedError

    # -- the kernels -------------------------------------------------------

    def build_probe_index(self, block: Sequence[VTTuple], interner: KeyInterner):
        """Hash the outer *block* on the explicit join attributes."""
        raise NotImplementedError

    def probe(
        self,
        index,
        batch: PageBatch,
        boundaries: Optional[PartitionBoundaries] = None,
        part_index: Optional[int] = None,
        direction: str = "backward",
    ) -> List[Match]:
        """Probe *batch* against *index*: key equality + interval
        intersection, then (when *boundaries* is given) the exactly-once
        owner-chronon filter for partition *part_index*."""
        raise NotImplementedError

    def migration_rows(
        self, batch: PageBatch, boundaries: PartitionBoundaries, next_index: int
    ) -> List[int]:
        """Rows of *batch* whose interval overlaps partition *next_index*
        (clamped semantics), in page order."""
        raise NotImplementedError

    def locate(
        self, chronons: Sequence[int], boundaries: PartitionBoundaries
    ) -> List[int]:
        """Partition index of each chronon (clamped ``index_of_chronon``)."""
        raise NotImplementedError


class PythonKernels(Kernels):
    """Pure-Python fallback: identical semantics, loop-at-a-time compute.

    Keys stay raw tuples (no interning -- a dict on the key is cheaper than
    an id indirection without vector gathers to feed).
    """

    use_numpy = False

    def page_batch(self, page, interner=None, *, intern=False, translator=None):
        # Key-id columns buy nothing without vector ops; skip them.
        if isinstance(page, _columnar_page_type()):
            return PageBatch.from_columnar(page, None, use_numpy=False)
        return PageBatch.from_tuples(page, None, use_numpy=False)

    def build_probe_index(self, block, interner):
        index: Dict[Tuple, List[VTTuple]] = {}
        for tup in block:
            index.setdefault(tup.key, []).append(tup)
        return index

    def probe(self, index, batch, boundaries=None, part_index=None, direction="backward"):
        matches: List[Match] = []
        ends = boundaries.ends if boundaries is not None else None
        last = boundaries.n - 1 if boundaries is not None else 0
        backward = direction == "backward"
        for inner_tup in batch.tuples:
            for outer_tup in index.get(inner_tup.key, ()):
                cs = max(outer_tup.valid.start, inner_tup.valid.start)
                ce = min(outer_tup.valid.end, inner_tup.valid.end)
                if cs > ce:
                    continue
                if ends is not None:
                    owner = ce if backward else cs
                    if min(bisect_left(ends, owner), last) != part_index:
                        continue
                matches.append((outer_tup, inner_tup, Interval(cs, ce)))
        return matches

    def migration_rows(self, batch, boundaries, next_index):
        ends = boundaries.ends
        last = boundaries.n - 1
        rows: List[int] = []
        for row, (vs, ve) in enumerate(zip(batch.starts, batch.ends)):
            if (
                min(bisect_left(ends, vs), last)
                <= next_index
                <= min(bisect_left(ends, ve), last)
            ):
                rows.append(row)
        return rows

    def locate(self, chronons, boundaries):
        ends = boundaries.ends
        last = boundaries.n - 1
        return [min(bisect_left(ends, c), last) for c in chronons]


class _NumpyProbeIndex:
    """CSR grouping of an outer block by interned key id."""

    __slots__ = (
        "block",
        "order",
        "offsets",
        "counts",
        "starts_ordered",
        "ends_ordered",
        "n_groups",
    )

    def __init__(self, block: Sequence[VTTuple], interner: KeyInterner) -> None:
        self.block = list(block)
        n = len(self.block)
        key_ids = np.fromiter(
            (interner.intern(tup.key) for tup in self.block), np.int64, count=n
        )
        starts = np.fromiter(
            (tup.valid.start for tup in self.block), np.int64, count=n
        )
        ends = np.fromiter((tup.valid.end for tup in self.block), np.int64, count=n)
        self.n_groups = len(interner)
        # Stable sort keeps each key group in block (insertion) order, so
        # CSR gathers reproduce the probe_index list order exactly.
        self.order = np.argsort(key_ids, kind="stable")
        self.counts = np.bincount(key_ids, minlength=self.n_groups).astype(np.int64)
        self.offsets = np.cumsum(self.counts) - self.counts
        # Interval columns pre-permuted into CSR position order, so the
        # probe's hot path gathers by contiguous-ish CSR positions and only
        # dereferences ``order`` for pairs that survive the filters.
        self.starts_ordered = starts[self.order]
        self.ends_ordered = ends[self.order]


class NumpyKernels(Kernels):
    """Vectorized kernels over ``int64`` columns."""

    use_numpy = True

    def __init__(self) -> None:
        if not HAVE_NUMPY:
            raise RuntimeError(
                "NumpyKernels requires numpy; install the repro[fast] extra"
            )

    def page_batch(self, page, interner=None, *, intern=False, translator=None):
        if isinstance(page, _columnar_page_type()):
            return PageBatch.from_columnar(
                page, interner, intern=intern, use_numpy=True, translator=translator
            )
        return PageBatch.from_tuples(page, interner, intern=intern, use_numpy=True)

    def build_probe_index(self, block, interner):
        return _NumpyProbeIndex(block, interner)

    def probe(self, index, batch, boundaries=None, part_index=None, direction="backward"):
        n = len(batch)
        if n == 0 or index.n_groups == 0 or not index.block:
            return []
        key_ids = batch.key_ids
        known = (key_ids >= 0) & (key_ids < index.n_groups)
        safe_ids = np.where(known, key_ids, 0)
        counts = np.where(known, index.counts[safe_ids], 0)
        total = int(counts.sum())
        if total == 0:
            return []

        # CSR gather: expand every inner row into its key group's CSR
        # positions.  ``pos`` enumerates each group's positions ascending,
        # which (via the stable sort) is block insertion order -- the hot
        # path works purely in position space and defers both the
        # ``order`` dereference and the inner-row expansion until after
        # the filters, when only a handful of pairs remain.
        cum = np.cumsum(counts)
        group_start = cum - counts
        pos = np.repeat(index.offsets[safe_ids] - group_start, counts) + np.arange(
            total, dtype=np.int64
        )

        inner_starts = np.repeat(batch.starts, counts)
        inner_ends = np.repeat(batch.ends, counts)
        common_start = np.maximum(index.starts_ordered[pos], inner_starts)
        common_end = np.minimum(index.ends_ordered[pos], inner_ends)
        kept = np.nonzero(common_start <= common_end)[0]
        if kept.size == 0:
            return []

        common_start = common_start[kept]
        common_end = common_end[kept]
        if boundaries is not None:
            owner = common_end if direction == "backward" else common_start
            owner_part = np.minimum(
                np.searchsorted(boundaries.ends_np, owner, side="left"),
                boundaries.n - 1,
            )
            owned = np.nonzero(owner_part == part_index)[0]
            if owned.size == 0:
                return []
            kept = kept[owned]
            common_start = common_start[owned]
            common_end = common_end[owned]

        pair_outer = index.order[pos[kept]]
        # Pair slots are laid out by inner row (CSR), so the inner row of
        # surviving pair ``t`` is the group whose cumulative count first
        # exceeds ``t``.
        pair_inner = np.searchsorted(cum, kept, side="right")

        block = index.block
        inner_tuples = batch.tuples
        return [
            (block[o], inner_tuples[i], Interval(cs, ce))
            for o, i, cs, ce in zip(
                pair_outer.tolist(),
                pair_inner.tolist(),
                common_start.tolist(),
                common_end.tolist(),
            )
        ]

    def migration_rows(self, batch, boundaries, next_index):
        if len(batch) == 0:
            return []
        last = boundaries.n - 1
        first_part = np.minimum(
            np.searchsorted(boundaries.ends_np, batch.starts, side="left"), last
        )
        last_part = np.minimum(
            np.searchsorted(boundaries.ends_np, batch.ends, side="left"), last
        )
        mask = (first_part <= next_index) & (next_index <= last_part)
        return np.nonzero(mask)[0].tolist()

    def locate(self, chronons, boundaries):
        values = np.asarray(chronons, dtype=np.int64)
        if values.size == 0:
            return []
        return np.minimum(
            np.searchsorted(boundaries.ends_np, values, side="left"),
            boundaries.n - 1,
        ).tolist()


_DEFAULT: Optional[Kernels] = None


def get_kernels(backend: Optional[str] = None) -> Kernels:
    """The kernels for *backend* (default: the import-time selection).

    Args:
        backend: ``"numpy"``, ``"python"``, or None for the process default
            (numpy when importable and not overridden via
            ``REPRO_EXEC_BACKEND``).
    """
    global _DEFAULT
    if backend is None:
        if _DEFAULT is None:
            _DEFAULT = NumpyKernels() if HAVE_NUMPY else PythonKernels()
        return _DEFAULT
    if backend == "numpy":
        return NumpyKernels()
    if backend == "python":
        return PythonKernels()
    raise ValueError(f"unknown kernel backend {backend!r}")


__all__ = [
    "Kernels",
    "Match",
    "NumpyKernels",
    "PartitionBoundaries",
    "PythonKernels",
    "backend_name",
    "get_kernels",
]
