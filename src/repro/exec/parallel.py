"""Parallel Grace partitioning: fan the placement computation out to workers.

Grace partitioning has one CPU-bound component -- locating the storage
partition of every input tuple (``index_of_chronon`` of its start or end
chronon) -- and one I/O-bound component, the bucket buffering and flushing
whose *order* determines the charged random/sequential mix.  Parallelizing
the I/O across processes would change that order (and the simulated disk
lives in the parent process anyway), so the split here is strict:

* **Workers** receive chunks of ``(start, end)`` chronon pairs -- never
  whole tuples, keeping pickling traffic minimal -- and return the located
  partition index of each, computed with the batch ``locate`` kernel
  (vectorized when the worker process can import numpy).
* **The parent** stitches the per-worker results back together in input
  order and replays the *exact* serial bucket/flush loop with the
  precomputed indices.

Because every charged page access is still issued by the parent in the
serial order, the resulting :class:`~repro.storage.iostats.PhaseTracker`
counters, heap-file contents, and extent layouts are bit-identical to the
serial path -- the determinism rule documented in ``docs/EXECUTION.md``
and enforced by the execution-mode integration tests.

Environments that forbid spawning processes (sandboxes, some CI runners)
degrade gracefully: the placement is computed in-process with the same
kernel, so results never depend on whether the pool could start.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence, Tuple

from repro.exec.kernels import Kernels, get_kernels

#: Chunk of work shipped to one worker: (start, end) chronon pairs.
SpanChunk = Tuple[Tuple[int, int], ...]

#: Tuples below this count are located in-process: pool start-up costs more
#: than the placement itself.
MIN_PARALLEL_TUPLES = 4096

#: Spans per worker chunk.  Fixed (not derived from worker count) so the
#: chunk boundaries -- and therefore the merged output -- are a pure
#: function of the input, whatever the pool geometry.
CHUNK_SPANS = 16384

_worker_boundaries = None  # set in each worker by _init_worker


def default_workers() -> int:
    """Worker-count default: the machine's cores, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


def _init_worker(ends: List[int]) -> None:
    """Pool initializer: build the boundary array once per worker."""
    global _worker_boundaries
    _worker_boundaries = get_kernels().prepare_boundaries(ends)


def _locate_chunk(chunk: SpanChunk) -> List[int]:
    """Locate one chunk of spans against the worker's boundaries.

    The span's *end* chronon is shipped first because ``placement="last"``
    (the paper's storage rule) locates on it; the parent pre-orients the
    pairs so workers need no placement flag.
    """
    return get_kernels().locate([span[0] for span in chunk], _worker_boundaries)


def locate_partitions_parallel(
    spans: Sequence[Tuple[int, int]],
    boundary_ends: Sequence[int],
    placement: str,
    *,
    workers: Optional[int] = None,
    kernels: Optional[Kernels] = None,
    transport: str = "pickle",
) -> List[int]:
    """Storage-partition index of every span, computed with a process pool.

    Args:
        spans: per-tuple ``(start, end)`` chronon pairs, in relation order.
        boundary_ends: end chronon of each partitioning interval, ascending.
        placement: ``"last"`` locates on the end chronon (the paper's rule),
            ``"first"`` on the start chronon (footnote 1).
        workers: pool size; None picks :func:`default_workers`.  ``<= 1``
            computes in-process.
        kernels: kernels for the in-process fallback path (defaults to the
            process-wide selection).
        transport: ``"pickle"`` ships chronon chunks as pickled tuples (the
            classic path); ``"shared"`` scatters the chronon column through
            a shared-memory segment and gathers the located indices from a
            shared output segment, so only descriptors cross the pool
            boundary (the ``"zero-copy-sweep"`` path).  Both transports --
            and every fallback between them -- return identical indices.

    Returns:
        Partition indices in input order -- identical whatever the worker
        count, including the in-process fallback.
    """
    if placement not in ("last", "first"):
        raise ValueError(f"placement must be 'last' or 'first', got {placement!r}")
    if transport not in ("pickle", "shared"):
        raise ValueError(f"transport must be 'pickle' or 'shared', got {transport!r}")
    active = kernels if kernels is not None else get_kernels()
    n = len(spans)
    n_workers = default_workers() if workers is None else workers

    # Orient each span so the chronon to locate on comes first; chunks are
    # then placement-agnostic.
    if placement == "last":
        oriented = [(end, start) for start, end in spans]
    else:
        oriented = [(start, end) for start, end in spans]

    if n_workers <= 1 or n < MIN_PARALLEL_TUPLES:
        return active.locate([span[0] for span in oriented],
                             active.prepare_boundaries(list(boundary_ends)))

    if transport == "shared" and active.use_numpy:
        try:
            from repro.exec.arena import locate_spans_shared

            with multiprocessing.get_context().Pool(
                processes=min(n_workers, max(1, (n + CHUNK_SPANS - 1) // CHUNK_SPANS)),
            ) as pool:
                located_shared = locate_spans_shared(
                    [span[0] for span in oriented],
                    list(boundary_ends),
                    pool,
                    CHUNK_SPANS,
                )
            if located_shared is not None:
                return located_shared
        except Exception:
            # Segment or pool creation refused -- fall through to the
            # pickling transport of the identical computation.
            pass

    chunks: List[SpanChunk] = [
        tuple(oriented[i : i + CHUNK_SPANS]) for i in range(0, n, CHUNK_SPANS)
    ]
    try:
        with multiprocessing.get_context().Pool(
            processes=min(n_workers, len(chunks)),
            initializer=_init_worker,
            initargs=(list(boundary_ends),),
        ) as pool:
            located = pool.map(_locate_chunk, chunks)
    except Exception:
        # Pool start-up or a worker failed -- restricted environments raise
        # OSError/ValueError/ImportError, dying workers surface pool-specific
        # errors.  Whatever the cause: same computation, same result, one
        # process.  (Only genuine interrupts propagate.)
        return active.locate([span[0] for span in oriented],
                             active.prepare_boundaries(list(boundary_ends)))
    merged: List[int] = []
    for part in located:  # pool.map preserves chunk order
        merged.extend(part)
    return merged
