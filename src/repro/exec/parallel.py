"""Parallel Grace partitioning: fan the placement computation out to workers.

Grace partitioning has one CPU-bound component -- locating the storage
partition of every input tuple (``index_of_chronon`` of its start or end
chronon) -- and one I/O-bound component, the bucket buffering and flushing
whose *order* determines the charged random/sequential mix.  Parallelizing
the I/O across processes would change that order (and the simulated disk
lives in the parent process anyway), so the split here is strict:

* **Workers** receive chunks of ``(start, end)`` chronon pairs -- never
  whole tuples, keeping pickling traffic minimal -- and return the located
  partition index of each, computed with the batch ``locate`` kernel
  (vectorized when the worker process can import numpy).
* **The parent** stitches the per-worker results back together in input
  order and replays the *exact* serial bucket/flush loop with the
  precomputed indices.

Because every charged page access is still issued by the parent in the
serial order, the resulting :class:`~repro.storage.iostats.PhaseTracker`
counters, heap-file contents, and extent layouts are bit-identical to the
serial path -- the determinism rule documented in ``docs/EXECUTION.md``
and enforced by the execution-mode integration tests.

Environments that forbid spawning processes (sandboxes, some CI runners)
degrade gracefully: the placement is computed in-process with the same
kernel, so results never depend on whether the pool could start.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.exec.kernels import Kernels, get_kernels
from repro.resilience.supervisor import LANE_POOL_ERRORS, LaneSupervisor

#: Chunk of work shipped to one worker: (start, end) chronon pairs.
SpanChunk = Tuple[Tuple[int, int], ...]

#: Tuples below this count are located in-process: pool start-up costs more
#: than the placement itself.
MIN_PARALLEL_TUPLES = 4096

#: Spans per worker chunk.  Fixed (not derived from worker count) so the
#: chunk boundaries -- and therefore the merged output -- are a pure
#: function of the input, whatever the pool geometry.
CHUNK_SPANS = 16384

_worker_boundaries = None  # set in each worker by _init_worker


def default_workers() -> int:
    """Worker-count default: the machine's cores, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


def _init_worker(ends: List[int]) -> None:
    """Pool initializer: build the boundary array once per worker."""
    global _worker_boundaries
    _worker_boundaries = get_kernels().prepare_boundaries(ends)


def _locate_chunk(chunk: SpanChunk) -> List[int]:
    """Locate one chunk of spans against the worker's boundaries.

    The span's *end* chronon is shipped first because ``placement="last"``
    (the paper's storage rule) locates on it; the parent pre-orients the
    pairs so workers need no placement flag.
    """
    return get_kernels().locate([span[0] for span in chunk], _worker_boundaries)


def locate_partitions_parallel(
    spans: Sequence[Tuple[int, int]],
    boundary_ends: Sequence[int],
    placement: str,
    *,
    workers: Optional[int] = None,
    kernels: Optional[Kernels] = None,
    transport: str = "pickle",
    report=None,
    obs=None,
) -> List[int]:
    """Storage-partition index of every span, computed with a process pool.

    Args:
        spans: per-tuple ``(start, end)`` chronon pairs, in relation order.
        boundary_ends: end chronon of each partitioning interval, ascending.
        placement: ``"last"`` locates on the end chronon (the paper's rule),
            ``"first"`` on the start chronon (footnote 1).
        workers: pool size; None picks :func:`default_workers`.  ``<= 1``
            computes in-process.
        kernels: kernels for the in-process fallback path (defaults to the
            process-wide selection).
        transport: ``"pickle"`` ships chronon chunks as pickled tuples (the
            classic path); ``"shared"`` scatters the chronon column through
            a shared-memory segment and gathers the located indices from a
            shared output segment, so only descriptors cross the pool
            boundary (the ``"zero-copy-sweep"`` path).  Both transports --
            and every fallback between them -- return identical indices.
        report: optional :class:`~repro.resilience.report.ResilienceReport`;
            transport fallbacks record a ``DegradationEvent`` on it, so the
            serial path is never taken invisibly.
        obs: optional observability runtime (fallback events and metrics).

    Returns:
        Partition indices in input order -- identical whatever the worker
        count, including the in-process fallback.
    """
    if placement not in ("last", "first"):
        raise ValueError(f"placement must be 'last' or 'first', got {placement!r}")
    if transport not in ("pickle", "shared"):
        raise ValueError(f"transport must be 'pickle' or 'shared', got {transport!r}")
    active = kernels if kernels is not None else get_kernels()
    n = len(spans)
    n_workers = default_workers() if workers is None else workers

    # Orient each span so the chronon to locate on comes first; chunks are
    # then placement-agnostic.
    if placement == "last":
        oriented = [(end, start) for start, end in spans]
    else:
        oriented = [(start, end) for start, end in spans]

    if n_workers <= 1 or n < MIN_PARALLEL_TUPLES:
        return active.locate([span[0] for span in oriented],
                             active.prepare_boundaries(list(boundary_ends)))

    def degrade(detail: str) -> None:
        # Never silent: every transport fallback leaves a DegradationEvent
        # and a metric increment behind (when a sink was provided).
        if report is not None:
            report.record_degradation("pool-fallback", detail)
        if obs is not None:
            obs.event("degradation", kind="pool-fallback", detail=detail)
            obs.count(
                "repro_degradations_total",
                "Recorded degradation events by kind.",
                kind="pool-fallback",
            )

    # One supervised pool serves both transports: dispatch deadlines,
    # crash detection, and deterministic re-dispatch come for free, and the
    # chunk-count clamp matches the historical pool sizing of both paths.
    lanes = min(n_workers, max(1, (n + CHUNK_SPANS - 1) // CHUNK_SPANS))
    supervisor = LaneSupervisor(
        lanes,
        report=report,
        obs=obs,
        initializer=_init_worker,
        initargs=(list(boundary_ends),),
    )
    try:
        if transport == "shared" and active.use_numpy:
            try:
                from repro.exec.arena import locate_spans_shared

                pool = supervisor.ensure_pool()
                if pool is not None:
                    located_shared = locate_spans_shared(
                        [span[0] for span in oriented],
                        list(boundary_ends),
                        pool,
                        CHUNK_SPANS,
                        mapper=supervisor.map,
                    )
                    if located_shared is not None:
                        return located_shared
                    degrade(
                        "shared locate segments could not be created; "
                        "using pickled chunks"
                    )
            except LANE_POOL_ERRORS as error:
                # Fall through to the pickling transport of the identical
                # computation.  (Only genuine interrupts propagate.)
                degrade(
                    f"shared locate transport failed "
                    f"({type(error).__name__}); using pickled chunks"
                )

        chunks: List[SpanChunk] = [
            tuple(oriented[i : i + CHUNK_SPANS]) for i in range(0, n, CHUNK_SPANS)
        ]
        try:
            located = supervisor.map(_locate_chunk, chunks, label="locate")
        except LANE_POOL_ERRORS as error:
            # The supervisor recovers worker death internally; anything that
            # still surfaces here means the dispatch machinery itself is
            # unusable.  Same computation, same result, one process.
            degrade(
                f"pickled locate dispatch failed "
                f"({type(error).__name__}); locating in-process"
            )
            return active.locate([span[0] for span in oriented],
                                 active.prepare_boundaries(list(boundary_ends)))
        merged: List[int] = []
        for part in located:  # dispatch order preserves chunk order
            merged.extend(part)
        return merged
    finally:
        supervisor.close()
